"""Extension (paper §6 future work): energy-efficiency comparison.

"It might also be interesting to measure the energy consumption to
determine whether the improved performance also results in improved
energy efficiency."  The modeled answer: yes — on memory-bound scans,
energy tracks traffic and runtime, so SAM's communication optimality
carries over to nJ/item, and its higher-order advantage grows the same
way the throughput advantage does.
"""

import pytest

from conftest import write_artifact
from repro.perf.energy import EnergyModel

SIZES = [2**20, 2**24, 2**28]


def test_energy_table(benchmark):
    model = EnergyModel()
    rows = benchmark(_build_rows, model)
    text = "\n".join(rows)
    write_artifact("ext_energy", text)
    print()
    print(text)


def _build_rows(model):
    rows = ["extension: modeled energy efficiency (nJ/item), Titan X, 32-bit"]
    rows.append(f"{'n':>10} {'alg':>8} {'order':>5} {'nJ/item':>9}")
    for n in SIZES:
        for alg in ("sam", "cub", "thrust"):
            for order in (1, 8):
                value = model.nanojoules_per_item(alg, "Titan X", 32, n, order=order)
                rows.append(f"{n:>10} {alg:>8} {order:>5} {value:>9.3f}")
    return rows


def test_sam_is_more_energy_efficient_at_order8():
    model = EnergyModel()
    sam = model.nanojoules_per_item("sam", "Titan X", 32, 2**27, order=8)
    cub = model.nanojoules_per_item("cub", "Titan X", 32, 2**27, order=8)
    print(f"\norder 8 @2^27: SAM {sam:.3f} vs CUB {cub:.3f} nJ/item")
    assert sam < cub / 1.5  # the 2x throughput edge survives in energy


def test_energy_advantage_grows_with_order():
    model = EnergyModel()
    ratios = []
    for order in (1, 2, 5, 8):
        sam = model.nanojoules_per_item("sam", "Titan X", 32, 2**27, order=order)
        cub = model.nanojoules_per_item("cub", "Titan X", 32, 2**27, order=order)
        ratios.append(cub / sam)
    print("\ncub/sam energy ratio by order:", [round(r, 2) for r in ratios])
    assert ratios == sorted(ratios)


def test_thrust_pays_for_4n_traffic():
    model = EnergyModel()
    sam = model.nanojoules_per_item("sam", "Titan X", 32, 2**26)
    thrust = model.nanojoules_per_item("thrust", "Titan X", 32, 2**26)
    assert thrust > 1.5 * sam
