#!/usr/bin/env python
"""Benchmark: real multicore ``ParallelSamScan`` vs the host engine.

Sweeps input size x worker count, times both engines on identical
inputs, and writes ``benchmarks/results/BENCH_parallel.json`` with raw
seconds, items/s, speedup over host, and the engine's own per-phase
counters (setup / dispatch / compute / collect), so the dispatch
overhead and the parallel crossover are measurable rather than assumed.

The host engine is a tight vectorized numpy loop, so beating it
requires real cores: on a single-CPU machine every worker timeshares
one core and the expected "speedup" is <= 1 (the JSON records
``cpu_count`` precisely so readers can judge the numbers).  The sweep
still validates the other production claims — bounded dispatch
overhead, warm-pool reuse, correct crossover placement.

Usage:
    python benchmarks/bench_parallel_host.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.host import host_prefix_sum  # noqa: E402
from repro.ops import get_op  # noqa: E402
from repro.parallel import ParallelSamScan, WorkerPool  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_parallel.json"

SIZES = (1 << 16, 1 << 18, 1 << 20, 1 << 22)
WORKER_COUNTS = (1, 2, 4, 8)
ORDER = 2
REPEATS = 3


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(sizes, worker_counts, repeats) -> dict:
    rng = np.random.default_rng(42)
    op = get_op("add")
    rows = []
    for n in sizes:
        values = rng.integers(-1000, 1000, size=n, dtype=np.int64)
        host_seconds = _time(
            lambda: host_prefix_sum(values, order=ORDER, tuple_size=1,
                                    op=op, inclusive=True),
            repeats,
        )
        for workers in worker_counts:
            engine = ParallelSamScan(
                num_workers=workers,
                min_parallel_elements=0,
                fallback="raise",
            )
            engine.run(values, order=ORDER)  # warm the pool before timing
            result = engine.run(values, order=ORDER)
            par_seconds = _time(lambda: engine.run(values, order=ORDER), repeats)
            counters = result.counters
            rows.append({
                "n": n,
                "workers": workers,
                "num_chunks": result.num_chunks,
                "host_seconds": host_seconds,
                "parallel_seconds": par_seconds,
                "speedup_vs_host": host_seconds / par_seconds,
                "host_items_per_s": n / host_seconds,
                "parallel_items_per_s": n / par_seconds,
                "seconds_setup": counters.seconds_setup,
                "seconds_dispatch": counters.seconds_dispatch,
                "seconds_compute": counters.seconds_compute,
                "seconds_collect": counters.seconds_collect,
                "flag_polls": counters.flag_polls,
                "failed_flag_polls": counters.failed_flag_polls,
            })
            print(
                f"n=2^{n.bit_length() - 1} workers={workers}: "
                f"host {host_seconds * 1e3:8.2f} ms, "
                f"parallel {par_seconds * 1e3:8.2f} ms "
                f"(speedup {rows[-1]['speedup_vs_host']:.2f}x, "
                f"{result.num_chunks} chunks)"
            )
    return {
        "benchmark": "parallel_vs_host",
        "order": ORDER,
        "op": "add",
        "dtype": "int64",
        "repeats": repeats,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup_vs_host > 1 requires more than one physical core; "
            "on cpu_count=1 machines all workers timeshare one core and "
            "the sweep measures dispatch overhead, not parallel speedup"
        ),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    args = parser.parse_args(argv)
    sizes = SIZES[:2] if args.quick else SIZES
    workers = WORKER_COUNTS[:3] if args.quick else WORKER_COUNTS
    repeats = 2 if args.quick else REPEATS

    payload = run_sweep(sizes, workers, repeats)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULTS}")
    WorkerPool.shared().shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
