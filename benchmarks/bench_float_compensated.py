#!/usr/bin/env python
"""Benchmark: threaded compensated float scan vs the serial compensated scan.

One JSON (``benchmarks/results/BENCH_floats.json``): ``rows`` sweep
``repro.kernels.threaded_scan_into(float_mode="compensated")`` against
the serial ``repro.kernels.compensated_scan_into`` on the same buffers
in the same run, over threads x tuple_size x order for the float
headline shape (8M float64 = 64 MiB of add).  ``speedup`` is
serial/threaded measured within one run on one machine — the
machine-independent ratio the CI gate (``tools/bench_gate.py``)
regresses on; rows carry ``threads`` so the gate matches per thread
count.

Every timed configuration is first checked bit-identical against the
serial compensated scan before the clock starts: the whole point of
the error-free carry lane is that the threaded result is not "close",
it is the same bits for any thread count.  Each float64 add row also
records the max absolute error of the compensated result and of the
naive ``np.cumsum`` fold against an extended-precision oracle on a
cancellation-heavy prefix of the buffer, so the JSON documents the
accuracy win next to the speed ratio.

The payload records ``cpu_count`` and an honest ``target_met`` for the
ISSUE's acceptance number (>= 1.5x for float64 add at 64 MiB with 4
slab threads): slab threads only beat the serial kernel when the
machine has cores for them, so on single-core runners the flag is
expected (and reported) as false rather than gamed, and
``target.achievable_here`` tells the gate to stand down until the
baseline is re-recorded on capable hardware.

Usage:
    python benchmarks/bench_float_compensated.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.ops import get_op  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_floats.json"

N_ELEMENTS = 1 << 23          # 8M float64 = 64 MiB: the float headline shape
THREADS = (1, 2, 4)
TUPLE_SIZES = (1, 4)
ORDERS = (1, 2)
DTYPES = ("float64",)
OPS = ("add",)
REPEATS = 3
TARGET_SPEEDUP = 1.5
TARGET_THREADS = 4
ACCURACY_PREFIX = 1 << 18     # oracle cumsum is slow; sample a prefix


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _cancellation_values(rng, n, dtype):
    """Groups of [big, 1, -big, 1] with a per-group sign: partial sums
    repeatedly cancel, so the naive fold's absorbed units accumulate
    while the compensated scan stays at the rounding floor."""
    big = 1e7 if np.dtype(dtype) == np.float32 else 1e16
    groups = n // 4 + 1
    base = np.tile(np.array([big, 1.0, -big, 1.0]), groups)
    base *= np.repeat(rng.choice([1.0, -1.0], groups), 4)
    return base[:n].astype(dtype)


def _accuracy(values, scanned_prefix):
    """Max |error| of the compensated prefix and of the naive cumsum
    against an extended-precision oracle, on a prefix of the buffer."""
    x = values[:ACCURACY_PREFIX]
    oracle = np.cumsum(x.astype(np.longdouble))
    naive = np.max(np.abs(np.cumsum(x).astype(np.longdouble) - oracle))
    comp = np.max(
        np.abs(scanned_prefix[:ACCURACY_PREFIX].astype(np.longdouble) - oracle)
    )
    return float(comp), float(naive)


def run_sweep(n, threads_list, tuple_sizes, orders, dtypes, ops, repeats):
    rng = np.random.default_rng(42)
    rows = []
    for dtype in dtypes:
        values = _cancellation_values(rng, n, dtype)
        scratch = np.empty_like(values)
        for opname in ops:
            op = get_op(opname)
            for s in tuple_sizes:
                for order in orders:
                    want = kernels.compensated_scan_into(
                        values, np.empty_like(values), op,
                        order=order, tuple_size=s,
                    )
                    comp_err = naive_err = None
                    if s == 1 and order == 1:
                        comp_err, naive_err = _accuracy(values, want)
                    serial_seconds = _time(
                        lambda: kernels.compensated_scan_into(
                            values, scratch, op, order=order, tuple_size=s
                        ),
                        repeats,
                    )
                    for threads in threads_list:
                        got = kernels.threaded_scan_into(
                            values, np.empty_like(values), op,
                            order=order, tuple_size=s, threads=threads,
                            float_mode="compensated",
                        )
                        if got.tobytes() != want.tobytes():
                            raise SystemExit(
                                f"threaded compensated mismatch vs serial "
                                f"compensated scan (op={opname} dtype={dtype} "
                                f"s={s} q={order} threads={threads})"
                            )
                        threaded_seconds = _time(
                            lambda: kernels.threaded_scan_into(
                                values, scratch, op, order=order,
                                tuple_size=s, threads=threads,
                                float_mode="compensated",
                            ),
                            repeats,
                        )
                        rows.append({
                            "tuple_size": s,
                            "order": order,
                            "dtype": dtype,
                            "op": opname,
                            "threads": threads,
                            "n": n,
                            "serial_seconds": serial_seconds,
                            "threaded_seconds": threaded_seconds,
                            "speedup": serial_seconds / threaded_seconds,
                            "serial_items_per_s": n / serial_seconds,
                            "threaded_items_per_s": n / threaded_seconds,
                            "max_abs_error_compensated": comp_err,
                            "max_abs_error_naive_cumsum": naive_err,
                        })
                        print(
                            f"{opname:>4} {dtype:>8} s={s:<3} q={order} "
                            f"t={threads}: serial "
                            f"{serial_seconds * 1e3:7.2f} ms, threaded "
                            f"{threaded_seconds * 1e3:7.2f} ms "
                            f"({rows[-1]['speedup']:.2f}x)"
                        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help=f"result JSON path (default {RESULTS})")
    args = parser.parse_args(argv)
    if args.quick:
        # Same n as the full sweep: the serial-vs-threaded ratio is
        # size-dependent and the gate matches quick rows against the
        # committed full-sweep baseline by (s, q, dtype, op, threads).
        n = N_ELEMENTS
        threads_list = (1, TARGET_THREADS)
        tuple_sizes, orders = (1,), (1,)
        repeats = 2
    else:
        n = N_ELEMENTS
        threads_list = THREADS
        tuple_sizes, orders = TUPLE_SIZES, ORDERS
        repeats = REPEATS

    rows = run_sweep(n, threads_list, tuple_sizes, orders, DTYPES, OPS, repeats)
    headline = [
        r for r in rows
        if r["tuple_size"] == 1 and r["order"] == 1 and r["dtype"] == "float64"
        and r["op"] == "add" and r["threads"] == TARGET_THREADS
    ]
    headline_speedup = headline[0]["speedup"] if headline else None
    cpu_count = os.cpu_count()
    payload = {
        "benchmark": "threaded_compensated_vs_serial_compensated",
        "n": n,
        "repeats": repeats,
        "quick": bool(args.quick),
        "target": {
            "speedup": TARGET_SPEEDUP,
            "threads": TARGET_THREADS,
            "headline_speedup": headline_speedup,
            "met": bool(
                headline_speedup is not None
                and headline_speedup >= TARGET_SPEEDUP
            ),
            "achievable_here": bool(cpu_count and cpu_count >= 2),
        },
        "hardware": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup = serial_seconds / threaded_seconds, both running "
            "the compensated (error-free carry) float scan, measured in "
            "the same run so the ratio is comparable across machines "
            "(the CI gate compares speedups, never absolute seconds). "
            "Every timed configuration is bit-identical to the serial "
            "compensated scan before the clock starts.  Slab "
            "parallelism needs real cores: on a single-CPU machine the "
            "expected speedup is ~1.0x and target.met honestly reports "
            "against the >= 1.5x acceptance number either way; "
            "target.achievable_here says whether this machine could "
            "have met it at all.  max_abs_error_* document the accuracy "
            "win vs the naive cumsum on a cancellation corpus."
        ),
        "rows": rows,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if headline_speedup is not None:
        status = "met" if payload["target"]["met"] else "NOT met"
        print(
            f"headline: {headline_speedup:.2f}x at {TARGET_THREADS} threads "
            f"on {cpu_count} cpu(s) — target {TARGET_SPEEDUP}x {status}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
