"""Benchmarks of the motivating application: the delta codec.

Times the host-side compression pipeline (model + coder) and the
decoder at realistic sizes, and checks the qualitative properties the
paper's motivation rests on: the tuple-aware model beats the naive one
on interleaved data, higher-order models win on smooth data, and the
decode (a prefix sum) is far faster than the byte-level coder — i.e.
the codec is coder-bound, which is exactly why offloading the decode's
prefix sum to a massively-parallel device makes sense.
"""

import numpy as np
import pytest

from repro.compression import BlockedDeltaCodec, DeltaCodec


def smooth_signal(n):
    t = np.arange(n)
    rng = np.random.default_rng(8)
    return (3000 * np.sin(t / 400.0) + t * 0.05 + rng.normal(0, 2, n)).astype(np.int32)


def interleaved_signal(n):
    rng = np.random.default_rng(9)
    half = n // 2
    out = np.empty(2 * half, dtype=np.int64)
    out[0::2] = np.cumsum(rng.integers(-3, 4, half))
    out[1::2] = 10**7 + np.cumsum(rng.integers(-3, 4, half))
    return out


@pytest.mark.parametrize("n", [10**5, 10**6])
def test_compress_throughput(benchmark, n):
    signal = smooth_signal(n)
    codec = DeltaCodec()
    blob = benchmark(codec.compress, signal)
    print(f"\nn={n:,}: ratio {blob.ratio():.2f}x (order {blob.order})")
    assert blob.ratio() > 1.5


@pytest.mark.parametrize("n", [10**5, 10**6])
def test_decompress_throughput(benchmark, n):
    signal = smooth_signal(n)
    codec = DeltaCodec()
    blob = codec.compress(signal)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, signal)


def test_blocked_decode_throughput(benchmark):
    signal = smooth_signal(10**6)
    codec = BlockedDeltaCodec(block_elements=65536)
    blob = codec.compress(signal)
    out = benchmark(codec.decompress, blob)
    assert np.array_equal(out, signal)


def test_random_access_is_cheaper_than_full_decode(benchmark):
    signal = smooth_signal(10**6)
    codec = BlockedDeltaCodec(block_elements=65536)
    blob = codec.compress(signal)
    block = benchmark(codec.decompress_block, blob, 7)
    assert np.array_equal(block, signal[7 * 65536 : 8 * 65536])


def test_tuple_model_beats_naive_on_interleaved_data():
    signal = interleaved_signal(200_000)
    codec = DeltaCodec()
    naive = codec.compress(signal, order=1, tuple_size=1)
    aware = codec.compress(signal, order=1, tuple_size=2)
    print(f"\nnaive {naive.ratio():.2f}x vs tuple-aware {aware.ratio():.2f}x")
    assert aware.nbytes < naive.nbytes / 2


def test_decode_scan_is_not_the_bottleneck():
    # The prefix-sum half of decoding is far cheaper than the varint
    # coder half — the motivation for accelerating it on a GPU is that
    # on the GPU the coder parallelizes trivially per block while the
    # scan is the serial-looking part.
    import time

    from repro.core.host import host_prefix_sum

    signal = smooth_signal(10**6)
    codec = DeltaCodec()
    blob = codec.compress(signal)

    start = time.perf_counter()
    codec.decompress(blob)
    full = time.perf_counter() - start

    residuals = np.zeros(len(signal), dtype=np.int32)
    start = time.perf_counter()
    host_prefix_sum(residuals, order=blob.order)
    scan_only = time.perf_counter() - start
    print(f"\nfull decode {full * 1e3:.1f} ms, prefix-sum part {scan_only * 1e3:.1f} ms")
    assert scan_only < full
