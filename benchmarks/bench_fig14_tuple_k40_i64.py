"""Figure 14: tuple-based prefix sums, 64-bit, K40.

64-bit: SAM already wins from 5-tuples on the K40.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig14.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig14(benchmark):
    run_figure_bench(benchmark, "fig14")
