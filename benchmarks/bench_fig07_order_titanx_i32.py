"""Figure 7: higher-order prefix sums, 32-bit, Titan X.

SAM vs iterated CUB at orders 2, 5, and 8.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig07.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig07(benchmark):
    run_figure_bench(benchmark, "fig07")
