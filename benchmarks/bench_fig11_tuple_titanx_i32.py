"""Figure 11: tuple-based prefix sums, 32-bit, Titan X.

SAM's strided kernel vs CUB with a declared tuple data type; crossover ~5 elements.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig11.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig11(benchmark):
    run_figure_bench(benchmark, "fig11")
