#!/usr/bin/env python
"""Benchmark: the unified kernel layer vs the old strided-loop host path.

Two sections, one JSON (``benchmarks/results/BENCH_kernels.json``):

* ``rows`` — ``repro.kernels.scan_into`` (the 2-D lane-block kernel
  with the cache-blocked integer path) against the pre-kernel host
  implementation (a Python loop over ``s`` strided lane slices with
  per-lane exclusive temporaries, inlined below as ``legacy_scan``),
  swept over tuple_size x order x dtype x op.  ``speedup`` is measured
  within one run on one machine, so it is the machine-independent
  number the CI gate (`tools/bench_gate.py`) regresses on.
* ``session_rows`` — ``ScanSession``'s integer path against the
  sharded driver's per-chunk kernel (`repro.kernels.LaneKernel`,
  in-place mode) feeding identical chunk streams: the ROADMAP item
  this PR closes asked the session to stop losing to the sharded
  kernel on single-core chunk scans.

Every timed configuration is first checked bit-identical against the
legacy path (integers) before the clock starts.

Usage:
    python benchmarks/bench_kernels.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.ops import get_op  # noqa: E402
from repro.stream import ScanSession  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_kernels.json"

N_ELEMENTS = 1 << 22
TUPLE_SIZES = (1, 2, 4, 16, 64)
ORDERS = (1, 2, 3)
DTYPES = ("int32", "int64")
OPS = ("add", "max")
REPEATS = 3

SESSION_TUPLE_SIZES = (1, 4, 16)
SESSION_CHUNK_ELEMENTS = 1 << 20


def legacy_scan(values, op, order, tuple_size, inclusive=True):
    """The pre-kernel host path, verbatim: a Python loop over ``s``
    strided lane slices, a fresh output per pass, and a per-lane
    ``shifted`` temporary on the exclusive pass."""
    identity = op.identity(values.dtype)
    out = values
    for iteration in range(order):
        last = iteration == order - 1
        incl = inclusive or not last
        src = out
        out = np.empty_like(src)
        for lane in range(tuple_size):
            lane_values = src[lane::tuple_size]
            if lane_values.size == 0:
                continue
            lane_scan = op.accumulate(lane_values)
            if incl:
                out[lane::tuple_size] = lane_scan
            else:
                shifted = np.empty_like(lane_scan)
                shifted[0] = identity
                shifted[1:] = lane_scan[:-1]
                out[lane::tuple_size] = shifted
    return out


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_kernel_sweep(n, tuple_sizes, orders, dtypes, ops, repeats):
    rng = np.random.default_rng(42)
    rows = []
    for dtype in dtypes:
        values = rng.integers(-1000, 1000, size=n).astype(dtype)
        for opname in ops:
            op = get_op(opname)
            for s in tuple_sizes:
                for order in orders:
                    want = legacy_scan(values, op, order, s)
                    scratch = np.empty_like(values)
                    got = kernels.scan_into(
                        values, scratch, op, order=order, tuple_size=s
                    )
                    if got.tobytes() != want.tobytes():
                        raise SystemExit(
                            f"kernel mismatch vs legacy path "
                            f"(op={opname} dtype={dtype} s={s} q={order})"
                        )
                    legacy_seconds = _time(
                        lambda: legacy_scan(values, op, order, s), repeats
                    )
                    kernel_seconds = _time(
                        lambda: kernels.scan_into(
                            values, scratch, op, order=order, tuple_size=s
                        ),
                        repeats,
                    )
                    rows.append({
                        "tuple_size": s,
                        "order": order,
                        "dtype": dtype,
                        "op": opname,
                        "n": n,
                        "legacy_seconds": legacy_seconds,
                        "kernel_seconds": kernel_seconds,
                        "speedup": legacy_seconds / kernel_seconds,
                        "legacy_items_per_s": n / legacy_seconds,
                        "kernel_items_per_s": n / kernel_seconds,
                    })
                    print(
                        f"{opname:>4} {dtype:>6} s={s:<3} q={order}: "
                        f"legacy {legacy_seconds * 1e3:7.2f} ms, "
                        f"kernel {kernel_seconds * 1e3:7.2f} ms "
                        f"({rows[-1]['speedup']:.2f}x)"
                    )
    return rows


def run_session_sweep(n, tuple_sizes, chunk_elements, repeats):
    """ScanSession integer path vs the sharded driver's per-chunk kernel."""
    rng = np.random.default_rng(7)
    values = rng.integers(-1000, 1000, size=n, dtype=np.int64)
    chunks = [
        values[i : i + chunk_elements] for i in range(0, n, chunk_elements)
    ]
    op = get_op("add")
    rows = []
    for s in tuple_sizes:
        def run_session():
            session = ScanSession(op="add", tuple_size=s, dtype=np.int64)
            for chunk in chunks:
                session.feed(chunk)

        def run_lane_kernel():
            # The sharded driver's per-chunk scan: an owned copy fed to
            # the in-place kernel (exactly what `_scan_shard` does).
            kernel = kernels.LaneKernel(op, np.int64, s, exact=False)
            for chunk in chunks:
                kernel.feed(np.array(chunk, copy=True))

        session = ScanSession(op="add", tuple_size=s, dtype=np.int64)
        got = np.concatenate([session.feed(c) for c in chunks])
        want = legacy_scan(values, op, 1, s)
        if got.tobytes() != want.tobytes():
            raise SystemExit(f"session mismatch vs legacy path (s={s})")

        # The two sides differ by a few percent at most, so this
        # section needs more repeats than the kernel sweep for a
        # stable best-of.
        session_seconds = _time(run_session, 3 * repeats)
        kernel_seconds = _time(run_lane_kernel, 3 * repeats)
        rows.append({
            "tuple_size": s,
            "dtype": "int64",
            "op": "add",
            "n": n,
            "chunk_elements": chunk_elements,
            "session_seconds": session_seconds,
            "lane_kernel_seconds": kernel_seconds,
            "session_items_per_s": n / session_seconds,
            "lane_kernel_items_per_s": n / kernel_seconds,
            "session_vs_lane_kernel": kernel_seconds / session_seconds,
        })
        print(
            f"session s={s:<3}: {session_seconds * 1e3:7.2f} ms vs "
            f"lane-kernel {kernel_seconds * 1e3:7.2f} ms "
            f"({rows[-1]['session_vs_lane_kernel']:.2f}x; >= 1 means the "
            f"session path is no slower)"
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help=f"result JSON path (default {RESULTS})")
    args = parser.parse_args(argv)
    if args.quick:
        # Same n as the full sweep: the legacy-vs-kernel speedup is
        # size-dependent, and the CI gate compares quick rows against
        # the committed full-sweep baseline by (s, q, dtype, op) key —
        # only the grid and repeat count shrink.
        n = N_ELEMENTS
        tuple_sizes, orders = (1, 4, 16), (1, 2)
        dtypes, ops = ("int64",), ("add",)
        session_tuple_sizes = (1, 16)
        chunk = SESSION_CHUNK_ELEMENTS
        repeats = 2
    else:
        n = N_ELEMENTS
        tuple_sizes, orders = TUPLE_SIZES, ORDERS
        dtypes, ops = DTYPES, OPS
        session_tuple_sizes = SESSION_TUPLE_SIZES
        chunk = SESSION_CHUNK_ELEMENTS
        repeats = REPEATS

    rows = run_kernel_sweep(n, tuple_sizes, orders, dtypes, ops, repeats)
    session_rows = run_session_sweep(n, session_tuple_sizes, chunk, repeats)
    payload = {
        "benchmark": "kernels_vs_legacy_host",
        "n": n,
        "repeats": repeats,
        "quick": bool(args.quick),
        "block_bytes": kernels.BLOCK_BYTES,
        "blocked_min_stride_bytes": kernels.BLOCKED_MIN_STRIDE_BYTES,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup = legacy_seconds / kernel_seconds measured in the "
            "same run, so it is comparable across machines (the CI gate "
            "compares speedups, never absolute seconds).  Large tuple "
            "sizes gain the most: the legacy path pays s Python-level "
            "strided passes while the kernel does one cache-blocked 2-D "
            "accumulate.  session_rows compare ScanSession's integer "
            "path against the sharded driver's per-chunk LaneKernel on "
            "identical chunk streams (>= 1.0 closes the ROADMAP gap)."
        ),
        "rows": rows,
        "session_rows": session_rows,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
