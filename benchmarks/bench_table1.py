"""Table 1: hardware parameters and the architectural factor af.

Regenerates the table from the GPU specs (af = m*b/(t*r), scaled by
1000) and checks every value against the paper's published numbers.
"""

import pytest

from conftest import write_artifact
from repro.harness import format_table1, table1_rows


def test_table1(benchmark):
    rows = benchmark(table1_rows)
    text = format_table1()
    write_artifact("table1", text)
    print()
    print(text)
    for row in rows:
        assert row["af_x1000"] == pytest.approx(row["paper_af_x1000"], abs=0.02), row
