"""Wall-clock benchmarks of the simulated engines and the host library.

These time *this reproduction's own code* (the Python simulator and the
vectorized host implementations), not the modeled GPUs — useful for
tracking regressions in the simulator and for sizing test workloads.
The traffic counters printed alongside are the simulator's measured
words-per-element, i.e. the paper's 2n/3n/4n columns from real counts.
"""

import numpy as np
import pytest

from repro.baselines import (
    DecoupledLookbackScan,
    ReduceThenScan,
    StreamScan,
    ThreePhaseScan,
)
from repro.core import SamScan, host_prefix_sum
from repro.gpusim.spec import TITAN_X

N_SIM = 32768
KW = dict(threads_per_block=128, items_per_thread=2)


def _values(n=N_SIM, dtype=np.int32):
    return np.random.default_rng(42).integers(-1000, 1000, n).astype(dtype)


@pytest.mark.parametrize(
    "name,engine_factory",
    [
        ("sam", lambda: SamScan(spec=TITAN_X, **KW)),
        ("sam_chained", lambda: SamScan(spec=TITAN_X, carry_scheme="chained", **KW)),
        ("cub_lookback", lambda: DecoupledLookbackScan(spec=TITAN_X, **KW)),
        ("mgpu_reduce_scan", lambda: ReduceThenScan(spec=TITAN_X, **KW)),
        ("thrust_three_phase", lambda: ThreePhaseScan(spec=TITAN_X, **KW)),
        ("streamscan", lambda: StreamScan(spec=TITAN_X, **KW)),
    ],
)
def test_simulated_engine(benchmark, name, engine_factory):
    values = _values()
    engine = engine_factory()
    result = benchmark.pedantic(
        lambda: engine.run(values), rounds=3, iterations=1, warmup_rounds=1
    )
    print(f"\n{name}: {result.words_per_element():.2f} words/element "
          f"({result.stats.kernel_launches} launches)")


def test_sam_order8_simulated(benchmark):
    # num_blocks=8 keeps the auxiliary traffic in realistic proportion
    # to the deliberately small chunks used in simulation (on the real
    # GPU e is ~16k elements, so aux traffic is negligible).
    values = _values()
    engine = SamScan(spec=TITAN_X, num_blocks=8, **KW)
    result = benchmark.pedantic(
        lambda: engine.run(values, order=8), rounds=3, iterations=1
    )
    assert result.words_per_element() < 3.0  # data traffic stays 2n at order 8


def test_sam_tuple8_simulated(benchmark):
    values = _values()
    engine = SamScan(spec=TITAN_X, num_blocks=8, **KW)
    result = benchmark.pedantic(
        lambda: engine.run(values, tuple_size=8), rounds=3, iterations=1
    )
    assert result.words_per_element() < 3.0


@pytest.mark.parametrize("n", [10**5, 10**6, 10**7])
def test_host_prefix_sum(benchmark, n):
    """The actually-fast CPU library users call."""
    values = _values(n, np.int64)
    out = benchmark(host_prefix_sum, values, 2, 2)
    assert len(out) == n
