"""Figure 13: tuple-based prefix sums, 32-bit, K40.

CUB wins 2- and 5-tuples on the K40; SAM wins 8-tuples.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig13.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig13(benchmark):
    run_figure_bench(benchmark, "fig13")
