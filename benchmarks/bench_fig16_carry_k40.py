"""Figure 16: carry-propagation ablation, K40.

the same ablation on the K40 (smaller gain: lower compute-to-memory-speed ratio).

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig16.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig16(benchmark):
    run_figure_bench(benchmark, "fig16")
