"""Figure 9: higher-order prefix sums, 32-bit, K40.

on the K40 CUB's stronger baseline delays SAM's crossover to ~order 8.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig09.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig09(benchmark):
    run_figure_bench(benchmark, "fig09")
