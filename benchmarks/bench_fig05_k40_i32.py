"""Figure 5: prefix-sum throughput, 32-bit integers, K40.

the older Kepler GPU, where CUB keeps the lead on large inputs.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig05.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig05(benchmark):
    run_figure_bench(benchmark, "fig05")
