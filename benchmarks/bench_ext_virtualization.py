"""Extension (paper §6 future work): partial-GPU / virtualized execution.

"it may make sense to add support for ... parallel kernel execution and
virtualization environments where not all SMs of a GPU are always
available."

SAM's persistent-block count k is a launch-time parameter, so running
on a partial GPU is just launching fewer blocks.  This bench sweeps the
available fraction of the Titan X's SMs and verifies the properties the
paper's design implies: results stay bit-identical, auxiliary storage
shrinks with k (it is O(k)), and the redundant carry work per chunk
drops with k while the chunk pipeline gets shallower.
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.core import SamScan
from repro.core.carry import next_power_of_two
from repro.gpusim.spec import TITAN_X
from repro.reference import prefix_sum_serial

N = 16384
FRACTIONS = (1.0, 0.5, 0.25, 0.125)


def _values():
    return np.random.default_rng(4).integers(-500, 500, N).astype(np.int32)


def _run(k):
    engine = SamScan(
        spec=TITAN_X, threads_per_block=64, items_per_thread=1, num_blocks=k
    )
    return engine.run(_values())


def test_virtualization_sweep(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    text = "\n".join(rows)
    write_artifact("ext_virtualization", text)
    print()
    print(text)


def _build_rows():
    full_k = TITAN_X.persistent_blocks
    rows = [
        "extension: SAM on a partial GPU (fewer resident blocks)",
        f"{'SM fraction':>12} {'k':>4} {'aux slots':>10} {'carry adds/chunk':>17}",
    ]
    for fraction in FRACTIONS:
        k = max(1, int(full_k * fraction))
        result = _run(k)
        slots = next_power_of_two(3 * min(k, result.num_chunks) + 1)
        per_chunk = result.stats.carry_additions / result.num_chunks
        rows.append(f"{fraction:>12.3f} {k:>4} {slots:>10} {per_chunk:>17.1f}")
    return rows


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_results_identical_on_partial_gpu(fraction):
    k = max(1, int(TITAN_X.persistent_blocks * fraction))
    result = _run(k)
    assert np.array_equal(result.values, prefix_sum_serial(_values()))


def test_carry_work_scales_down_with_k():
    small_k = _run(6)
    large_k = _run(48)
    per_chunk_small = small_k.stats.carry_additions / small_k.num_chunks
    per_chunk_large = large_k.stats.carry_additions / large_k.num_chunks
    print(f"\ncarry adds/chunk: k=6 -> {per_chunk_small:.1f}, k=48 -> {per_chunk_large:.1f}")
    assert per_chunk_small < per_chunk_large
