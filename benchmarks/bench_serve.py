#!/usr/bin/env python
"""Benchmark: batched multi-stream dispatch vs per-session feeds.

One JSON (``benchmarks/results/BENCH_serve.json``) with two parts:

* ``rows`` — the gated metric: B concurrent small-chunk integer
  streams advanced one chunk each, dispatched either sequentially
  (``session.feed`` per stream) or coalesced
  (:func:`repro.serve.feed_batch` over one
  :class:`repro.kernels.BatchedLaneKernel`).  ``speedup`` is
  unbatched_seconds / batched_seconds measured within one run — the
  machine-independent ratio.  The headline row is the ISSUE's
  acceptance shape: 64 concurrent 1 KiB int64 streams, where batching
  must sustain >= 2x the streams/sec of per-session dispatch.
* ``socket`` — reported (not gated): end-to-end feeds/sec through the
  real asyncio server over a unix socket with pipelining clients, once
  with batching enabled and once forced solo (``batch_max=1``), plus
  the server's measured batch-occupancy gauge.  Socket numbers include
  framing and event-loop costs and exist to show the service keeps the
  kernel-level win, not to regress on.

Every batched configuration is checked bit-identical against
sequential feeds before the clock starts.

Usage:
    python benchmarks/bench_serve.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.kernels import BatchedLaneKernel  # noqa: E402
from repro.ops import get_op  # noqa: E402
from repro.serve import feed_batch  # noqa: E402
from repro.stream.session import ScanSession  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_serve.json"

CHUNK_BYTES = 1024            # the acceptance shape: 1 KiB chunks
TARGET_STREAMS = 64           # ... across 64 concurrent streams
TARGET_SPEEDUP = 2.0
STREAM_COUNTS = (8, 64, 256)
ROUNDS = 200
REPEATS = 3


def _sessions(b, op, dtype):
    return [ScanSession(op=op, dtype=dtype) for _ in range(b)]


def _chunks(rng, b, rounds, dtype):
    per = CHUNK_BYTES // np.dtype(dtype).itemsize
    return [
        [rng.integers(-1000, 1000, size=per).astype(dtype) for _ in range(b)]
        for _ in range(rounds)
    ]


def _verify(op, dtype, rng):
    rounds = _chunks(rng, 7, 5, dtype)
    seq = _sessions(7, op, dtype)
    bat = _sessions(7, op, dtype)
    kernel = BatchedLaneKernel(get_op(op), np.dtype(dtype), 1)
    for round_chunks in rounds:
        want = [s.feed(c.copy()) for s, c in zip(seq, round_chunks)]
        got = feed_batch(bat, [c.copy() for c in round_chunks], kernel)
        for a, b in zip(want, got):
            if a.tobytes() != b.tobytes():
                raise SystemExit(
                    f"feed_batch mismatch vs sequential feeds "
                    f"(op={op} dtype={dtype})"
                )


def _time_dispatch(b, rounds, op, dtype, rng, batched, repeats):
    best = float("inf")
    for _ in range(repeats):
        sessions = _sessions(b, op, dtype)
        kernel = BatchedLaneKernel(get_op(op), np.dtype(dtype), 1)
        chunk_rounds = _chunks(rng, b, rounds, dtype)
        t0 = time.perf_counter()
        if batched:
            for round_chunks in chunk_rounds:
                feed_batch(sessions, round_chunks, kernel)
        else:
            for round_chunks in chunk_rounds:
                for session, chunk in zip(sessions, round_chunks):
                    session.feed(chunk)
        best = min(best, time.perf_counter() - t0)
    return best


def run_dispatch_rows(stream_counts, rounds, repeats, rng):
    rows = []
    for op, dtype in (("add", "int64"), ("max", "int64"), ("add", "int32")):
        _verify(op, dtype, rng)
        for b in stream_counts:
            unbatched = _time_dispatch(b, rounds, op, dtype, rng, False, repeats)
            batched = _time_dispatch(b, rounds, op, dtype, rng, True, repeats)
            feeds = b * rounds
            rows.append({
                "op": op,
                "dtype": dtype,
                "tuple_size": 1,
                "order": 1,
                "streams": b,
                "chunk_bytes": CHUNK_BYTES,
                "rounds": rounds,
                "unbatched_seconds": unbatched,
                "batched_seconds": batched,
                "unbatched_feeds_per_s": feeds / unbatched,
                "batched_feeds_per_s": feeds / batched,
                "speedup": unbatched / batched,
            })
            print(
                f"{op:>4} {dtype:>6} B={b:<4} unbatched "
                f"{feeds / unbatched:9.0f} feeds/s, batched "
                f"{feeds / batched:9.0f} feeds/s  "
                f"({rows[-1]['speedup']:.2f}x)"
            )
    return rows


def run_socket_measurement(n_clients, chunks_per_client, batch_max):
    """End-to-end feeds/sec through the real server over a unix socket."""
    import tempfile
    import threading

    from repro.serve import ScanClient, ScanServer

    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "bench.sock")
        started = threading.Event()
        holder = {}

        def run_server():
            import asyncio

            async def main():
                server = ScanServer(unix_path=sock, batch_max=batch_max)
                await server.start()
                holder["server"] = server
                holder["loop"] = asyncio.get_running_loop()
                started.set()
                await server.serve_forever()
                await server.stop()

            asyncio.run(main())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        if not started.wait(10):
            raise SystemExit("bench server never started")

        rng = np.random.default_rng(7)
        per = CHUNK_BYTES // 8
        payloads = [rng.integers(-1000, 1000, size=per).astype("int64")
                    for _ in range(chunks_per_client)]
        barrier = threading.Barrier(n_clients + 1)

        def client_worker(name):
            with ScanClient(f"unix:{sock}") as client:
                client.open(name, op="add", dtype="int64")
                barrier.wait(timeout=30)
                client.feed_many(name, payloads, window=8)

        workers = [
            threading.Thread(target=client_worker, args=(f"w{i}",))
            for i in range(n_clients)
        ]
        for w in workers:
            w.start()
        barrier.wait(timeout=30)
        t0 = time.perf_counter()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - t0

        server = holder["server"]
        kernels = list(server._kernels.values())
        dispatches = sum(k.dispatches for k in kernels)
        occupancy = (
            sum(k.streams_fed for k in kernels) / dispatches
            if dispatches else 0.0
        )
        holder["loop"].call_soon_threadsafe(server.request_stop)
        thread.join(timeout=10)
        feeds = n_clients * chunks_per_client
        return {
            "clients": n_clients,
            "chunks_per_client": chunks_per_client,
            "chunk_bytes": CHUNK_BYTES,
            "batch_max": batch_max,
            "seconds": elapsed,
            "feeds_per_s": feeds / elapsed,
            "batch_occupancy": occupancy,
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help=f"result JSON path (default {RESULTS})")
    args = parser.parse_args(argv)
    rng = np.random.default_rng(42)
    if args.quick:
        stream_counts = (TARGET_STREAMS,)
        rounds, repeats = 50, 2
        socket_clients, socket_chunks = 8, 60
    else:
        stream_counts = STREAM_COUNTS
        rounds, repeats = ROUNDS, REPEATS
        socket_clients, socket_chunks = 16, 150

    rows = run_dispatch_rows(stream_counts, rounds, repeats, rng)

    print("\nsocket end-to-end (reported, not gated):")
    socket_batched = run_socket_measurement(
        socket_clients, socket_chunks, batch_max=64
    )
    print(
        f"  batched:   {socket_batched['feeds_per_s']:9.0f} feeds/s "
        f"(occupancy {socket_batched['batch_occupancy']:.2f})"
    )
    socket_solo = run_socket_measurement(
        socket_clients, socket_chunks, batch_max=1
    )
    print(f"  batch_max=1: {socket_solo['feeds_per_s']:7.0f} feeds/s")

    headline = [
        r for r in rows
        if r["streams"] == TARGET_STREAMS and r["op"] == "add"
        and r["dtype"] == "int64"
    ]
    headline_speedup = headline[0]["speedup"] if headline else None
    cpu_count = os.cpu_count()
    payload = {
        "benchmark": "serve_batched_dispatch",
        "quick": bool(args.quick),
        "target": {
            "speedup": TARGET_SPEEDUP,
            "streams": TARGET_STREAMS,
            "chunk_bytes": CHUNK_BYTES,
            "headline_speedup": headline_speedup,
            "met": bool(
                headline_speedup is not None
                and headline_speedup >= TARGET_SPEEDUP
            ),
            "achievable_here": True,
        },
        "hardware": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup = unbatched_seconds / batched_seconds for the "
            "same feeds measured in the same run (machine-independent "
            "ratio).  The win is amortized dispatch overhead, not "
            "parallelism, so it holds on a single-CPU machine — "
            "achievable_here is always true.  Socket numbers include "
            "framing + event-loop costs and are reported for context, "
            "not gated."
        ),
        "rows": rows,
        "socket": {"batched": socket_batched, "solo": socket_solo},
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if headline_speedup is not None:
        status = "met" if payload["target"]["met"] else "NOT met"
        print(
            f"headline: {headline_speedup:.2f}x batched vs unbatched at "
            f"B={TARGET_STREAMS} x {CHUNK_BYTES}B chunks — "
            f"target {TARGET_SPEEDUP}x {status}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
