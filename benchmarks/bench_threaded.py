#!/usr/bin/env python
"""Benchmark: the threaded in-memory lane kernel vs the serial kernel.

One JSON (``benchmarks/results/BENCH_threaded.json``): ``rows`` sweep
``repro.kernels.threaded_scan_into`` against serial
``repro.kernels.scan_into`` on the same buffers in the same run, over
threads x tuple_size x order for the ISSUE's headline shape (8M int64
= 64 MiB of add).  ``speedup`` is serial/threaded measured within one
run on one machine — the machine-independent ratio the CI gate
(`tools/bench_gate.py`) regresses on; rows carry ``threads`` so the
gate matches per thread count.

Every timed configuration is first checked bit-identical against the
serial kernel before the clock starts (the threaded kernel's contract
is exactness, not just speed).

The payload also records ``cpu_count`` and an honest ``target_met``
for the ISSUE's acceptance number (>= 1.5x for int64 add at 64 MiB
with 4 slab threads): slab threads can only beat the serial kernel
when the machine has cores for them, so on single-core runners the
flag is expected (and reported) as false rather than gamed.

Usage:
    python benchmarks/bench_threaded.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.ops import get_op  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_threaded.json"

N_ELEMENTS = 1 << 23          # 8M int64 = 64 MiB: the ISSUE's headline shape
THREADS = (1, 2, 4)
TUPLE_SIZES = (1, 4)
ORDERS = (1, 2)
DTYPES = ("int64",)
OPS = ("add",)
REPEATS = 3
TARGET_SPEEDUP = 1.5
TARGET_THREADS = 4


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(n, threads_list, tuple_sizes, orders, dtypes, ops, repeats):
    rng = np.random.default_rng(42)
    rows = []
    for dtype in dtypes:
        values = rng.integers(-1000, 1000, size=n).astype(dtype)
        scratch = np.empty_like(values)
        for opname in ops:
            op = get_op(opname)
            for s in tuple_sizes:
                for order in orders:
                    want = kernels.scan_into(
                        values, np.empty_like(values), op,
                        order=order, tuple_size=s,
                    )
                    serial_seconds = _time(
                        lambda: kernels.scan_into(
                            values, scratch, op, order=order, tuple_size=s
                        ),
                        repeats,
                    )
                    for threads in threads_list:
                        got = kernels.threaded_scan_into(
                            values, np.empty_like(values), op,
                            order=order, tuple_size=s, threads=threads,
                        )
                        if got.tobytes() != want.tobytes():
                            raise SystemExit(
                                f"threaded mismatch vs serial kernel "
                                f"(op={opname} dtype={dtype} s={s} "
                                f"q={order} threads={threads})"
                            )
                        threaded_seconds = _time(
                            lambda: kernels.threaded_scan_into(
                                values, scratch, op, order=order,
                                tuple_size=s, threads=threads,
                            ),
                            repeats,
                        )
                        rows.append({
                            "tuple_size": s,
                            "order": order,
                            "dtype": dtype,
                            "op": opname,
                            "threads": threads,
                            "n": n,
                            "serial_seconds": serial_seconds,
                            "threaded_seconds": threaded_seconds,
                            "speedup": serial_seconds / threaded_seconds,
                            "serial_items_per_s": n / serial_seconds,
                            "threaded_items_per_s": n / threaded_seconds,
                        })
                        print(
                            f"{opname:>4} {dtype:>6} s={s:<3} q={order} "
                            f"t={threads}: serial "
                            f"{serial_seconds * 1e3:7.2f} ms, threaded "
                            f"{threaded_seconds * 1e3:7.2f} ms "
                            f"({rows[-1]['speedup']:.2f}x)"
                        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help=f"result JSON path (default {RESULTS})")
    args = parser.parse_args(argv)
    if args.quick:
        # Same n as the full sweep: the serial-vs-threaded ratio is
        # size-dependent and the gate matches quick rows against the
        # committed full-sweep baseline by (s, q, dtype, op, threads).
        n = N_ELEMENTS
        threads_list = (1, TARGET_THREADS)
        tuple_sizes, orders = (1,), (1,)
        repeats = 2
    else:
        n = N_ELEMENTS
        threads_list = THREADS
        tuple_sizes, orders = TUPLE_SIZES, ORDERS
        repeats = REPEATS

    rows = run_sweep(n, threads_list, tuple_sizes, orders, DTYPES, OPS, repeats)
    headline = [
        r for r in rows
        if r["tuple_size"] == 1 and r["order"] == 1 and r["dtype"] == "int64"
        and r["op"] == "add" and r["threads"] == TARGET_THREADS
    ]
    headline_speedup = headline[0]["speedup"] if headline else None
    cpu_count = os.cpu_count()
    payload = {
        "benchmark": "threaded_vs_serial_kernel",
        "n": n,
        "repeats": repeats,
        "quick": bool(args.quick),
        "target": {
            "speedup": TARGET_SPEEDUP,
            "threads": TARGET_THREADS,
            "headline_speedup": headline_speedup,
            "met": bool(
                headline_speedup is not None
                and headline_speedup >= TARGET_SPEEDUP
            ),
            "achievable_here": bool(cpu_count and cpu_count >= 2),
        },
        "hardware": {
            "cpu_count": cpu_count,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup = serial_seconds / threaded_seconds measured in "
            "the same run, so it is comparable across machines (the CI "
            "gate compares speedups, never absolute seconds).  Slab "
            "parallelism needs real cores: on a single-CPU machine the "
            "expected speedup is ~1.0x (the threaded kernel's job there "
            "is to not regress), and target.met honestly reports "
            "against the >= 1.5x acceptance number either way; "
            "target.achievable_here says whether this machine could "
            "have met it at all."
        ),
        "rows": rows,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if headline_speedup is not None:
        status = "met" if payload["target"]["met"] else "NOT met"
        print(
            f"headline: {headline_speedup:.2f}x at {TARGET_THREADS} threads "
            f"on {cpu_count} cpu(s) — target {TARGET_SPEEDUP}x {status}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
