#!/usr/bin/env python
"""Benchmark: streaming out-of-core scan vs the one-shot host engine.

Sweeps the chunk budget over a fixed file and times ``scan_file``
(memory-mapped, double-buffered, optionally checkpointed) against the
one-shot baseline (read whole file, ``host_prefix_sum``, write whole
file).  Writes ``benchmarks/results/BENCH_stream.json`` with raw
seconds, items/s, relative throughput, and the stream driver's own
per-phase counters (read / scan / write / checkpoint), so the cost of
out-of-core execution and of durability is measurable rather than
assumed.

Expected shape: throughput approaches the one-shot engine as chunks
grow (per-chunk overhead amortizes), and checkpointing costs a bounded
extra slice of wall-clock (the fsyncs), traded for resumability.

Usage:
    python benchmarks/bench_stream_oneshot.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.host import host_prefix_sum  # noqa: E402
from repro.stream import scan_file  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_stream.json"

N_ELEMENTS = 1 << 22          # 32 MiB of int64
CHUNK_BYTES = (1 << 18, 1 << 20, 1 << 22, 1 << 24)
ORDER = 2
REPEATS = 3


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(n, chunk_sizes, repeats, workdir: pathlib.Path) -> dict:
    rng = np.random.default_rng(42)
    values = rng.integers(-1000, 1000, size=n, dtype=np.int64)
    raw = workdir / "in.bin"
    values.tofile(raw)

    def oneshot():
        data = np.fromfile(raw, dtype=np.int64)
        out = host_prefix_sum(data, order=ORDER)
        out.tofile(workdir / "oneshot.bin")

    oneshot_seconds = _time(oneshot, repeats)
    print(
        f"one-shot host: {oneshot_seconds * 1e3:8.2f} ms "
        f"({n / oneshot_seconds / 1e6:.1f} M items/s)"
    )

    rows = []
    for chunk_bytes in chunk_sizes:
        for checkpointed in (False, True):
            out_path = workdir / "stream.bin"
            ckpt = workdir / "job.ckpt" if checkpointed else None
            kwargs = dict(
                dtype="int64", order=ORDER, chunk_bytes=chunk_bytes,
                checkpoint=ckpt, checkpoint_every=4,
            )
            result = scan_file(raw, out_path, **kwargs)  # warm page cache
            stream_seconds = _time(
                lambda: scan_file(raw, out_path, **kwargs), repeats
            )
            c = result.counters
            rows.append({
                "chunk_bytes": chunk_bytes,
                "chunks": c.chunks,
                "checkpointed": checkpointed,
                "checkpoint_writes": c.checkpoint_writes,
                "oneshot_seconds": oneshot_seconds,
                "stream_seconds": stream_seconds,
                "stream_vs_oneshot": oneshot_seconds / stream_seconds,
                "oneshot_items_per_s": n / oneshot_seconds,
                "stream_items_per_s": n / stream_seconds,
                "seconds_read": c.seconds_read,
                "seconds_scan": c.seconds_scan,
                "seconds_write": c.seconds_write,
                "seconds_checkpoint": c.seconds_checkpoint,
            })
            print(
                f"chunk {chunk_bytes >> 10:6d} KiB "
                f"({c.chunks:4d} chunks, ckpt={'y' if checkpointed else 'n'}): "
                f"{stream_seconds * 1e3:8.2f} ms "
                f"({rows[-1]['stream_vs_oneshot']:.2f}x one-shot)"
            )
    return {
        "benchmark": "stream_vs_oneshot",
        "n": n,
        "order": ORDER,
        "op": "add",
        "dtype": "int64",
        "repeats": repeats,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "stream_vs_oneshot < 1 is the price of bounded memory + "
            "chunk pipelining; checkpointed rows additionally pay one "
            "output fsync + atomic state write per checkpoint_every chunks"
        ),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    args = parser.parse_args(argv)
    n = N_ELEMENTS // 4 if args.quick else N_ELEMENTS
    chunk_sizes = CHUNK_BYTES[:2] if args.quick else CHUNK_BYTES
    repeats = 2 if args.quick else REPEATS

    with tempfile.TemporaryDirectory(prefix="bench_stream_") as td:
        payload = run_sweep(n, chunk_sizes, repeats, pathlib.Path(td))
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
