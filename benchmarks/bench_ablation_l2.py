"""Ablation: L2 residency of the auxiliary arrays (§5.1's locality claim).

"While SAM accesses its auxiliary memory O(n) times just like the other
algorithms do, using O(1) sized circular buffers results in better
locality and thus more cache hits."

Measured with the set-associative LRU model: SAM's auxiliary misses are
compulsory only (a handful of circular-buffer lines, independent of n),
while the decoupled-lookback baseline's O(n) status/aggregate/prefix
arrays miss once per line, growing linearly with the input.
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.baselines import DecoupledLookbackScan
from repro.core import SamScan
from repro.gpusim.spec import TITAN_X

L2_BYTES = 8192
SIZES = (8192, 16384, 32768, 65536)


def _aux_misses(result, keys):
    return sum(
        misses
        for name, (_, misses) in result.l2.per_array_stats().items()
        if any(key in name for key in keys)
    )


def _run(n):
    values = np.random.default_rng(0).integers(-100, 100, n).astype(np.int32)
    sam = SamScan(
        spec=TITAN_X,
        threads_per_block=64,
        items_per_thread=1,
        num_blocks=8,
        l2_bytes=L2_BYTES,
    ).run(values)
    cub = DecoupledLookbackScan(
        spec=TITAN_X, threads_per_block=64, items_per_thread=1, l2_bytes=L2_BYTES
    ).run(values)
    return sam, cub


def test_aux_residency_sweep(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    text = "\n".join(rows)
    write_artifact("ablation_l2", text)
    print()
    print(text)


def _build_rows():
    rows = [
        f"ablation: auxiliary-array L2 misses ({L2_BYTES}-byte modeled L2)",
        f"{'n':>8} {'SAM aux misses':>15} {'lookback aux misses':>20}",
    ]
    for n in SIZES:
        sam, cub = _run(n)
        rows.append(
            f"{n:>8} {_aux_misses(sam, ('sam_sums', 'sam_flags')):>15} "
            f"{_aux_misses(cub, ('status', 'agg', 'prefix')):>20}"
        )
    return rows


def test_sam_aux_misses_o1_vs_lookback_on():
    sam_small, cub_small = _run(SIZES[0])
    sam_large, cub_large = _run(SIZES[-1])
    sam_growth = _aux_misses(sam_large, ("sam_sums", "sam_flags")) - _aux_misses(
        sam_small, ("sam_sums", "sam_flags")
    )
    cub_growth = _aux_misses(cub_large, ("status", "agg", "prefix")) - _aux_misses(
        cub_small, ("status", "agg", "prefix")
    )
    print(f"\naux-miss growth 8k->64k: SAM {sam_growth}, lookback {cub_growth}")
    assert sam_growth <= 2
    assert cub_growth >= 50
