"""Figure 15: carry-propagation ablation, Titan X.

SAM's write-then-independent-reads scheme vs the chained read-modify-write carry.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig15.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig15(benchmark):
    run_figure_bench(benchmark, "fig15")
