"""Extension (paper §6): scans with other associative operators.

"we could evaluate SAM with other associative operators (i.e., scans
instead of prefix sums), which we have already done with built-in
primitives like max and xor but not described in this paper."

The simulator makes the interesting part measurable: operator choice
does not change SAM's memory traffic at all (the kernel is the same;
only the combine changes), so every operator scans at the same
2-words-per-element budget.
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.core import SamScan
from repro.gpusim.spec import TITAN_X
from repro.reference import prefix_sum_serial

OPERATORS = ("add", "max", "min", "xor", "and", "or", "mul")


def _engine():
    return SamScan(
        spec=TITAN_X, threads_per_block=128, items_per_thread=2, num_blocks=8
    )


def test_operator_sweep(benchmark):
    values = np.random.default_rng(0).integers(-1000, 1000, 16384).astype(np.int64)
    rows = benchmark(_build_rows, values)
    text = "\n".join(rows)
    write_artifact("ext_operators", text)
    print()
    print(text)


def _build_rows(values):
    rows = ["extension: SAM scans with other operators (simulator-measured)"]
    rows.append(f"{'op':>6} {'words/elem':>11} {'shuffles':>9} {'correct':>8}")
    for op in OPERATORS:
        result = _engine().run(values, op=op)
        ok = np.array_equal(result.values, prefix_sum_serial(values, op=op))
        rows.append(
            f"{op:>6} {result.words_per_element():>11.2f} "
            f"{result.stats.shuffles:>9} {'yes' if ok else 'NO'}"
        )
    return rows


@pytest.mark.parametrize("op", OPERATORS)
def test_traffic_is_operator_independent(op):
    values = np.random.default_rng(1).integers(1, 50, 8192).astype(np.int64)
    add_words = _engine().run(values, op="add").stats.global_words_total
    op_words = _engine().run(values, op=op).stats.global_words_total
    assert op_words == add_words
