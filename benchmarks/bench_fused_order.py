#!/usr/bin/env python
"""Benchmark: fused single-pass order-q scans vs pass-per-order.

One JSON (``benchmarks/results/BENCH_fused.json``): ``rows`` sweep the
fused tile-resident path (``repro.kernels.scan_into`` inside the
:func:`repro.kernels.fused_supported` gate — one streaming pass that
produces all ``q`` orders with binomial carry splicing across tiles)
against the pass-per-order layout (``q`` iterated
``repro.kernels.lane_scan`` passes — the paper's ``2qn`` traffic) on
the same buffers in the same run.  ``speedup`` is
pass-per-order/fused measured within one run on one machine — the
machine-independent ratio the CI gate (``tools/bench_gate.py``)
regresses on.

Every timed configuration is first checked bit-identical between the
two layouts before the clock starts (the fused path's contract is
exactness under modular integer ADD, not just speed).

The headline shape is the ISSUE's acceptance number: order-3 int64
add on 64 MiB at tuple_size 4 must be >= 2x pass-per-order.  Unlike
the threaded sweep, this advantage needs no extra cores — the win is
memory traffic, one pass instead of q — so ``achievable_here`` is
always true.

Usage:
    python benchmarks/bench_fused_order.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.ops import get_op  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_fused.json"

N_ELEMENTS = 1 << 23          # 8M int64 = 64 MiB: the ISSUE's headline shape
ORDERS = (2, 3, 4)
TUPLE_SIZES = (4,)
DTYPES = ("int64",)
OPS = ("add",)
REPEATS = 3
TARGET_SPEEDUP = 2.0
TARGET_ORDER = 3
TARGET_TUPLE = 4


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def pass_per_order_into(values, out, op, order, tuple_size):
    """The pre-fusion layout: ``order`` iterated lane scans, each a
    full read+write pass over the buffer."""
    current = values
    for _ in range(order):
        kernels.lane_scan(current, op, tuple_size, out=out)
        current = out
    return out


def run_sweep(n, orders, tuple_sizes, dtypes, ops, repeats):
    rng = np.random.default_rng(42)
    rows = []
    for dtype in dtypes:
        values = rng.integers(-1000, 1000, size=n).astype(dtype)
        scratch = np.empty_like(values)
        for opname in ops:
            op = get_op(opname)
            for s in tuple_sizes:
                for order in orders:
                    if not kernels.fused_supported(op, values.dtype, order, s):
                        raise SystemExit(
                            f"sweep shape outside the fused gate "
                            f"(op={opname} dtype={dtype} s={s} q={order})"
                        )
                    want = pass_per_order_into(
                        values, np.empty_like(values), op, order, s
                    )
                    got = kernels.scan_into(
                        values, np.empty_like(values), op,
                        order=order, tuple_size=s,
                    )
                    if got.tobytes() != want.tobytes():
                        raise SystemExit(
                            f"fused mismatch vs pass-per-order "
                            f"(op={opname} dtype={dtype} s={s} q={order})"
                        )
                    per_order_seconds = _time(
                        lambda: pass_per_order_into(
                            values, scratch, op, order, s
                        ),
                        repeats,
                    )
                    fused_seconds = _time(
                        lambda: kernels.scan_into(
                            values, scratch, op, order=order, tuple_size=s
                        ),
                        repeats,
                    )
                    rows.append({
                        "tuple_size": s,
                        "order": order,
                        "dtype": dtype,
                        "op": opname,
                        "n": n,
                        "per_order_seconds": per_order_seconds,
                        "fused_seconds": fused_seconds,
                        "speedup": per_order_seconds / fused_seconds,
                        "per_order_items_per_s": n / per_order_seconds,
                        "fused_items_per_s": n / fused_seconds,
                    })
                    print(
                        f"{opname:>4} {dtype:>6} s={s:<3} q={order}: "
                        f"pass-per-order {per_order_seconds * 1e3:7.2f} ms, "
                        f"fused {fused_seconds * 1e3:7.2f} ms "
                        f"({rows[-1]['speedup']:.2f}x)"
                    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help=f"result JSON path (default {RESULTS})")
    args = parser.parse_args(argv)
    if args.quick:
        # Same n as the full sweep: the fused-vs-iterated ratio is
        # size-dependent (the win is memory traffic, which only shows
        # once the buffer exceeds cache) and the gate matches quick
        # rows against the committed baseline by (s, q, dtype, op, n).
        orders = (TARGET_ORDER,)
        repeats = 2
    else:
        orders = ORDERS
        repeats = REPEATS

    rows = run_sweep(N_ELEMENTS, orders, TUPLE_SIZES, DTYPES, OPS, repeats)
    headline = [
        r for r in rows
        if r["tuple_size"] == TARGET_TUPLE and r["order"] == TARGET_ORDER
        and r["dtype"] == "int64" and r["op"] == "add"
    ]
    headline_speedup = headline[0]["speedup"] if headline else None
    payload = {
        "benchmark": "fused_order_vs_pass_per_order",
        "n": N_ELEMENTS,
        "repeats": repeats,
        "quick": bool(args.quick),
        "target": {
            "speedup": TARGET_SPEEDUP,
            "order": TARGET_ORDER,
            "tuple_size": TARGET_TUPLE,
            "headline_speedup": headline_speedup,
            "met": bool(
                headline_speedup is not None
                and headline_speedup >= TARGET_SPEEDUP
            ),
            "achievable_here": True,
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup = per_order_seconds / fused_seconds measured in "
            "the same run, so it is comparable across machines (the CI "
            "gate compares speedups, never absolute seconds).  The "
            "fused path's advantage is memory traffic — one streaming "
            "pass instead of q — so it holds on any core count; "
            "achievable_here is always true and target.met is the "
            "honest verdict against the >= 2x acceptance number."
        ),
        "rows": rows,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if headline_speedup is not None:
        status = "met" if payload["target"]["met"] else "NOT met"
        print(
            f"headline: {headline_speedup:.2f}x at q={TARGET_ORDER} "
            f"s={TARGET_TUPLE} int64 add 64 MiB — "
            f"target {TARGET_SPEEDUP}x {status}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
