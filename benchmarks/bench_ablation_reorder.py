"""Ablation: direct strided tuple scan vs reorder/scan/undo-reorder.

Section 2.3 dismisses the reorder formulation because "the two
reordering steps require extra memory accesses".  This bench counts
them: the reorder pipeline moves ~6n words (2n per transposition plus
the 2n scan) against SAM's 2n, and its transpositions are uncoalesced.
"""

import numpy as np
import pytest

from repro.baselines import ReorderScanEngine
from repro.core import SamScan
from repro.gpusim.spec import TITAN_X

N = 16384


def _values():
    return np.random.default_rng(9).integers(-500, 500, N).astype(np.int32)


def _sam():
    return SamScan(spec=TITAN_X, threads_per_block=64, items_per_thread=2, num_blocks=4)


@pytest.mark.parametrize("tuple_size", [2, 4, 8])
def test_direct_vs_reorder_traffic(benchmark, tuple_size):
    values = _values()
    direct = benchmark.pedantic(
        lambda: _sam().run(values, tuple_size=tuple_size), rounds=2, iterations=1
    )
    reordered = ReorderScanEngine(_sam()).run(values, tuple_size=tuple_size)
    print(
        f"\ns={tuple_size}: direct {direct.words_per_element():.2f} words/elem, "
        f"reorder {reordered.words_per_element():.2f} words/elem"
    )
    assert direct.words_per_element() < 2.5
    assert reordered.words_per_element() > 5.5
    assert np.array_equal(direct.values, reordered.values)


def test_reorder_transpositions_are_uncoalesced():
    values = _values()
    direct = _sam().run(values, tuple_size=8)
    reordered = ReorderScanEngine(_sam()).run(values, tuple_size=8)
    direct_txn = direct.stats.global_read_transactions
    reorder_txn = reordered.stats.global_read_transactions
    print(f"\nread transactions: direct {direct_txn}, reorder {reorder_txn}")
    assert reorder_txn > 2 * direct_txn
