"""Figure 3: prefix-sum throughput, 32-bit integers, Titan X.

Thrust, CUDPP, CUB, SAM, and the cudaMemcpy ceiling over 2^10..2^30
and 10^3..10^9 items.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig03.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig03(benchmark):
    run_figure_bench(benchmark, "fig03")
