"""Extension (paper §6 future work): combined higher-order x tuple sums.

"we could study and present measurements for the combined case of
higher-order tuple-based prefix sums."  SAM supports the combination in
the same single pass (verified bit-for-bit against the serial oracle in
the test suite); this bench reports the modeled throughput matrix and
the simulator-measured traffic, which stays ~2n for every combination.
"""

import numpy as np
import pytest

from conftest import write_artifact
from repro.core import SamScan
from repro.gpusim.spec import TITAN_X
from repro.perf import PerformanceModel

ORDERS = (1, 2, 5, 8)
TUPLES = (1, 2, 5, 8)


def test_combined_matrix(benchmark):
    model = PerformanceModel()
    rows = benchmark(_build_rows, model)
    text = "\n".join(rows)
    write_artifact("ext_combined", text)
    print()
    print(text)


def _build_rows(model):
    n = 2**27
    rows = [
        "extension: combined order x tuple throughput (G items/s), "
        "Titan X, 32-bit, n = 2^27",
        "rows: order; columns: tuple size",
        "        " + "".join(f"s={s:>8}" for s in TUPLES),
    ]
    for order in ORDERS:
        cells = []
        for s in TUPLES:
            tput = model.throughput("sam", "Titan X", 32, n, order=order, tuple_size=s)
            cells.append(f"{tput / 1e9:>10.2f}")
        rows.append(f"q={order:<5} " + "".join(cells))
    return rows


@pytest.mark.parametrize("order,tuple_size", [(2, 2), (5, 5), (8, 8)])
def test_combined_traffic_stays_2n(order, tuple_size):
    values = np.random.default_rng(0).integers(-100, 100, 16384).astype(np.int32)
    engine = SamScan(
        spec=TITAN_X, threads_per_block=128, items_per_thread=4, num_blocks=4
    )
    result = engine.run(values, order=order, tuple_size=tuple_size)
    print(
        f"\nq={order}, s={tuple_size}: {result.words_per_element():.2f} words/element"
    )
    assert result.words_per_element() < 3.0
    assert result.stats.kernel_launches == 1


def test_combined_monotone_cost():
    model = PerformanceModel()
    base = model.time_seconds("sam", "Titan X", 32, 2**24)
    combined = model.time_seconds("sam", "Titan X", 32, 2**24, order=8, tuple_size=8)
    order_only = model.time_seconds("sam", "Titan X", 32, 2**24, order=8)
    tuple_only = model.time_seconds("sam", "Titan X", 32, 2**24, tuple_size=8)
    assert combined >= max(order_only, tuple_only) > base
