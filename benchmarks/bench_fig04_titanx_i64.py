"""Figure 4: prefix-sum throughput, 64-bit integers, Titan X.

same sweep at 64-bit words (sizes capped at 2^29 by the 4 GB limit).

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig04.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig04(benchmark):
    run_figure_bench(benchmark, "fig04")
