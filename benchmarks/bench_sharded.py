#!/usr/bin/env python
"""Benchmark: sharded out-of-core scan vs the single-session driver.

Times ``scan_file_sharded`` (integer add, order 1, inclusive — the
fully parallel path) against ``scan_file`` over the same file, sweeping
the shard count.  Writes ``benchmarks/results/BENCH_sharded.json`` with
raw seconds, relative throughput, and the sharded driver's own
counters (shards primed vs folded, per-phase seconds), so both of the
driver's wins are measurable rather than assumed:

* **Carry priming + the lean kernel.**  Shards that start after their
  predecessors finish bake the spliced carry into the scan and skip
  the fold entirely, and integer shard passes accumulate in place
  (no prepend copies, no extra output pass) — so even on one core the
  sharded driver does strictly less memory traffic per element than
  the session driver.
* **Parallel shards.**  On a multicore host the phase-1 scans and
  phase-3 folds of different shards overlap (numpy releases the GIL
  inside ufunc loops); phase seconds are summed work, so
  ``seconds_total`` can exceed wall-clock when that happens.

Usage:
    python benchmarks/bench_sharded.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.stream import scan_file, scan_file_sharded  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_sharded.json"

N_ELEMENTS = 1 << 23          # 64 MiB of int64
SHARDS = (2, 4, 8)
CHUNK_BYTES = 4 << 20
REPEATS = 3


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(n, shard_counts, repeats, workdir: pathlib.Path) -> dict:
    rng = np.random.default_rng(42)
    values = rng.integers(-1000, 1000, size=n, dtype=np.int64)
    raw = workdir / "in.bin"
    values.tofile(raw)
    kwargs = dict(dtype="int64", op="add", chunk_bytes=CHUNK_BYTES)

    session_path = workdir / "session.bin"
    scan_file(raw, session_path, **kwargs)  # warm page cache
    session_seconds = _time(
        lambda: scan_file(raw, session_path, **kwargs), repeats
    )
    print(
        f"single-session driver: {session_seconds * 1e3:8.2f} ms "
        f"({n / session_seconds / 1e6:.1f} M items/s)"
    )
    reference = np.fromfile(session_path, dtype=np.int64)

    workers = os.cpu_count() or 1
    rows = []
    for shards in shard_counts:
        out_path = workdir / "sharded.bin"
        sharded_kwargs = dict(kwargs, shards=shards, workers=workers)
        result = scan_file_sharded(raw, out_path, **sharded_kwargs)
        if not np.array_equal(np.fromfile(out_path, dtype=np.int64), reference):
            raise SystemExit(
                f"sharded output (shards={shards}) does not match the "
                f"single-session driver — benchmark aborted"
            )
        sharded_seconds = _time(
            lambda: scan_file_sharded(raw, out_path, **sharded_kwargs), repeats
        )
        c = result.counters
        rows.append({
            "shards": shards,
            "workers": workers,
            "session_seconds": session_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup_vs_session": session_seconds / sharded_seconds,
            "session_items_per_s": n / session_seconds,
            "sharded_items_per_s": n / sharded_seconds,
            "primed_shards": c.primed_shards,
            "folded_shards": c.folded_shards,
            "chunk_resizes": c.chunk_resizes,
            "seconds_read": c.seconds_read,
            "seconds_scan": c.seconds_scan,
            "seconds_write": c.seconds_write,
            "seconds_splice": c.seconds_splice,
            "seconds_fold": c.seconds_fold,
        })
        print(
            f"shards {shards:3d} (primed {c.primed_shards}, "
            f"folded {c.folded_shards}): {sharded_seconds * 1e3:8.2f} ms "
            f"({rows[-1]['speedup_vs_session']:.2f}x single-session)"
        )
    return {
        "benchmark": "sharded_vs_session",
        "n": n,
        "order": 1,
        "op": "add",
        "dtype": "int64",
        "inclusive": True,
        "chunk_bytes": CHUNK_BYTES,
        "repeats": repeats,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup_vs_session > 1 on one core comes from carry priming "
            "(sequential shards bake their splice carry and skip the fold) "
            "plus the lean in-place integer kernel; on a multicore host "
            "the parallel-shards term adds on top of that.  phase seconds "
            "are summed work across shards, not wall-clock."
        ),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    args = parser.parse_args(argv)
    n = N_ELEMENTS // 8 if args.quick else N_ELEMENTS
    shard_counts = SHARDS[:2] if args.quick else SHARDS
    repeats = 2 if args.quick else REPEATS

    with tempfile.TemporaryDirectory(prefix="bench_sharded_") as td:
        payload = run_sweep(n, shard_counts, repeats, pathlib.Path(td))
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
