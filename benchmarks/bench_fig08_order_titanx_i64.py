"""Figure 8: higher-order prefix sums, 64-bit, Titan X.

SAM vs iterated CUB at orders 2, 5, and 8 (64-bit words).

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig08.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig08(benchmark):
    run_figure_bench(benchmark, "fig08")
