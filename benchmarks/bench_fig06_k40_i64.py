"""Figure 6: prefix-sum throughput, 64-bit integers, K40.

64-bit sweep on the K40.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig06.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig06(benchmark):
    run_figure_bench(benchmark, "fig06")
