"""Shared machinery for the benchmark harness.

Each ``bench_figXX_*.py`` regenerates one figure of the paper: it times
the series generation, prints the figure's rows (run pytest with ``-s``
to see them inline), writes the rendered table to
``benchmarks/results/<fig>.txt``, and asserts every headline claim the
paper's text makes about that figure.
"""

from __future__ import annotations

import pathlib

from repro.harness import (
    HEADLINE_CHECKS,
    format_figure,
    generate_figure,
)
from repro.perf import PerformanceModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist a rendered figure/table next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def checks_for_figure(fig_id: str):
    return [check for check in HEADLINE_CHECKS if check.figure == fig_id]


def run_figure_bench(benchmark, fig_id: str):
    """Time the figure regeneration, emit its rows, verify its claims."""
    data = benchmark(generate_figure, fig_id)
    text = format_figure(data)
    write_artifact(fig_id, text)
    print()
    print(text)
    model = PerformanceModel()
    failures = []
    for check in checks_for_figure(fig_id):
        passed, measured = check.evaluate(model)
        marker = "ok  " if passed else "FAIL"
        print(f"  [{marker}] {check.check_id}: paper: {check.paper_claim}")
        print(f"         model: {measured}")
        if not passed:
            failures.append((check.check_id, measured))
    assert not failures, failures
    return data
