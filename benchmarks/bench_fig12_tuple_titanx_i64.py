"""Figure 12: tuple-based prefix sums, 64-bit, Titan X.

64-bit tuples; SAM's throughput is nearly flat across s = 2, 5, 8.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig12.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig12(benchmark):
    run_figure_bench(benchmark, "fig12")
