"""Ablation: count-valued ready flags (Section 2.4's design choice).

"Employing counts instead of Booleans means that only one count array
is needed, regardless of the order."  This bench measures the auxiliary
flag traffic across orders: the flag array count stays one (flag words
written scale with iterations, not with extra arrays), and the
alternative — one boolean array per order — would multiply the flag
*storage* by q.
"""

import numpy as np
import pytest

from repro.core import SamScan
from repro.core.carry import AuxBuffers, next_power_of_two
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X

N = 8192


def _run(order):
    engine = SamScan(
        spec=TITAN_X, threads_per_block=64, items_per_thread=2, num_blocks=4
    )
    return engine.run(
        np.random.default_rng(5).integers(-100, 100, N).astype(np.int32),
        order=order,
    )


@pytest.mark.parametrize("order", [1, 2, 4, 8])
def test_flag_traffic_per_iteration_is_constant(benchmark, order):
    result = benchmark.pedantic(lambda: _run(order), rounds=2, iterations=1)
    flag_writes_per_chunk = (
        result.stats.global_words_written - len(result.values) - result.num_chunks * order
    )
    print(
        f"\norder {order}: {result.stats.global_words_total} total words, "
        f"{result.stats.flag_polls} flag polls"
    )
    # One flag write per (chunk, iteration): aux write traffic is
    # exactly num_chunks * order words for flags + the same for sums.
    expected_aux_writes = 2 * result.num_chunks * order
    aux_writes = result.stats.global_words_written - len(result.values)
    assert aux_writes == expected_aux_writes


def test_single_flag_array_regardless_of_order():
    gmem = GlobalMemory()
    aux = AuxBuffers(gmem, k=4, order=8, tuple_size=3, dtype=np.int32)
    # 8 sum arrays (one per order) x 3 lanes each, but exactly ONE flag
    # array — the Section 2.4 design choice under test.
    assert len(aux.sums) == 8
    names = [name for name in gmem._arrays if "flag" in name]
    assert len(names) == 1


def test_flag_array_storage_is_o1():
    # Capacity depends only on k (next_pow2(3k+1)), never on n or q.
    gmem = GlobalMemory()
    aux = AuxBuffers(gmem, k=48, order=8, tuple_size=1, dtype=np.int32)
    assert aux.capacity == next_power_of_two(3 * 48 + 1)
    assert aux.capacity == 256
