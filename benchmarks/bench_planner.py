#!/usr/bin/env python
"""Benchmark: the execution planner's pick vs every hand-picked candidate.

One JSON (``benchmarks/results/BENCH_planner.json``): ``rows`` sweep
problem sizes x dtypes x data placement (in memory vs on file) and,
for each workload, time the flag-less planned path (``repro.scan(x)``
/ ``repro.scan_file(...)`` with nothing pinned) against every strategy
a user could have pinned by hand (serial, the threaded ladder, the
stream / sharded file drivers).  Each row's ``speedup`` is
``best_hand_seconds / planner_seconds`` measured within one run on one
machine — 1.0 means the planner matched the best hand-picked
configuration exactly, and the acceptance floor is
``1 - MAX_SLOWDOWN``: the planner's pick must never be more than 15%
slower than the best candidate (planning overhead included).

``target.met`` reports that floor honestly for this run;
``tools/bench_gate.py`` then regresses the committed ratios in CI (the
gate is immune to absolute-throughput differences between machines
because both sides of every ratio are measured in the same run).

Every planned run is first checked bit-identical against the serial
reference before the clock starts.

Usage:
    python benchmarks/bench_planner.py [--quick] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.plan import auto_scan, plan_scan, Workload  # noqa: E402
from repro.reference import prefix_sum_serial  # noqa: E402

RESULTS = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_planner.json"

#: Sizes in bytes.  All >= 1 MiB so best-of-N timings are stable enough
#: to gate on (the <= 256 KiB tiny-shortcut path is covered by unit
#: tests, not timing ratios).
SIZES = (1 << 20, 4 << 20, 16 << 20)
DTYPES = ("int32", "int64")
SOURCES = ("memory", "file")
MAX_SLOWDOWN = 0.15
REPEATS_MEMORY = 5
REPEATS_FILE = 3


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _memory_candidates(nbytes: int) -> list:
    """Strategy labels a user could pin by hand for an in-memory scan."""
    labels = ["serial"]
    cpu = os.cpu_count() or 1
    if cpu > 1:
        for threads in (2, cpu):
            if threads <= cpu and f"threaded:{threads}" not in labels:
                labels.append(f"threaded:{threads}")
    return labels


def _bench_memory(nbytes: int, dtype: str, repeats: int, rng) -> dict:
    n = nbytes // np.dtype(dtype).itemsize
    values = rng.integers(-1000, 1000, size=n).astype(dtype)
    want = prefix_sum_serial(values)
    got = auto_scan(values)
    if got.tobytes() != want.tobytes():
        raise SystemExit(f"planner output mismatch (memory {dtype} n={n})")

    hand = {}
    for label in _memory_candidates(nbytes):
        hand[label] = _time(lambda lb=label: auto_scan(values, force=lb), repeats)
    planner_seconds = _time(lambda: auto_scan(values), repeats)
    plan = plan_scan(Workload.from_array(values))
    best_label = min(hand, key=hand.get)
    best_seconds = hand[best_label]
    return {
        "source": "memory",
        "n": int(n),
        "nbytes": int(nbytes),
        "dtype": dtype,
        "op": "add",
        "order": 1,
        "tuple_size": 1,
        "planner_choice": plan.chosen.label,
        "planner_seconds": planner_seconds,
        "best_label": best_label,
        "best_seconds": best_seconds,
        "hand_seconds": hand,
        "speedup": best_seconds / planner_seconds,
    }


def _file_candidates(nbytes: int) -> list:
    labels = ["stream"]
    cpu = os.cpu_count() or 1
    if cpu > 1:
        labels.append(f"stream_threaded:{cpu}")
    if nbytes >= 16 << 20:
        labels.append("sharded:2")
        if cpu > 2:
            labels.append(f"sharded:{min(2 * cpu, nbytes // (8 << 20))}")
    return labels


def _run_file(src, dst, dtype, label=None):
    if label is None:
        return repro.scan_file(src, dst, dtype=dtype)
    name, _, arg = label.partition(":")
    if name == "stream":
        return repro.scan_file(src, dst, dtype=dtype, chunk_bytes=4 << 20)
    if name == "stream_threaded":
        return repro.scan_file(src, dst, dtype=dtype, threads=int(arg))
    if name == "sharded":
        return repro.scan_file(src, dst, dtype=dtype, shards=int(arg))
    raise ValueError(label)


def _bench_file(nbytes: int, dtype: str, repeats: int, rng, tmp: str) -> dict:
    n = nbytes // np.dtype(dtype).itemsize
    values = rng.integers(-1000, 1000, size=n).astype(dtype)
    src = os.path.join(tmp, f"in-{dtype}-{nbytes}.bin")
    dst = os.path.join(tmp, "out.bin")
    values.tofile(src)
    want = prefix_sum_serial(values)
    _run_file(src, dst, dtype)
    if np.fromfile(dst, dtype=dtype).tobytes() != want.tobytes():
        raise SystemExit(f"planner output mismatch (file {dtype} n={n})")

    hand = {}
    for label in _file_candidates(nbytes):
        hand[label] = _time(
            lambda lb=label: _run_file(src, dst, dtype, lb), repeats
        )
    planner_seconds = _time(lambda: _run_file(src, dst, dtype), repeats)
    result = _run_file(src, dst, dtype)
    best_label = min(hand, key=hand.get)
    best_seconds = hand[best_label]
    os.unlink(src)
    return {
        "source": "file",
        "n": int(n),
        "nbytes": int(nbytes),
        "dtype": dtype,
        "op": "add",
        "order": 1,
        "tuple_size": 1,
        "planner_choice": result.counters.planner_strategy,
        "planner_seconds": planner_seconds,
        "best_label": best_label,
        "best_seconds": best_seconds,
        "hand_seconds": hand,
        "speedup": best_seconds / planner_seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke): int64 only, "
                             "same sizes so rows match the full baseline")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help=f"result JSON path (default {RESULTS})")
    args = parser.parse_args(argv)
    dtypes = ("int64",) if args.quick else DTYPES
    repeats_mem = 3 if args.quick else REPEATS_MEMORY
    repeats_file = 2 if args.quick else REPEATS_FILE

    rng = np.random.default_rng(42)
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-planner-") as tmp:
        for source in SOURCES:
            for dtype in dtypes:
                for nbytes in SIZES:
                    if source == "memory":
                        row = _bench_memory(nbytes, dtype, repeats_mem, rng)
                    else:
                        row = _bench_file(nbytes, dtype, repeats_file, rng, tmp)
                    rows.append(row)
                    print(
                        f"{source:>6} {dtype:>6} {nbytes >> 20:>3} MiB: "
                        f"planner {row['planner_choice'] or '?':>16} "
                        f"{row['planner_seconds'] * 1e3:8.2f} ms vs best "
                        f"{row['best_label']:>16} "
                        f"{row['best_seconds'] * 1e3:8.2f} ms "
                        f"({row['speedup']:.2f}x)"
                    )

    floor = 1.0 - MAX_SLOWDOWN
    worst = min(rows, key=lambda r: r["speedup"])
    met = worst["speedup"] >= floor
    payload = {
        "benchmark": "planner_vs_hand_picked",
        "quick": bool(args.quick),
        "target": {
            "max_slowdown": MAX_SLOWDOWN,
            "worst_speedup": worst["speedup"],
            "worst_row": {k: worst[k] for k in ("source", "dtype", "nbytes")},
            "met": bool(met),
            "achievable_here": True,
        },
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "note": (
            "speedup = best_hand_seconds / planner_seconds measured in "
            "the same run (planning overhead included in the planner "
            "side), so 1.0 means the planner matched the best "
            "hand-picked configuration.  The acceptance floor is "
            f"{floor:.2f} (planner never more than "
            f"{MAX_SLOWDOWN:.0%} slower than the best candidate); the "
            "CI gate additionally regresses these ratios against the "
            "committed baseline."
        ),
        "rows": rows,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"worst row: {worst['source']} {worst['dtype']} "
        f"{worst['nbytes'] >> 20} MiB at {worst['speedup']:.2f}x "
        f"(floor {floor:.2f}) — target {'met' if met else 'NOT met'}"
    )
    # The floor is enforced by exit code only on the full sweep: quick
    # mode's few repeats are for the CI ratio gate (bench_gate.py),
    # which carries its own noise tolerance.
    return 0 if met or args.quick else 1


if __name__ == "__main__":
    sys.exit(main())
