"""Figure 10: higher-order prefix sums, 64-bit, K40.

64-bit: SAM already wins at order 8 on the K40.

Regenerates the figure's throughput series from the performance model,
prints the rows, writes ``results/fig10.txt``, and asserts the paper's
textual claims about this figure.
"""

from conftest import run_figure_bench


def test_fig10(benchmark):
    run_figure_bench(benchmark, "fig10")
