"""Ablation: carry scheme vs persistent-block count k.

Section 2.5 derives that SAM's redundant carry work is O(af*n) with
af proportional to k = m*b, while the chained scheme does O(n) work but
serializes.  Sweeping k on the simulator makes both effects measurable:
decoupled carry additions grow ~linearly with k; chained additions stay
flat; and the chained scheme's critical path (failed polls under a
hostile schedule) grows instead.
"""

import numpy as np
import pytest

from repro.core import SamScan
from repro.gpusim.spec import TITAN_X

N = 16384
K_SWEEP = (2, 4, 8, 16)


def _values():
    return np.random.default_rng(3).integers(-100, 100, N).astype(np.int32)


def _run(scheme, k, policy="round_robin"):
    engine = SamScan(
        spec=TITAN_X,
        threads_per_block=64,
        items_per_thread=1,
        num_blocks=k,
        carry_scheme=scheme,
        policy=policy,
    )
    return engine.run(_values())


@pytest.mark.parametrize("k", K_SWEEP)
def test_carry_work_vs_k(benchmark, k):
    decoupled = benchmark.pedantic(lambda: _run("decoupled", k), rounds=2, iterations=1)
    chained = _run("chained", k)
    per_chunk_dec = decoupled.stats.carry_additions / decoupled.num_chunks
    per_chunk_ch = chained.stats.carry_additions / chained.num_chunks
    print(
        f"\nk={k}: decoupled {per_chunk_dec:.1f} adds/chunk, "
        f"chained {per_chunk_ch:.1f} adds/chunk"
    )
    # Decoupled trades ~k redundant additions per chunk for latency.
    assert per_chunk_dec >= per_chunk_ch
    assert per_chunk_ch <= 2.0


def test_decoupled_adds_scale_with_k():
    per_chunk = {}
    for k in K_SWEEP:
        result = _run("decoupled", k)
        per_chunk[k] = result.stats.carry_additions / result.num_chunks
    print("\ndecoupled adds/chunk by k:", {k: round(v, 1) for k, v in per_chunk.items()})
    assert per_chunk[16] > per_chunk[2] * 3  # ~O(k) redundant work


def test_chained_waits_more_under_hostile_schedule():
    # The chained scheme's serial dependence shows up as failed polls
    # when the schedule runs consumers before producers.
    chained = _run("chained", 8, policy="reversed")
    decoupled = _run("decoupled", 8, policy="reversed")
    chained_wait = chained.stats.failed_flag_polls / chained.num_chunks
    decoupled_wait = decoupled.stats.failed_flag_polls / decoupled.num_chunks
    print(
        f"\nhostile schedule: chained {chained_wait:.2f} failed polls/chunk, "
        f"decoupled {decoupled_wait:.2f}"
    )
    assert chained.stats.failed_flag_polls > 0
