"""Ablation: items per thread (the auto-tuned parameter).

Section 2.2, enhancement #4: processing multiple values per thread
"increases the chunk size, which reduces the total number of local sums
that have to be communicated between thread blocks".  Sweeping v on the
simulator shows the carry/communication traffic falling ~1/v while the
data traffic stays fixed at 2n; the analytic model turns the same trade
into the install-time tuning table.
"""

import numpy as np
import pytest

from repro.core import AutoTuner, SamScan, tune_items_per_thread
from repro.gpusim.spec import TITAN_X

N = 32768
V_SWEEP = (1, 2, 4, 8)


def _run(v):
    engine = SamScan(
        spec=TITAN_X, threads_per_block=64, items_per_thread=v, num_blocks=8
    )
    return engine.run(np.random.default_rng(1).integers(-100, 100, N).astype(np.int32))


@pytest.mark.parametrize("v", V_SWEEP)
def test_items_per_thread_sweep(benchmark, v):
    result = benchmark.pedantic(lambda: _run(v), rounds=2, iterations=1)
    aux_words = result.stats.global_words_total - 2 * N
    print(
        f"\nv={v}: {result.num_chunks} chunks, "
        f"aux traffic {aux_words} words ({aux_words / N:.3f} per element)"
    )
    assert result.num_chunks == -(-N // (64 * v))


def test_larger_chunks_reduce_communication():
    aux = {}
    for v in V_SWEEP:
        result = _run(v)
        aux[v] = result.stats.global_words_total - 2 * N
    print("\naux words by v:", aux)
    assert aux[8] < aux[1] / 4  # ~1/v fewer sums to communicate


def test_autotuner_reproduces_heuristic_direction():
    # Tune on the simulator's own communication cost: bigger problems
    # should get at least as many items per thread as smaller ones.
    def cost(n, v):
        engine = SamScan(
            spec=TITAN_X, threads_per_block=64, items_per_thread=v, num_blocks=8
        )
        values = np.zeros(n, dtype=np.int32)
        stats = engine.run(values).stats
        # Model: time ~ data traffic + latency-weighted carry traffic.
        return stats.global_words_total + 8 * stats.failed_flag_polls

    tuner = AutoTuner(cost, candidates=(1, 2, 4, 8))
    table = tuner.tune([2048, 32768])
    print("\ntuned table:", table)
    assert table[32768] >= table[2048]
    assert tune_items_per_thread(2**28, TITAN_X) >= tune_items_per_thread(2**12, TITAN_X)
