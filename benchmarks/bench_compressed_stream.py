#!/usr/bin/env python
"""Benchmark: scanning a blocked compressed container vs raw bytes.

Streams the same logical values through ``scan_file`` twice — once
from a raw binary file, once from a blocked ``.samb`` container with
the decode fused into the chunk loop — across several signal shapes
(and so compression ratios).  Writes
``benchmarks/results/BENCH_compressed.json`` with per-row raw and
compressed wall-clock, the achieved compression ratio, and the fused
pipeline's own phase counters (decode seconds vs read seconds), so
the compressed-input trade is measured rather than assumed.

Honesty note: compressed input wins only when the scan is IO-bound —
the decode must cost less than the disk bytes it saves.  On a runner
whose working set fits the page cache, "IO" is a memcpy and raw input
wins; the result file then carries ``target.achievable_here: false``
so the CI gate treats these rows as informational rather than a
regression floor.  The per-row ``speedup`` (compressed vs raw
throughput, within one run on one machine) is still recorded for
relative tracking.

Usage:
    python benchmarks/bench_compressed_stream.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.compression import BlockedDeltaCodec  # noqa: E402
from repro.stream import scan_file  # noqa: E402

RESULTS = (
    pathlib.Path(__file__).resolve().parent / "results" / "BENCH_compressed.json"
)

N_ELEMENTS = 1 << 22          # 32 MiB of int64
ORDER = 1
CHUNK_BYTES = 1 << 22
BLOCK_ELEMENTS = 1 << 16
REPEATS = 3

#: Signal shapes spanning the compression-ratio axis: step size of the
#: random walk controls residual entropy, "noise" is incompressible.
SIGNALS = (
    ("walk-tiny", 3),       # ~1-byte varints -> ratio ~8x
    ("walk-medium", 2000),  # ~2-byte varints -> ratio ~4x
    ("walk-wide", 10**7),   # ~4-byte varints -> ratio ~2x
    ("noise", None),        # full-width residuals -> ratio ~1x
)


def _make_values(name: str, step, n: int) -> np.ndarray:
    rng = np.random.default_rng(42)
    if step is None:
        return rng.integers(-(2**62), 2**62, n, dtype=np.int64)
    return np.cumsum(rng.integers(-step, step + 1, n)).astype(np.int64)


def _time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(n, repeats, workdir: pathlib.Path) -> dict:
    rows = []
    decode_rate = None
    read_rate = None
    for name, step in SIGNALS:
        values = _make_values(name, step, n)
        raw = workdir / f"{name}.bin"
        values.tofile(raw)
        blob = BlockedDeltaCodec(block_elements=BLOCK_ELEMENTS).compress(values)
        samb = workdir / f"{name}.samb"
        samb.write_bytes(blob.data)
        ratio = values.nbytes / len(blob.data)

        out = workdir / "out.bin"
        raw_kwargs = dict(dtype="int64", order=ORDER, chunk_bytes=CHUNK_BYTES)
        scan_file(raw, out, **raw_kwargs)  # warm page cache
        raw_seconds = _time(lambda: scan_file(raw, out, **raw_kwargs), repeats)

        result = scan_file(samb, out, order=ORDER, chunk_bytes=CHUNK_BYTES)
        compressed_seconds = _time(
            lambda: scan_file(samb, out, order=ORDER, chunk_bytes=CHUNK_BYTES),
            repeats,
        )
        c = result.counters
        if c.seconds_decode > 0:
            decode_rate = values.nbytes / c.seconds_decode
        if c.seconds_read > 0:
            read_rate = values.nbytes / max(c.seconds_read, 1e-9)
        # No per-row "n": it is constant (top-level) and would keep
        # --quick candidates from ever matching the committed grid in
        # the bench gate's row keys.
        rows.append({
            "source": name,
            "order": ORDER,
            "tuple_size": 1,
            "dtype": "int64",
            "op": "add",
            "compression_ratio": ratio,
            "raw_seconds": raw_seconds,
            "compressed_seconds": compressed_seconds,
            "speedup": raw_seconds / compressed_seconds,
            "raw_items_per_s": n / raw_seconds,
            "compressed_items_per_s": n / compressed_seconds,
            "seconds_decode": c.seconds_decode,
            "seconds_read": c.seconds_read,
            "compressed_bytes_in": c.compressed_bytes_in,
        })
        print(
            f"{name:12s} ratio {ratio:5.2f}x  raw {raw_seconds*1e3:8.2f} ms  "
            f"compressed {compressed_seconds*1e3:8.2f} ms  "
            f"({rows[-1]['speedup']:.2f}x raw)"
        )

    # The compressed-input win requires the decode to be cheaper than
    # the IO it saves.  Compare the run's own measured rates: when raw
    # bytes arrive faster than blocks decode (page-cached runner, NVMe
    # faster than one decode core), the advantage is not expressible
    # here and the committed numbers must not become a CI floor.
    io_bound = (
        decode_rate is not None
        and read_rate is not None
        and read_rate < decode_rate
    )
    best = max(rows, key=lambda r: r["speedup"])
    achieved = best["speedup"] >= 1.2 and best["compression_ratio"] >= 2.0
    return {
        "benchmark": "compressed_stream_vs_raw",
        "n": n,
        "order": ORDER,
        "op": "add",
        "dtype": "int64",
        "repeats": repeats,
        "block_elements": BLOCK_ELEMENTS,
        "chunk_bytes": CHUNK_BYTES,
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "target": {
            "description": (
                "compressed-input throughput >= 1.2x raw at compression "
                "ratio >= 2x (holds only on IO-bound runners)"
            ),
            "achieved": bool(achieved),
            "achievable_here": bool(io_bound),
            "measured_read_bytes_per_s": read_rate,
            "measured_decode_bytes_per_s": decode_rate,
        },
        "note": (
            "speedup is compressed-input vs raw-input scan_file within "
            "one run; >1 only when the runner is IO-bound (decode "
            "cheaper than the disk bytes it saves) — see target"
        ),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep (for CI smoke)")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS,
                        help="result JSON path (default: committed location)")
    args = parser.parse_args(argv)
    n = N_ELEMENTS // 8 if args.quick else N_ELEMENTS
    repeats = 2 if args.quick else REPEATS

    with tempfile.TemporaryDirectory(prefix="bench_compressed_") as td:
        payload = run_sweep(n, repeats, pathlib.Path(td))
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
