#!/usr/bin/env python
"""End-to-end crash drill for the scan service.

Starts a real ``python -m repro serve`` daemon on a unix socket with a
checkpoint file, drives concurrent clients across the full
op/dtype/order/tuple-size grid, SIGKILLs the daemon mid-stream,
restarts it with ``--restore``, resumes every stream from the server's
restored offset, and verifies each final output byte-identical against
an uninterrupted in-process :class:`repro.stream.ScanSession`.

This is the restart contract the docs promise, exercised the way an
operator would hit it: a kill -9 between a reply and the next
checkpoint loses nothing — the durable offset never runs ahead of what
clients were told, so re-feeding from the restored offset reproduces
the exact stream.

Exit code 0 when every stream verifies; 1 with a diagnostic otherwise.

Usage:
    python tools/serve_drill.py [--clients N] [--chunks N] [--seed N]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve import ScanClient  # noqa: E402
from repro.stream.session import ScanSession  # noqa: E402

GRID = [
    ("add", 1, 1, True, "int64"),
    ("add", 2, 4, True, "int64"),
    ("max", 1, 5, True, "int64"),
    ("xor", 2, 2, False, "uint64"),
    ("mul", 1, 4, True, "int32"),
    ("min", 2, 1, False, "int64"),
]


def make_chunks(rng, dtype, s, count):
    lo, hi = (0, 100) if dtype.startswith("u") else (-50, 50)
    return [
        rng.integers(lo, hi, size=int(rng.integers(1, 16)) * s).astype(dtype)
        for _ in range(count)
    ]


def start_server(sock, ckpt, restore=False):
    cmd = [sys.executable, "-m", "repro", "serve", "--unix", sock,
           "--checkpoint", ckpt, "--checkpoint-every", "1"]
    if restore:
        cmd.append("--restore")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 20
    while time.time() < deadline:
        if os.path.exists(sock):
            return proc
        if proc.poll() is not None:
            raise SystemExit(f"serve daemon died on start:\n{proc.communicate()[0]}")
        time.sleep(0.05)
    proc.kill()
    raise SystemExit("serve daemon never bound its socket")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=len(GRID),
                        help="concurrent streams (cycles the config grid)")
    parser.add_argument("--chunks", type=int, default=10,
                        help="chunks per stream (half fed before the kill)")
    parser.add_argument("--seed", type=int, default=12345)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    streams = {}
    for i in range(args.clients):
        op, order, s, inclusive, dtype = GRID[i % len(GRID)]
        streams[f"drill{i}"] = (
            op, order, s, inclusive, dtype,
            make_chunks(rng, dtype, s, args.chunks),
        )
    prefix_count = max(1, args.chunks // 2)

    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "drill.sock")
        ckpt = os.path.join(tmp, "registry.json")

        # Phase 1: concurrent clients feed the first half of each stream.
        proc = start_server(sock, ckpt)
        errors = []

        def feed_prefix(name):
            try:
                op, order, s, inclusive, dtype, chunks = streams[name]
                with ScanClient(f"unix:{sock}") as client:
                    client.open(name, op=op, order=order, tuple_size=s,
                                inclusive=inclusive, dtype=dtype)
                    client.feed_many(name, chunks[:prefix_count], window=4)
            except Exception as exc:
                errors.append(f"{name}: {exc!r}")

        workers = [threading.Thread(target=feed_prefix, args=(n,))
                   for n in streams]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=60)
        if errors:
            proc.kill()
            proc.wait()
            print("drill FAILED during concurrent feeding:", *errors, sep="\n  ")
            return 1

        # Phase 2: kill -9, restart with --restore, resume every stream.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        os.unlink(sock)
        print(f"killed daemon (pid {proc.pid}); restarting with --restore")
        proc = start_server(sock, ckpt, restore=True)
        failures = 0
        try:
            with ScanClient(f"unix:{sock}") as client:
                for name, (op, order, s, inclusive, dtype, chunks) in streams.items():
                    reply = client.open(name, op=op, order=order, tuple_size=s,
                                        inclusive=inclusive, dtype=dtype)
                    consumed = reply["offset"]
                    fed = sum(c.size for c in chunks[:prefix_count])
                    flat = np.concatenate(chunks)
                    if not 0 <= consumed <= fed:
                        print(f"{name}: restored offset {consumed} outside "
                              f"[0, {fed}]")
                        failures += 1
                        continue
                    tail = client.feed(name, flat[consumed:])
                    oracle = ScanSession(op=op, order=order, tuple_size=s,
                                         inclusive=inclusive, dtype=dtype)
                    if consumed:
                        oracle.feed(flat[:consumed].copy())
                    want = oracle.feed(flat[consumed:].copy())
                    if tail.astype(np.dtype(dtype)).tobytes() != want.tobytes():
                        print(f"{name}: post-restore bytes differ from the "
                              f"uninterrupted oracle")
                        failures += 1
                    else:
                        print(f"{name}: resumed at {consumed}/{flat.size}, "
                              f"byte-identical")
        finally:
            proc.kill()
            proc.wait(timeout=10)

    if failures:
        print(f"drill FAILED: {failures}/{len(streams)} streams diverged")
        return 1
    print(f"drill OK: {len(streams)} streams survived SIGKILL + --restore "
          f"byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
