#!/usr/bin/env python
"""CI gate: fail when kernel speedups regress vs the committed baseline.

Compares a freshly measured ``BENCH_kernels.json`` (the candidate,
usually from ``bench_kernels.py --quick --output ...``) against the
committed baseline.  The compared metric is each row's ``speedup`` —
legacy-vs-kernel measured *within one run on one machine* — so the
gate is immune to absolute-throughput differences between the CI
runner and the machine that produced the baseline; only the *relative*
advantage of the kernel layer is regressed on.

Rows are matched on (tuple_size, order, dtype, op); candidate rows
missing from the baseline (or vice versa) are skipped, so ``--quick``
sweeps gate against the full committed grid.  A candidate row fails
when its speedup drops more than ``--max-regression`` (default 25%)
below the baseline row's.

Usage:
    python tools/bench_gate.py --baseline benchmarks/results/BENCH_kernels.json \
        --candidate /tmp/BENCH_kernels_ci.json [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _row_key(row: dict) -> tuple:
    return (row["tuple_size"], row["order"], row["dtype"], row["op"])


def gate(baseline: dict, candidate: dict, max_regression: float) -> int:
    base_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    cand_rows = {_row_key(r): r for r in candidate.get("rows", [])}
    shared = sorted(set(base_rows) & set(cand_rows))
    if not shared:
        print("bench_gate: no comparable rows between baseline and candidate")
        return 2
    failures = []
    print(
        f"{'tuple_size':>10} {'order':>5} {'dtype':>6} {'op':>4} "
        f"{'baseline':>9} {'candidate':>9} {'floor':>7}  verdict"
    )
    for key in shared:
        base = base_rows[key]["speedup"]
        cand = cand_rows[key]["speedup"]
        floor = base * (1.0 - max_regression)
        ok = cand >= floor
        s, q, dtype, op = key
        print(
            f"{s:>10} {q:>5} {dtype:>6} {op:>4} "
            f"{base:>8.2f}x {cand:>8.2f}x {floor:>6.2f}x  "
            f"{'ok' if ok else 'REGRESSED'}"
        )
        if not ok:
            failures.append(key)
    skipped = len(cand_rows) - len(shared)
    if skipped:
        print(f"({skipped} candidate row(s) not in the baseline: skipped)")
    if failures:
        print(
            f"\nbench_gate: FAIL — {len(failures)} of {len(shared)} rows "
            f"regressed more than {max_regression:.0%} vs the baseline"
        )
        return 1
    print(
        f"\nbench_gate: ok — {len(shared)} rows within {max_regression:.0%} "
        f"of the committed baseline"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_kernels.json")
    parser.add_argument("--candidate", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_kernels.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional speedup drop (default 0.25)")
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    return gate(baseline, candidate, args.max_regression)


if __name__ == "__main__":
    sys.exit(main())
