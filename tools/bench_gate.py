#!/usr/bin/env python
"""CI gate: fail when kernel speedups regress vs the committed baseline.

Compares a freshly measured ``BENCH_kernels.json`` (the candidate,
usually from ``bench_kernels.py --quick --output ...``) against the
committed baseline.  The compared metric is each row's ``speedup`` —
legacy-vs-kernel measured *within one run on one machine* — so the
gate is immune to absolute-throughput differences between the CI
runner and the machine that produced the baseline; only the *relative*
advantage of the kernel layer is regressed on.

Rows are matched on (tuple_size, order, dtype, op) — plus ``threads``
when either side carries it, so threaded sweeps gate per thread count.
Candidate rows missing from the baseline (or vice versa) are skipped,
so ``--quick`` sweeps gate against the full committed grid.  A
candidate row fails when its speedup drops more than
``--max-regression`` (default 25%) below the baseline row's.

A baseline whose ``target`` block carries ``achievable_here: false``
(recorded on hardware that could not express the advantage being
gated, e.g. a threaded sweep measured on a 1-CPU box) is skipped with
a printed notice instead of compared — its speedups are noise, not a
floor.  Re-record such baselines on capable hardware to arm the gate.

``--baseline``/``--candidate`` are repeatable and are paired in order,
so one invocation gates several benchmark families at once (e.g. the
kernel grid and the threaded sweep); the gate fails if any pair fails.

Usage:
    python tools/bench_gate.py --baseline benchmarks/results/BENCH_kernels.json \
        --candidate /tmp/BENCH_kernels_ci.json [--max-regression 0.25] \
        [--baseline benchmarks/results/BENCH_threaded.json \
         --candidate /tmp/BENCH_threaded_ci.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _row_key(row: dict) -> tuple:
    key = (row["tuple_size"], row["order"], row["dtype"], row["op"])
    if "threads" in row:
        key += (row["threads"],)
    # Sweeps that vary problem size or data placement within one file
    # (e.g. the planner benchmark) carry these on every row; families
    # that do not are unaffected.
    if "n" in row:
        key += (row["n"],)
    if "source" in row:
        key += (row["source"],)
    return key


def gate(baseline: dict, candidate: dict, max_regression: float) -> int:
    target = baseline.get("target")
    if isinstance(target, dict) and target.get("achievable_here") is False:
        # The committed baseline was recorded on hardware that could not
        # express the benchmark's advantage (e.g. a threaded sweep
        # measured on a 1-CPU box): its speedups are noise, and gating a
        # multi-core CI runner against them would either always pass or
        # fail spuriously.  Skip the pair until the baseline is
        # re-recorded on capable hardware.
        cpus = baseline.get("hardware", {}).get("cpu_count", "?")
        print(
            "bench_gate: SKIPPED — baseline marked achievable_here=false "
            f"(recorded on cpu_count={cpus}); re-record it on capable "
            "hardware to arm this gate"
        )
        return 0
    base_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    cand_rows = {_row_key(r): r for r in candidate.get("rows", [])}
    shared = sorted(set(base_rows) & set(cand_rows))
    if not shared:
        print("bench_gate: no comparable rows between baseline and candidate")
        return 2
    failures = []
    # Compression benchmarks carry the achieved ratio on every row;
    # print it next to the throughput ratio so a speedup change can be
    # read against the ratio that produced it (a decode got slower vs
    # the data simply stopped compressing).
    with_ratio = any("compression_ratio" in cand_rows[k] for k in shared)
    ratio_head = f" {'ratio':>7}" if with_ratio else ""
    print(
        f"{'tuple_size':>10} {'order':>5} {'dtype':>6} {'op':>4} {'thr':>4} "
        f"{'baseline':>9} {'candidate':>9} {'floor':>7}{ratio_head}  verdict"
    )
    for key in shared:
        row = base_rows[key]
        base = row["speedup"]
        cand = cand_rows[key]["speedup"]
        floor = base * (1.0 - max_regression)
        ok = cand >= floor
        s, q, dtype, op = key[:4]
        threads = row.get("threads", "-")
        ratio_cell = ""
        if with_ratio:
            ratio = cand_rows[key].get("compression_ratio")
            ratio_cell = (
                f" {ratio:>6.2f}x" if ratio is not None else f" {'-':>7}"
            )
        print(
            f"{s:>10} {q:>5} {dtype:>6} {op:>4} {threads:>4} "
            f"{base:>8.2f}x {cand:>8.2f}x {floor:>6.2f}x{ratio_cell}  "
            f"{'ok' if ok else 'REGRESSED'}"
        )
        if not ok:
            failures.append(key)
    skipped = len(cand_rows) - len(shared)
    if skipped:
        print(f"({skipped} candidate row(s) not in the baseline: skipped)")
    if failures:
        print(
            f"\nbench_gate: FAIL — {len(failures)} of {len(shared)} rows "
            f"regressed more than {max_regression:.0%} vs the baseline"
        )
        return 1
    print(
        f"\nbench_gate: ok — {len(shared)} rows within {max_regression:.0%} "
        f"of the committed baseline"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        action="append",
                        help="committed benchmark JSON (repeatable; paired "
                             "with --candidate in order)")
    parser.add_argument("--candidate", type=pathlib.Path, required=True,
                        action="append",
                        help="freshly measured benchmark JSON (repeatable)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional speedup drop (default 0.25)")
    args = parser.parse_args(argv)
    if len(args.baseline) != len(args.candidate):
        parser.error(
            f"{len(args.baseline)} --baseline file(s) but "
            f"{len(args.candidate)} --candidate file(s); they pair in order"
        )
    worst = 0
    for base_path, cand_path in zip(args.baseline, args.candidate):
        if len(args.baseline) > 1:
            print(f"== {base_path.name} vs {cand_path.name} ==")
        baseline = json.loads(base_path.read_text())
        candidate = json.loads(cand_path.read_text())
        worst = max(worst, gate(baseline, candidate, args.max_regression))
        if len(args.baseline) > 1:
            print()
    return worst


if __name__ == "__main__":
    sys.exit(main())
