#!/usr/bin/env python
"""Artifact validation: one command, every core claim.

The original paper carries the PLDI AEC "Artifact Evaluated" badge;
this script is the reproduction's equivalent of the artifact's
smoke-check.  It runs, end to end and in a couple of minutes:

1. correctness spot grid — every engine vs the serial oracle across a
   sample of sizes/orders/tuples/operators;
2. the measured traffic table (2n / 3n / 4n, order scaling, tuple
   coalescing);
3. all headline figure claims against the performance model;
4. Table 1;
5. a compression round trip decoded on the simulated GPU.

Exit code 0 = everything holds.  Usage:

    python tools/validate_artifact.py
"""

from __future__ import annotations

import sys
import time

import numpy as np


def check(label: str, ok: bool, detail: str = "") -> bool:
    status = "PASS" if ok else "FAIL"
    print(f"[{status}] {label}" + (f" — {detail}" if detail else ""))
    return ok


def validate_correctness() -> bool:
    from repro.baselines import (
        DecoupledLookbackScan,
        ReduceThenScan,
        StreamScan,
        ThreePhaseScan,
    )
    from repro.core import SamScan
    from repro.reference import prefix_sum_serial

    rng = np.random.default_rng(0)
    kw = dict(threads_per_block=64, items_per_thread=2)
    engines = {
        "SAM": SamScan(num_blocks=6, **kw),
        "SAM/chained": SamScan(carry_scheme="chained", num_blocks=6, **kw),
        "SAM/warp-faithful": SamScan(fidelity="warp", num_blocks=4, **kw),
        "CUB lookback": DecoupledLookbackScan(**kw),
        "MGPU reduce-scan": ReduceThenScan(**kw),
        "Thrust 3-phase": ThreePhaseScan(**kw),
        "StreamScan": StreamScan(**kw),
    }
    configs = [
        dict(n=4097, order=1, tuple_size=1, op="add"),
        dict(n=3000, order=3, tuple_size=1, op="add"),
        dict(n=2996, order=1, tuple_size=7, op="add"),
        dict(n=2000, order=2, tuple_size=2, op="add"),
        dict(n=1500, order=1, tuple_size=1, op="max"),
        dict(n=1500, order=1, tuple_size=3, op="xor"),
    ]
    ok = True
    for name, engine in engines.items():
        for config in configs:
            n = config["n"]
            if config["tuple_size"] > 1:
                n -= n % config["tuple_size"]
            values = rng.integers(-(2**20), 2**20, n).astype(np.int64)
            result = engine.run(
                values,
                order=config["order"],
                tuple_size=config["tuple_size"],
                op=config["op"],
            )
            expected = prefix_sum_serial(
                values,
                order=config["order"],
                tuple_size=config["tuple_size"],
                op=config["op"],
            )
            if not np.array_equal(result.values, expected):
                ok = check(f"correctness: {name} {config}", False)
    return check("correctness grid (7 engines x 6 configs, bit-exact)", ok)


def validate_traffic() -> bool:
    from repro.baselines import DecoupledLookbackScan, ReduceThenScan, ThreePhaseScan
    from repro.core import SamScan

    values = np.random.default_rng(1).integers(-100, 100, 16384).astype(np.int32)
    kw = dict(threads_per_block=128, items_per_thread=2)
    sam = SamScan(num_blocks=8, **kw).run(values).words_per_element()
    cub = DecoupledLookbackScan(**kw).run(values).words_per_element()
    mgpu = ReduceThenScan(**kw).run(values).words_per_element()
    thrust = ThreePhaseScan(**kw).run(values).words_per_element()
    sam8 = SamScan(num_blocks=8, **kw).run(values, order=8).words_per_element()
    cub8 = DecoupledLookbackScan(**kw).run(values, order=8).words_per_element()
    ok = True
    ok &= check("SAM traffic ~2n", 2.0 <= sam < 2.4, f"{sam:.2f}")
    ok &= check("CUB traffic ~2n", 2.0 <= cub < 2.4, f"{cub:.2f}")
    ok &= check("MGPU traffic ~3n", 3.0 <= mgpu < 3.3, f"{mgpu:.2f}")
    ok &= check("Thrust traffic ~4n", 4.0 <= thrust < 4.3, f"{thrust:.2f}")
    ok &= check("SAM order-8 traffic stays ~2n", sam8 < 3.0, f"{sam8:.2f}")
    ok &= check("CUB order-8 traffic ~16n", cub8 > 14.0, f"{cub8:.2f}")
    return ok


def validate_headlines() -> bool:
    from repro.harness import run_headline_checks

    results = run_headline_checks()
    failed = [r for r in results if not r["passed"]]
    for r in failed:
        check(f"headline {r['check_id']}", False, r["measured"])
    return check(
        f"headline figure claims ({len(results)} checks)", not failed
    )


def validate_table1() -> bool:
    from repro.harness import table1_rows

    ok = all(
        abs(row["af_x1000"] - row["paper_af_x1000"]) <= 0.02
        for row in table1_rows()
    )
    return check("Table 1 architectural factors", ok)


def validate_compression() -> bool:
    from repro.compression import BlockedDeltaCodec, DeltaCodec
    from repro.core import SamScan

    rng = np.random.default_rng(2)
    t = np.arange(30000)
    signal = (1500 * np.sin(t / 250.0) + rng.normal(0, 2, len(t))).astype(np.int32)
    engine = SamScan(threads_per_block=128, items_per_thread=4)
    codec = DeltaCodec(decode_engine=engine)
    blob = codec.compress(signal)
    ok = np.array_equal(codec.decompress(blob), signal)
    ok &= blob.ratio() > 2.0
    blocked = BlockedDeltaCodec(block_elements=8192, decode_engine=engine)
    blocked_blob = blocked.compress(signal)
    ok &= np.array_equal(blocked.decompress(blocked_blob), signal)
    return check(
        "compression round trip (monolithic + blocked, SAM-decoded)",
        bool(ok),
        f"ratio {blob.ratio():.2f}x",
    )


def main() -> int:
    start = time.time()
    print("SAM reproduction — artifact validation\n" + "=" * 48)
    results = [
        validate_correctness(),
        validate_traffic(),
        validate_headlines(),
        validate_table1(),
        validate_compression(),
    ]
    elapsed = time.time() - start
    print("=" * 48)
    if all(results):
        print(f"ALL CHECKS PASS ({elapsed:.1f}s)")
        return 0
    print(f"{results.count(False)} check groups FAILED ({elapsed:.1f}s)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
