#!/usr/bin/env python
"""Differential fuzzing of every scan engine against the serial oracle.

Randomizes the whole configuration space — engine, size (including
non-powers-of-two), dtype, operator, order, tuple size,
inclusive/exclusive, block geometry, carry scheme, schedule policy —
and demands bit-identical agreement with the serial reference.  This
complements the hypothesis property tests with long-running,
wider-spectrum search.

Usage:
    python tools/fuzz_engines.py --iterations 200 --seed 1
    python tools/fuzz_engines.py --iterations 0     # run forever
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import (
    DecoupledLookbackScan,
    ReduceThenScan,
    StreamScan,
    ThreePhaseScan,
)
from repro.core import SamScan
from repro.parallel import ParallelSamScan
from repro.reference import prefix_sum_serial

ENGINES = (
    "sam", "sam_chained", "lookback", "reduce_scan", "three_phase",
    "streamscan", "parallel", "parallel_chained", "stream", "sharded",
    "threaded", "plan", "compressed", "float_eft", "fused_order",
)

#: Strategies the "plan" kind forces through the planner's dispatcher
#: (None = let the planner choose, which is itself a dispatch arm).
PLAN_FORCES = (None, "serial", "threaded:2", "threaded:3", "parallel:2")
#: Float workloads never get a process-pool candidate (it cannot replay
#: the double-double chain), so the float plan arms force only these.
PLAN_FLOAT_FORCES = (None, "serial", "threaded:2", "threaded:3")
OPERATORS = ("add", "max", "min", "xor", "and", "or")
DTYPES = (np.int32, np.int64, np.uint32, np.uint64)
#: The "float_eft" kind's differential matrix: compensated output must
#: be bit-identical across every cell (and the session-split arm).
FLOAT_EFT_THREADS = (1, 2, 3, 8)
FLOAT_EFT_SHARDS = (1, 2, 4)
POLICIES = ("round_robin", "reversed", "rotating", "random")


def random_config(rng, engines=ENGINES):
    """One random engine configuration + workload."""
    engine_kind = rng.choice(engines)
    threads = int(rng.choice([32, 64, 128]))
    items = int(rng.choice([1, 2, 4]))
    policy = str(rng.choice(POLICIES))
    config = {
        "engine": engine_kind,
        "threads_per_block": threads,
        "items_per_thread": items,
        "policy": policy,
        "n": int(rng.integers(0, 6000)),
        "dtype": rng.choice(DTYPES),
        "op": str(rng.choice(OPERATORS)),
        "order": int(rng.integers(1, 5)),
        "tuple_size": int(rng.integers(1, 9)),
        "inclusive": bool(rng.integers(0, 2)),
        # Only the parallel engines read these: real worker processes
        # and a small chunk size so even fuzz-sized inputs span many
        # chunks (exercising the shared-memory carry protocol).
        "workers": int(rng.integers(1, 5)),
        "chunk_elements": int(rng.choice([64, 256, 1024])),
        # Only the "stream" kind reads this: it seeds the random chunk
        # boundaries the input is split at before being fed through a
        # ScanSession (split-point equivalence fuzzing).
        "split_seed": int(rng.integers(0, 2**31)),
        # Only the "sharded" kind reads these: shard count and chunk
        # size small enough that shard boundaries and chunk boundaries
        # both land at awkward places inside tuple strides.
        "shards": int(rng.integers(1, 6)),
        "shard_chunk_bytes": int(rng.choice([64, 256, 1024])),
        # Only the "threaded" kind reads this: the slab thread count,
        # deliberately including heavy oversubscription (determinism is
        # part of the contract, not just agreement).
        "slab_threads": int(rng.choice([1, 2, 3, 4, 8])),
        # Only the "plan" kind reads these: which candidate to force
        # through the planner's dispatcher (None = the planner's own
        # pick), so every execute_plan arm gets differential coverage;
        # plan_float flips the workload to a compensated float64 one
        # (the planner's float arms), with the force drawn from the
        # float-legal subset.
        "plan_force": PLAN_FORCES[int(rng.integers(0, len(PLAN_FORCES)))],
        "plan_float": bool(rng.integers(0, 2)),
        # Only the "float_eft" kind reads these: the float dtype, a
        # corpus flavor (cancellation-heavy vs wide-magnitude), and a
        # length drawn past the 4096-row segment span so the
        # double-double segment chain is exercised, not just one
        # segment.
        "float_dtype": (np.float32, np.float64)[int(rng.integers(0, 2))],
        "float_flavor": str(rng.choice(["cancel", "magnitude", "mixed"])),
        "float_n": int(rng.integers(0, 3 * 4096 + 777)),
        # Only the "compressed" kind reads these: blocked-container
        # geometry (tiny blocks so even fuzz-sized inputs span many),
        # the codec's delta order, whether to scan single-session or
        # sharded, whether to re-encode the scanned output, and whether
        # to kill the job mid-way (injected failure) and resume it.
        "compressed_block_elements": int(rng.choice([16, 64, 256, 1024])),
        "codec_order": int(rng.integers(1, 4)),
        "compressed_sharded": bool(rng.integers(0, 2)),
        "compressed_output_blocked": bool(rng.integers(0, 2)),
        "compressed_crash": bool(rng.integers(0, 2)),
    }
    return config


class SessionSplitScan:
    """Adapter: runs a scan by feeding a ``ScanSession`` randomly-sized
    chunks — including empty ones and edges inside a tuple stride — and
    concatenating the outputs.  Satisfies the engine contract, so it
    drops into the same oracle comparison as every real engine.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        from repro.stream import ScanSession

        rng = np.random.default_rng(self.seed)
        session = ScanSession(
            op=op, order=order, tuple_size=tuple_size, inclusive=inclusive
        )
        values = np.asarray(values)
        n = len(values)
        parts = []
        pos = 0
        while pos < n:
            if rng.integers(0, 8) == 0:
                session.feed(values[pos:pos])  # empty chunks must be no-ops
            step = int(rng.integers(1, max(2, n // 3 + 1)))
            parts.append(session.feed(values[pos : pos + step]))
            pos += step

        class Result:
            pass

        result = Result()
        result.values = (
            np.concatenate(parts) if parts else session.feed(values[:0])
        )
        return result


class ShardedFileScan:
    """Adapter: round-trips a scan through :func:`scan_file_sharded` —
    input written to a temp file, scanned across random shard counts,
    worker counts, and tiny chunk sizes, output read back.  Exercises
    shard splits, carry splicing, priming, and fold against the same
    oracle comparison as every in-memory engine.
    """

    def __init__(self, shards: int, workers: int, chunk_bytes: int):
        self.shards = shards
        self.workers = workers
        self.chunk_bytes = chunk_bytes

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        import os
        import tempfile

        from repro.stream import scan_file_sharded

        values = np.asarray(values)
        with tempfile.TemporaryDirectory(prefix="fuzz-sharded-") as tmp:
            input_path = os.path.join(tmp, "in.bin")
            output_path = os.path.join(tmp, "out.bin")
            values.tofile(input_path)
            scan_file_sharded(
                input_path, output_path,
                dtype=values.dtype, op=op, order=order,
                tuple_size=tuple_size, inclusive=inclusive,
                shards=self.shards, workers=self.workers,
                chunk_bytes=self.chunk_bytes,
            )
            out = np.fromfile(output_path, dtype=values.dtype)

        class Result:
            pass

        result = Result()
        result.values = out
        return result


class CompressedScan:
    """Adapter: encodes the input into a blocked ``.samb`` container and
    scans it through the fused decode→scan→encode stream layer —
    single-session or sharded, optionally killed mid-job by the
    injected-failure hook and resumed from its checkpoint/manifest —
    then reads the scanned stream back (decoding it again when the
    output was itself blocked).  The oracle sees only raw values, so
    codec round-trip, block-aligned shard planning, carry splice, and
    resume must compose to bit-identical output.
    """

    def __init__(self, *, block_elements, codec_order, sharded, shards,
                 chunk_bytes, output_blocked, crash):
        self.block_elements = block_elements
        self.codec_order = codec_order
        self.sharded = sharded
        self.shards = shards
        self.chunk_bytes = chunk_bytes
        # Blocked output is single-session only (the sharded fold
        # rewrites the output in place).
        self.output_blocked = output_blocked and not sharded
        self.crash = crash

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        import os
        import tempfile

        from repro.compression import BlockedDeltaCodec
        from repro.compression.stream import BlockedFileReader
        from repro.stream import (
            InjectedFailureError,
            scan_file,
            scan_file_sharded,
        )

        values = np.asarray(values)
        with tempfile.TemporaryDirectory(prefix="fuzz-compressed-") as tmp:
            input_path = os.path.join(tmp, "in.samb")
            output_path = os.path.join(
                tmp, "out.samb" if self.output_blocked else "out.bin"
            )
            blob = BlockedDeltaCodec(
                block_elements=self.block_elements
            ).compress(values, order=self.codec_order)
            with open(input_path, "wb") as fh:
                fh.write(blob.data)

            kwargs = dict(
                op=op, order=order, tuple_size=tuple_size,
                inclusive=inclusive, input_format="blocked",
                checkpoint=os.path.join(tmp, "ckpt.json"),
            )
            if self.sharded:
                attempts = [{"fail_after_shards": 1}] if self.crash else []
                attempts.append({"resume": True})
                for extra in attempts:
                    try:
                        scan_file_sharded(
                            input_path, output_path, shards=self.shards,
                            workers=1, chunk_bytes=self.chunk_bytes,
                            **kwargs, **extra,
                        )
                    except InjectedFailureError:
                        pass
            else:
                if self.output_blocked:
                    kwargs.update(
                        output_format="blocked",
                        output_block_elements=self.block_elements,
                    )
                attempts = [{"fail_after_chunks": 1}] if self.crash else []
                attempts.append({"resume": True})
                for extra in attempts:
                    try:
                        scan_file(
                            input_path, output_path,
                            chunk_bytes=self.chunk_bytes,
                            checkpoint_every=1, **kwargs, **extra,
                        )
                    except InjectedFailureError:
                        pass

            if self.output_blocked:
                with BlockedFileReader(output_path) as reader:
                    out = np.array(
                        reader.read_range(0, reader.count), copy=True
                    )
            else:
                out = np.fromfile(output_path, dtype=values.dtype)

        class Result:
            pass

        result = Result()
        result.values = out
        return result


class PlannedScan:
    """Adapter: routes a scan through the execution planner
    (:func:`repro.plan.auto_scan`) — flag-less, letting the planner
    choose, or with a forced candidate label so every dispatch arm
    (serial kernel, threaded slabs, process pool) is differentially
    checked against the oracle regardless of what this machine's cost
    model would pick on its own.  ``float_mode`` puts the plan under
    the compensated contract (the float arms; the oracle is then the
    serial compensated kernel, not the naive serial fold)."""

    def __init__(self, force, float_mode=None):
        self.force = force
        self.float_mode = float_mode

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        from repro.plan import auto_scan

        class Result:
            pass

        result = Result()
        result.values = auto_scan(
            np.asarray(values), op=op, order=order,
            tuple_size=tuple_size, inclusive=inclusive, force=self.force,
            float_mode=self.float_mode,
        )
        return result


def _float_corpus(rng, dtype, flavor, n):
    """Cancellation-heavy float fuzz input: large terms that cancel
    (where the naive fold loses whole digits), wide magnitude swings,
    or a half-and-half splice of both."""
    dtype = np.dtype(dtype)
    big = 1e7 if dtype == np.float32 else 1e16
    if flavor == "cancel":
        base = np.tile(np.array([big, 1.0, -big, 1.0]), n // 4 + 1)[:n]
        return (base * rng.choice([1.0, -1.0], n)).astype(dtype)
    if flavor == "magnitude":
        mags = rng.integers(-6, 7, n).astype(np.float64)
        return (rng.normal(0.0, 1.0, n) * 10.0 ** mags).astype(dtype)
    half = n // 2
    return np.concatenate([
        _float_corpus(rng, dtype, "cancel", half),
        _float_corpus(rng, dtype, "magnitude", n - half),
    ]).astype(dtype)


def _float_oracle_cumsum(values, tuple_size):
    """Per-lane higher-precision inclusive cumsum: float128/float80
    (``np.longdouble``) when the platform has one, mpmath otherwise.
    Returns a float64 ndarray of the correctly-rounded-ish reference
    (its own rounding is negligible next to the float64 ulp scale)."""
    n = len(values)
    rows = n // tuple_size
    lanes = np.asarray(values, dtype=np.float64)[: rows * tuple_size]
    lanes = lanes.reshape(rows, tuple_size)
    if np.dtype(np.longdouble).itemsize > 8:
        out = np.cumsum(lanes.astype(np.longdouble), axis=0)
        head = out.astype(np.float64).reshape(-1)
    else:  # pragma: no cover - platforms whose longdouble is float64
        import mpmath

        with mpmath.workprec(200):
            acc = [mpmath.mpf(0)] * tuple_size
            head = np.empty(rows * tuple_size)
            for i in range(rows):
                for lane in range(tuple_size):
                    acc[lane] += mpmath.mpf(float(lanes[i, lane]))
                    head[i * tuple_size + lane] = float(acc[lane])
    tail = np.asarray(values, dtype=np.float64)[rows * tuple_size:]
    if len(tail):
        head = np.concatenate([head, np.cumsum(tail)])  # ragged tail: best effort
    return head


def run_float_eft(config, rng) -> bool:
    """The ``float_eft`` differential arm: one compensated float
    workload run through every parallel decomposition — slab threads
    {1, 2, 3, 8}, shards {1, 2, 4}, and a random session split — all of
    which must agree *bit for bit* with the serial compensated kernel;
    then (order-1, inclusive, aligned lengths) the compensated result's
    worst absolute error against a float128/mpmath oracle must not
    exceed the naive serial fold's."""
    import os
    import tempfile

    from repro.kernels import ThreadedScan, compensated_scan_into
    from repro.ops import get_op
    from repro.stream import ScanSession, scan_file_sharded

    dtype = np.dtype(config["float_dtype"])
    s = max(1, config["tuple_size"] % 5)  # tuple lanes 1..4
    order = 1 + config["order"] % 3       # compensated orders 1..3
    inclusive = config["inclusive"]
    n = config["float_n"] * s
    n -= n % s                             # aligned: lanes stay rectangular
    values = _float_corpus(rng, dtype, config["float_flavor"], n)
    op = get_op("add")

    reference = compensated_scan_into(
        values, np.empty_like(values), op,
        order=order, tuple_size=s, inclusive=inclusive,
    )
    bits = reference.view(np.uint32 if dtype.itemsize == 4 else np.uint64)

    def agrees(out):
        out = np.asarray(out)
        return out.dtype == dtype and np.array_equal(
            bits, out.view(bits.dtype)
        )

    for threads in FLOAT_EFT_THREADS:
        engine = ThreadedScan(
            threads=threads, cutover_bytes=0, float_mode="compensated"
        )
        out = engine.run(
            values, order=order, tuple_size=s, op=op, inclusive=inclusive
        ).values
        if not agrees(out):
            return False

    with tempfile.TemporaryDirectory(prefix="fuzz-float-eft-") as tmp:
        input_path = os.path.join(tmp, "in.bin")
        values.tofile(input_path)
        for shards in FLOAT_EFT_SHARDS:
            output_path = os.path.join(tmp, f"out-{shards}.bin")
            scan_file_sharded(
                input_path, output_path, dtype=dtype, op="add",
                order=order, tuple_size=s, inclusive=inclusive,
                shards=shards, workers=2,
                chunk_bytes=config["shard_chunk_bytes"] * 64,
                float_mode="compensated",
            )
            if not agrees(np.fromfile(output_path, dtype=dtype)):
                return False

    session = ScanSession(
        op="add", order=order, tuple_size=s, inclusive=inclusive,
        float_mode="compensated",
    )
    split = np.random.default_rng(config["split_seed"])
    parts, pos = [], 0
    while pos < n:
        step = int(split.integers(1, max(2, n // 3 + 1)))
        parts.append(session.feed(values[pos : pos + step]))
        pos += step
    stitched = np.concatenate(parts) if parts else values[:0]
    if not agrees(stitched):
        return False

    if order == 1 and inclusive and n:
        oracle = _float_oracle_cumsum(values, s)
        naive = (
            np.cumsum(values.reshape(-1, s), axis=0)  # the native-width fold
            .reshape(-1)
            .astype(np.float64)
        )
        comp_err = np.nanmax(np.abs(reference.astype(np.float64) - oracle))
        naive_err = np.nanmax(np.abs(naive - oracle))
        # Compensated output is faithfully rounded, so it can trail a
        # luckily-rounded naive fold by at most one ulp of the largest
        # prefix; beyond that margin it must win.
        ulp = np.max(np.abs(oracle)) * np.finfo(dtype).eps if n else 0.0
        if not (comp_err <= max(naive_err, ulp)):
            return False
    return True


def run_fused_order(config, rng) -> bool:
    """The ``fused_order`` differential arm: one full-range integer ADD
    workload inside the fused single-pass gate (``q`` in 2..4, ``s`` in
    2..8) run through every surface that owns a fused tile path —
    one-shot :func:`repro.kernels.scan_into`, a ``LaneKernel(order=q)``
    fed at random split points (mid-tile carry-matrix continuation),
    slab threads, a ``ScanSession`` split feed, the sharded file driver
    with random shard/worker counts, and the serve layer's
    ``feed_batch`` over three staggered streams (mixing fused batches
    with short-chunk fallback rounds).  All must agree *bit for bit*
    with the pass-per-order serial oracle; values are drawn from the
    dtype's full range so modular wraparound of the binomial carry
    splice is exercised, not just small sums."""
    import os
    import tempfile

    from repro.kernels import LaneKernel, ThreadedScan, scan_into
    from repro.ops import get_op
    from repro.serve.batch import feed_batch
    from repro.stream import ScanSession, scan_file_sharded

    dtype = np.dtype(config["dtype"])
    q = 2 + config["order"] % 3           # fused orders 2..4
    s = 2 + config["tuple_size"] % 7      # fused tuple lanes 2..8
    inclusive = config["inclusive"]
    n = config["n"]
    info = np.iinfo(dtype)
    values = rng.integers(info.min, info.max, n, dtype=dtype, endpoint=True)
    op = get_op("add")

    expected = prefix_sum_serial(
        values, order=q, tuple_size=s, op="add", inclusive=inclusive
    )

    def agrees(out):
        out = np.asarray(out)
        return out.dtype == dtype and np.array_equal(out, expected)

    # One-shot fused tile scan.
    if not agrees(scan_into(values, np.empty_like(values), op,
                            order=q, tuple_size=s, inclusive=inclusive)):
        return False

    # LaneKernel continuation: random split points land mid-tile and
    # mid-stride, so the (q, s) carry matrix must splice every cut.
    # The kernel is inclusive-only (exclusive is its callers' epilogue),
    # so this arm always checks against the inclusive reference.
    expected_inc = expected if inclusive else prefix_sum_serial(
        values, order=q, tuple_size=s, op="add", inclusive=True
    )
    kernel = LaneKernel("add", dtype, tuple_size=s, order=q)
    split = np.random.default_rng(config["split_seed"])
    parts, pos = [], 0
    while pos < n:
        step = int(split.integers(1, max(2, n // 3 + 1)))
        parts.append(np.asarray(kernel.feed(values[pos : pos + step].copy())).copy())
        pos += step
    stitched = np.concatenate(parts) if parts else values[:0]
    if not np.array_equal(stitched, expected_inc):
        return False

    # Slab threads (cutover forced off so fuzz sizes actually split).
    engine = ThreadedScan(threads=config["slab_threads"], cutover_bytes=0)
    out = engine.run(values, order=q, tuple_size=s, op="add",
                     inclusive=inclusive).values
    if not agrees(out):
        return False

    # Session split feed (the serve layer's single-stream path).
    out = SessionSplitScan(seed=config["split_seed"]).run(
        values, order=q, tuple_size=s, op="add", inclusive=inclusive
    ).values
    if not agrees(out):
        return False

    # Sharded file driver: single-pass layout, aggregate matrices,
    # binomial splice, shard fold.
    with tempfile.TemporaryDirectory(prefix="fuzz-fused-") as tmp:
        input_path = os.path.join(tmp, "in.bin")
        output_path = os.path.join(tmp, "out.bin")
        values.tofile(input_path)
        scan_file_sharded(
            input_path, output_path, dtype=dtype, op="add",
            order=q, tuple_size=s, inclusive=inclusive,
            shards=config["shards"], workers=min(config["workers"], 3),
            chunk_bytes=config["shard_chunk_bytes"],
        )
        if not agrees(np.fromfile(output_path, dtype=dtype)):
            return False

    # Batched serve dispatch: three staggered streams over the same
    # values, each cut independently, so rounds mix fused staging with
    # the short-chunk pass-per-order fallback mid-stream.
    B = 3
    sessions = [
        ScanSession(op="add", order=q, tuple_size=s, inclusive=inclusive,
                    dtype=dtype)
        for _ in range(B)
    ]
    feeds = [[] for _ in range(B)]
    positions = [0] * B
    while min(positions) < n:
        chunks = []
        for i in range(B):
            if positions[i] >= n:
                chunks.append(values[:0])
            else:
                step = int(split.integers(1, max(2, n // 3 + 1)))
                chunks.append(values[positions[i] : positions[i] + step])
        outs = feed_batch(sessions, [c.copy() for c in chunks])
        for i in range(B):
            feeds[i].append(outs[i])
            positions[i] += chunks[i].size
    for i in range(B):
        stream = np.concatenate(feeds[i]) if feeds[i] else values[:0]
        if not agrees(stream):
            return False
    return True


def build_engine(config):
    kw = dict(
        threads_per_block=config["threads_per_block"],
        items_per_thread=config["items_per_thread"],
        policy=config["policy"],
    )
    kind = config["engine"]
    if kind == "sam":
        return SamScan(num_blocks=int(np.random.default_rng(0).integers(2, 9)), **kw)
    if kind == "sam_chained":
        return SamScan(carry_scheme="chained", num_blocks=4, **kw)
    if kind == "lookback":
        return DecoupledLookbackScan(**kw)
    if kind == "reduce_scan":
        return ReduceThenScan(**kw)
    if kind == "three_phase":
        return ThreePhaseScan(**kw)
    if kind == "streamscan":
        return StreamScan(**kw)
    if kind == "stream":
        return SessionSplitScan(seed=config["split_seed"])
    if kind == "threaded":
        from repro.kernels import ThreadedScan

        # cutover_bytes=0 forces the slab-parallel path even at fuzz
        # sizes; without it every config would take the serial fallback.
        return ThreadedScan(threads=config["slab_threads"], cutover_bytes=0)
    if kind == "plan":
        return PlannedScan(force=config["plan_force"])
    if kind == "compressed":
        return CompressedScan(
            block_elements=config["compressed_block_elements"],
            codec_order=config["codec_order"],
            sharded=config["compressed_sharded"],
            shards=config["shards"],
            chunk_bytes=config["shard_chunk_bytes"],
            output_blocked=config["compressed_output_blocked"],
            crash=config["compressed_crash"],
        )
    if kind == "sharded":
        return ShardedFileScan(
            shards=config["shards"],
            workers=min(config["workers"], 3),
            chunk_bytes=config["shard_chunk_bytes"],
        )
    if kind in ("parallel", "parallel_chained"):
        return ParallelSamScan(
            num_workers=config["workers"],
            chunk_elements=config["chunk_elements"],
            min_parallel_elements=0,   # fuzz-sized inputs must not degrade
            fallback="raise",          # any worker failure is a fuzz failure
            carry_scheme="chained" if kind == "parallel_chained" else "decoupled",
        )
    raise ValueError(kind)


def run_plan_float(config, rng) -> bool:
    """The planner's float arms: a compensated float64 workload routed
    through :func:`repro.plan.auto_scan` — planner's own pick or a
    forced float-legal candidate — must agree bit for bit with the
    serial compensated kernel (the mode's reference)."""
    from repro.kernels import compensated_scan_into
    from repro.ops import get_op

    s = max(1, config["tuple_size"] % 5)
    order = 1 + config["order"] % 3
    n = config["n"] - config["n"] % s
    values = _float_corpus(rng, np.float64, config["float_flavor"], n)
    force = config["plan_force"]
    if force not in PLAN_FLOAT_FORCES:
        force = None
    engine = PlannedScan(force=force, float_mode="compensated")
    out = engine.run(
        values, order=order, tuple_size=s, op="add",
        inclusive=config["inclusive"],
    ).values
    expected = compensated_scan_into(
        values, np.empty_like(values), get_op("add"),
        order=order, tuple_size=s, inclusive=config["inclusive"],
    )
    return np.array_equal(out.view(np.uint64), expected.view(np.uint64))


def run_one(config, rng) -> bool:
    """Run one configuration; returns True on agreement."""
    if config["engine"] == "float_eft":
        return run_float_eft(config, rng)
    if config["engine"] == "fused_order":
        return run_fused_order(config, rng)
    if config["engine"] == "plan" and config["plan_float"]:
        return run_plan_float(config, rng)
    dtype = np.dtype(config["dtype"])
    # The blocked codec is int32/int64 only; map the unsigned draws to
    # their signed width instead of discarding the configuration.
    if config["engine"] == "compressed" and dtype.kind == "u":
        dtype = np.dtype(np.int32 if dtype.itemsize == 4 else np.int64)
        config["dtype"] = dtype.type
    if dtype.kind == "u":
        values = rng.integers(0, 2**16, config["n"]).astype(dtype)
    else:
        values = rng.integers(-(2**16), 2**16, config["n"]).astype(dtype)
    # Lookback's tuple path needs divisible sizes; truncate like the
    # paper's tuple experiments do.
    if config["engine"] == "lookback" and config["tuple_size"] > 1:
        n = len(values) - len(values) % config["tuple_size"]
        values = values[:n]
    engine = build_engine(config)
    result = engine.run(
        values,
        order=config["order"],
        tuple_size=config["tuple_size"],
        op=config["op"],
        inclusive=config["inclusive"],
    )
    expected = prefix_sum_serial(
        values,
        order=config["order"],
        tuple_size=config["tuple_size"],
        op=config["op"],
        inclusive=config["inclusive"],
    )
    return np.array_equal(result.values, expected)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=100,
                        help="0 = run until interrupted")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", choices=ENGINES, default=None,
                        help="restrict to one engine kind "
                             "(e.g. --only stream for split-point fuzzing)")
    args = parser.parse_args(argv)

    engines = (args.only,) if args.only else ENGINES
    rng = np.random.default_rng(args.seed)
    failures = 0
    iteration = 0
    start = time.time()
    while args.iterations == 0 or iteration < args.iterations:
        iteration += 1
        config = random_config(rng, engines)
        try:
            ok = run_one(config, rng)
        except Exception as exc:  # noqa: BLE001 - fuzzing reports everything
            print(f"[CRASH] iteration {iteration}: {config}\n        {exc!r}")
            failures += 1
            continue
        if not ok:
            print(f"[MISMATCH] iteration {iteration}: {config}")
            failures += 1
        if iteration % 50 == 0:
            rate = iteration / (time.time() - start)
            print(f"... {iteration} configs, {failures} failures, {rate:.1f}/s")
    print(f"done: {iteration} configurations, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
