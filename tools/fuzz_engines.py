#!/usr/bin/env python
"""Differential fuzzing of every scan engine against the serial oracle.

Randomizes the whole configuration space — engine, size (including
non-powers-of-two), dtype, operator, order, tuple size,
inclusive/exclusive, block geometry, carry scheme, schedule policy —
and demands bit-identical agreement with the serial reference.  This
complements the hypothesis property tests with long-running,
wider-spectrum search.

Usage:
    python tools/fuzz_engines.py --iterations 200 --seed 1
    python tools/fuzz_engines.py --iterations 0     # run forever
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import (
    DecoupledLookbackScan,
    ReduceThenScan,
    StreamScan,
    ThreePhaseScan,
)
from repro.core import SamScan
from repro.parallel import ParallelSamScan
from repro.reference import prefix_sum_serial

ENGINES = (
    "sam", "sam_chained", "lookback", "reduce_scan", "three_phase",
    "streamscan", "parallel", "parallel_chained", "stream", "sharded",
    "threaded", "plan", "compressed",
)

#: Strategies the "plan" kind forces through the planner's dispatcher
#: (None = let the planner choose, which is itself a dispatch arm).
PLAN_FORCES = (None, "serial", "threaded:2", "threaded:3", "parallel:2")
OPERATORS = ("add", "max", "min", "xor", "and", "or")
DTYPES = (np.int32, np.int64, np.uint32, np.uint64)
POLICIES = ("round_robin", "reversed", "rotating", "random")


def random_config(rng, engines=ENGINES):
    """One random engine configuration + workload."""
    engine_kind = rng.choice(engines)
    threads = int(rng.choice([32, 64, 128]))
    items = int(rng.choice([1, 2, 4]))
    policy = str(rng.choice(POLICIES))
    config = {
        "engine": engine_kind,
        "threads_per_block": threads,
        "items_per_thread": items,
        "policy": policy,
        "n": int(rng.integers(0, 6000)),
        "dtype": rng.choice(DTYPES),
        "op": str(rng.choice(OPERATORS)),
        "order": int(rng.integers(1, 5)),
        "tuple_size": int(rng.integers(1, 9)),
        "inclusive": bool(rng.integers(0, 2)),
        # Only the parallel engines read these: real worker processes
        # and a small chunk size so even fuzz-sized inputs span many
        # chunks (exercising the shared-memory carry protocol).
        "workers": int(rng.integers(1, 5)),
        "chunk_elements": int(rng.choice([64, 256, 1024])),
        # Only the "stream" kind reads this: it seeds the random chunk
        # boundaries the input is split at before being fed through a
        # ScanSession (split-point equivalence fuzzing).
        "split_seed": int(rng.integers(0, 2**31)),
        # Only the "sharded" kind reads these: shard count and chunk
        # size small enough that shard boundaries and chunk boundaries
        # both land at awkward places inside tuple strides.
        "shards": int(rng.integers(1, 6)),
        "shard_chunk_bytes": int(rng.choice([64, 256, 1024])),
        # Only the "threaded" kind reads this: the slab thread count,
        # deliberately including heavy oversubscription (determinism is
        # part of the contract, not just agreement).
        "slab_threads": int(rng.choice([1, 2, 3, 4, 8])),
        # Only the "plan" kind reads this: which candidate to force
        # through the planner's dispatcher (None = the planner's own
        # pick), so every execute_plan arm gets differential coverage.
        "plan_force": PLAN_FORCES[int(rng.integers(0, len(PLAN_FORCES)))],
        # Only the "compressed" kind reads these: blocked-container
        # geometry (tiny blocks so even fuzz-sized inputs span many),
        # the codec's delta order, whether to scan single-session or
        # sharded, whether to re-encode the scanned output, and whether
        # to kill the job mid-way (injected failure) and resume it.
        "compressed_block_elements": int(rng.choice([16, 64, 256, 1024])),
        "codec_order": int(rng.integers(1, 4)),
        "compressed_sharded": bool(rng.integers(0, 2)),
        "compressed_output_blocked": bool(rng.integers(0, 2)),
        "compressed_crash": bool(rng.integers(0, 2)),
    }
    return config


class SessionSplitScan:
    """Adapter: runs a scan by feeding a ``ScanSession`` randomly-sized
    chunks — including empty ones and edges inside a tuple stride — and
    concatenating the outputs.  Satisfies the engine contract, so it
    drops into the same oracle comparison as every real engine.
    """

    def __init__(self, seed: int):
        self.seed = seed

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        from repro.stream import ScanSession

        rng = np.random.default_rng(self.seed)
        session = ScanSession(
            op=op, order=order, tuple_size=tuple_size, inclusive=inclusive
        )
        values = np.asarray(values)
        n = len(values)
        parts = []
        pos = 0
        while pos < n:
            if rng.integers(0, 8) == 0:
                session.feed(values[pos:pos])  # empty chunks must be no-ops
            step = int(rng.integers(1, max(2, n // 3 + 1)))
            parts.append(session.feed(values[pos : pos + step]))
            pos += step

        class Result:
            pass

        result = Result()
        result.values = (
            np.concatenate(parts) if parts else session.feed(values[:0])
        )
        return result


class ShardedFileScan:
    """Adapter: round-trips a scan through :func:`scan_file_sharded` —
    input written to a temp file, scanned across random shard counts,
    worker counts, and tiny chunk sizes, output read back.  Exercises
    shard splits, carry splicing, priming, and fold against the same
    oracle comparison as every in-memory engine.
    """

    def __init__(self, shards: int, workers: int, chunk_bytes: int):
        self.shards = shards
        self.workers = workers
        self.chunk_bytes = chunk_bytes

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        import os
        import tempfile

        from repro.stream import scan_file_sharded

        values = np.asarray(values)
        with tempfile.TemporaryDirectory(prefix="fuzz-sharded-") as tmp:
            input_path = os.path.join(tmp, "in.bin")
            output_path = os.path.join(tmp, "out.bin")
            values.tofile(input_path)
            scan_file_sharded(
                input_path, output_path,
                dtype=values.dtype, op=op, order=order,
                tuple_size=tuple_size, inclusive=inclusive,
                shards=self.shards, workers=self.workers,
                chunk_bytes=self.chunk_bytes,
            )
            out = np.fromfile(output_path, dtype=values.dtype)

        class Result:
            pass

        result = Result()
        result.values = out
        return result


class CompressedScan:
    """Adapter: encodes the input into a blocked ``.samb`` container and
    scans it through the fused decode→scan→encode stream layer —
    single-session or sharded, optionally killed mid-job by the
    injected-failure hook and resumed from its checkpoint/manifest —
    then reads the scanned stream back (decoding it again when the
    output was itself blocked).  The oracle sees only raw values, so
    codec round-trip, block-aligned shard planning, carry splice, and
    resume must compose to bit-identical output.
    """

    def __init__(self, *, block_elements, codec_order, sharded, shards,
                 chunk_bytes, output_blocked, crash):
        self.block_elements = block_elements
        self.codec_order = codec_order
        self.sharded = sharded
        self.shards = shards
        self.chunk_bytes = chunk_bytes
        # Blocked output is single-session only (the sharded fold
        # rewrites the output in place).
        self.output_blocked = output_blocked and not sharded
        self.crash = crash

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        import os
        import tempfile

        from repro.compression import BlockedDeltaCodec
        from repro.compression.stream import BlockedFileReader
        from repro.stream import (
            InjectedFailureError,
            scan_file,
            scan_file_sharded,
        )

        values = np.asarray(values)
        with tempfile.TemporaryDirectory(prefix="fuzz-compressed-") as tmp:
            input_path = os.path.join(tmp, "in.samb")
            output_path = os.path.join(
                tmp, "out.samb" if self.output_blocked else "out.bin"
            )
            blob = BlockedDeltaCodec(
                block_elements=self.block_elements
            ).compress(values, order=self.codec_order)
            with open(input_path, "wb") as fh:
                fh.write(blob.data)

            kwargs = dict(
                op=op, order=order, tuple_size=tuple_size,
                inclusive=inclusive, input_format="blocked",
                checkpoint=os.path.join(tmp, "ckpt.json"),
            )
            if self.sharded:
                attempts = [{"fail_after_shards": 1}] if self.crash else []
                attempts.append({"resume": True})
                for extra in attempts:
                    try:
                        scan_file_sharded(
                            input_path, output_path, shards=self.shards,
                            workers=1, chunk_bytes=self.chunk_bytes,
                            **kwargs, **extra,
                        )
                    except InjectedFailureError:
                        pass
            else:
                if self.output_blocked:
                    kwargs.update(
                        output_format="blocked",
                        output_block_elements=self.block_elements,
                    )
                attempts = [{"fail_after_chunks": 1}] if self.crash else []
                attempts.append({"resume": True})
                for extra in attempts:
                    try:
                        scan_file(
                            input_path, output_path,
                            chunk_bytes=self.chunk_bytes,
                            checkpoint_every=1, **kwargs, **extra,
                        )
                    except InjectedFailureError:
                        pass

            if self.output_blocked:
                with BlockedFileReader(output_path) as reader:
                    out = np.array(
                        reader.read_range(0, reader.count), copy=True
                    )
            else:
                out = np.fromfile(output_path, dtype=values.dtype)

        class Result:
            pass

        result = Result()
        result.values = out
        return result


class PlannedScan:
    """Adapter: routes a scan through the execution planner
    (:func:`repro.plan.auto_scan`) — flag-less, letting the planner
    choose, or with a forced candidate label so every dispatch arm
    (serial kernel, threaded slabs, process pool) is differentially
    checked against the oracle regardless of what this machine's cost
    model would pick on its own."""

    def __init__(self, force):
        self.force = force

    def run(self, values, order=1, tuple_size=1, op="add", inclusive=True):
        from repro.plan import auto_scan

        class Result:
            pass

        result = Result()
        result.values = auto_scan(
            np.asarray(values), op=op, order=order,
            tuple_size=tuple_size, inclusive=inclusive, force=self.force,
        )
        return result


def build_engine(config):
    kw = dict(
        threads_per_block=config["threads_per_block"],
        items_per_thread=config["items_per_thread"],
        policy=config["policy"],
    )
    kind = config["engine"]
    if kind == "sam":
        return SamScan(num_blocks=int(np.random.default_rng(0).integers(2, 9)), **kw)
    if kind == "sam_chained":
        return SamScan(carry_scheme="chained", num_blocks=4, **kw)
    if kind == "lookback":
        return DecoupledLookbackScan(**kw)
    if kind == "reduce_scan":
        return ReduceThenScan(**kw)
    if kind == "three_phase":
        return ThreePhaseScan(**kw)
    if kind == "streamscan":
        return StreamScan(**kw)
    if kind == "stream":
        return SessionSplitScan(seed=config["split_seed"])
    if kind == "threaded":
        from repro.kernels import ThreadedScan

        # cutover_bytes=0 forces the slab-parallel path even at fuzz
        # sizes; without it every config would take the serial fallback.
        return ThreadedScan(threads=config["slab_threads"], cutover_bytes=0)
    if kind == "plan":
        return PlannedScan(force=config["plan_force"])
    if kind == "compressed":
        return CompressedScan(
            block_elements=config["compressed_block_elements"],
            codec_order=config["codec_order"],
            sharded=config["compressed_sharded"],
            shards=config["shards"],
            chunk_bytes=config["shard_chunk_bytes"],
            output_blocked=config["compressed_output_blocked"],
            crash=config["compressed_crash"],
        )
    if kind == "sharded":
        return ShardedFileScan(
            shards=config["shards"],
            workers=min(config["workers"], 3),
            chunk_bytes=config["shard_chunk_bytes"],
        )
    if kind in ("parallel", "parallel_chained"):
        return ParallelSamScan(
            num_workers=config["workers"],
            chunk_elements=config["chunk_elements"],
            min_parallel_elements=0,   # fuzz-sized inputs must not degrade
            fallback="raise",          # any worker failure is a fuzz failure
            carry_scheme="chained" if kind == "parallel_chained" else "decoupled",
        )
    raise ValueError(kind)


def run_one(config, rng) -> bool:
    """Run one configuration; returns True on agreement."""
    dtype = np.dtype(config["dtype"])
    # The blocked codec is int32/int64 only; map the unsigned draws to
    # their signed width instead of discarding the configuration.
    if config["engine"] == "compressed" and dtype.kind == "u":
        dtype = np.dtype(np.int32 if dtype.itemsize == 4 else np.int64)
        config["dtype"] = dtype.type
    if dtype.kind == "u":
        values = rng.integers(0, 2**16, config["n"]).astype(dtype)
    else:
        values = rng.integers(-(2**16), 2**16, config["n"]).astype(dtype)
    # Lookback's tuple path needs divisible sizes; truncate like the
    # paper's tuple experiments do.
    if config["engine"] == "lookback" and config["tuple_size"] > 1:
        n = len(values) - len(values) % config["tuple_size"]
        values = values[:n]
    engine = build_engine(config)
    result = engine.run(
        values,
        order=config["order"],
        tuple_size=config["tuple_size"],
        op=config["op"],
        inclusive=config["inclusive"],
    )
    expected = prefix_sum_serial(
        values,
        order=config["order"],
        tuple_size=config["tuple_size"],
        op=config["op"],
        inclusive=config["inclusive"],
    )
    return np.array_equal(result.values, expected)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=100,
                        help="0 = run until interrupted")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", choices=ENGINES, default=None,
                        help="restrict to one engine kind "
                             "(e.g. --only stream for split-point fuzzing)")
    args = parser.parse_args(argv)

    engines = (args.only,) if args.only else ENGINES
    rng = np.random.default_rng(args.seed)
    failures = 0
    iteration = 0
    start = time.time()
    while args.iterations == 0 or iteration < args.iterations:
        iteration += 1
        config = random_config(rng, engines)
        try:
            ok = run_one(config, rng)
        except Exception as exc:  # noqa: BLE001 - fuzzing reports everything
            print(f"[CRASH] iteration {iteration}: {config}\n        {exc!r}")
            failures += 1
            continue
        if not ok:
            print(f"[MISMATCH] iteration {iteration}: {config}")
            failures += 1
        if iteration % 50 == 0:
            rate = iteration / (time.time() - start)
            print(f"... {iteration} configs, {failures} failures, {rate:.1f}/s")
    print(f"done: {iteration} configurations, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
