# Convenience targets for the SAM reproduction.

.PHONY: install test bench figures validate fuzz coverage clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every table and figure as text (also written to
# benchmarks/results/ by the bench harness).
figures:
	python -m repro table1
	python -m repro figures

validate:
	python tools/validate_artifact.py

fuzz:
	python tools/fuzz_engines.py --iterations 500

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
