"""repro — reproduction of "Higher-Order and Tuple-Based
Massively-Parallel Prefix Sums" (Maleki, Yang, Burtscher; PLDI 2016).

Quickstart
----------
>>> import numpy as np, repro
>>> a = np.array([1, 2, 3, 4, 5, 2, 4, 6, 8, 10], dtype=np.int32)
>>> d = repro.delta_encode(a)                 # the paper's Section 1 example
>>> d.tolist()
[1, 1, 1, 1, 1, -3, 2, 2, 2, 2]
>>> repro.prefix_sum(d).tolist()              # delta decoding == prefix sum
[1, 2, 3, 4, 5, 2, 4, 6, 8, 10]

The generalizations compose freely::

    repro.prefix_sum(a, order=3, tuple_size=2)
    repro.scan(a, op="max", inclusive=False)

Engines are selectable by name — ``"parallel"`` runs the scan on real
worker processes over shared memory::

    repro.prefix_sum(d, engine="parallel")

Inputs too big for one call stream through a session (chunk boundaries
are arbitrary; outputs concatenate bit-identically), and whole files
scan out of core with resumable checkpoints::

    session = repro.open_session(order=2)
    parts = [session.feed(chunk) for chunk in chunks]
    repro.scan_file("huge.bin", "out.bin", dtype="int64",
                    checkpoint="job.ckpt", resume=True)

For the simulated-GPU engines (SAM, the baselines, traffic counters)::

    from repro.core import SamScan
    from repro.gpusim import TITAN_X
    result = SamScan(spec=TITAN_X).run(a, order=2)
    result.values, result.stats.global_words_total
"""

from repro.api import (
    ENGINE_NAMES,
    connect,
    delta_decode,
    delta_encode,
    explain,
    open_session,
    prefix_sum,
    resolve_engine,
    scan,
    scan_file,
)

__version__ = "1.0.0"

__all__ = [
    "ENGINE_NAMES",
    "connect",
    "delta_decode",
    "delta_encode",
    "explain",
    "open_session",
    "prefix_sum",
    "resolve_engine",
    "scan",
    "scan_file",
    "__version__",
]
