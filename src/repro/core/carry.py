"""Inter-block carry propagation.

This module implements the paper's third contribution: "a latency-hiding
technique for propagating carries between dependent persistent thread
blocks that only requires a constant amount of auxiliary memory"
(Section 2.2), plus the *chained* scheme it is ablated against
(Section 5.4).

Shared machinery — :class:`AuxBuffers`:

* One circular *sum* buffer per order, each holding ``tuple_size``
  values per slot ("SAM employs a total of s sum arrays" / "one per
  order", Sections 2.3-2.4).
* One *count* buffer of ready flags.  For order 1 the counts behave as
  booleans; for higher orders the count says which iterations' sums a
  chunk has published ("the ready flags no longer hold Boolean values
  but a count", Section 2.4) — so a single flag array serves every
  order.
* Capacity is the paper's "a little over 3k elements ... to make their
  size a power of two".  Because slots are reused across buffer
  generations, flag values additionally encode the generation; readers
  detect (and loudly report) a buffer overrun instead of silently
  consuming stale sums.

Carry schemes (both are generator functions so they can ``yield``
control to the scheduler while polling):

* :func:`decoupled_carry` — SAM's scheme.  Publish the chunk's *local*
  sum immediately (write), then independently read the up-to-``k-1``
  predecessor sums and the block's own running total.  Extra additions
  are traded for a short, schedule-tolerant critical path.
* :func:`chained_carry` — the baseline.  Wait for the predecessor
  chunk's *inclusive running total*, add the local sum, publish.  O(n)
  total work but a read-modify-write chain through every chunk.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.gpusim.errors import SimulationError
from repro.gpusim.memory import GlobalArray, GlobalMemory
from repro.ops import AssociativeOp


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= value (buffer sizing rule)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return 1 << (value - 1).bit_length()


def predecessors(chunk_index: int, k: int) -> range:
    """Chunks whose sums must be read before correcting ``chunk_index``.

    For the first chunk a block touches (``chunk_index < k``) these are
    every earlier chunk; afterwards only the ``k-1`` intervening chunks
    (the block's own previous total is carried in registers —
    Section 2.2's incremental update, Figure 2).
    """
    if chunk_index < k:
        return range(0, chunk_index)
    return range(chunk_index - k + 1, chunk_index)


class AuxBuffers:
    """The O(1) auxiliary state shared by all persistent blocks."""

    def __init__(
        self,
        gmem: GlobalMemory,
        k: int,
        order: int,
        tuple_size: int,
        dtype,
        buffer_factor: int = 3,
        name_prefix: str = "sam",
    ):
        if buffer_factor < 3:
            raise ValueError(
                f"buffer_factor must be >= 3 (paper: 'circular buffers with 3k "
                f"elements'), got {buffer_factor}"
            )
        self.gmem = gmem
        self.k = k
        self.order = order
        self.tuple_size = tuple_size
        self.capacity = next_power_of_two(buffer_factor * k + 1)
        self.flags: GlobalArray = gmem.alloc(
            f"{name_prefix}_flags", self.capacity, np.int64, fill=0
        )
        self.sums = [
            gmem.alloc(f"{name_prefix}_sums_{it}", self.capacity * tuple_size, dtype)
            for it in range(order)
        ]

    def slot(self, chunk_index: int) -> int:
        return chunk_index % self.capacity

    def generation(self, chunk_index: int) -> int:
        return chunk_index // self.capacity

    def flag_target(self, chunk_index: int, iteration: int) -> int:
        """Flag value published when ``chunk_index`` finishes ``iteration``.

        Strictly increasing across iterations and buffer generations,
        so one comparison answers "has at least this much happened".
        """
        return self.generation(chunk_index) * self.order + iteration + 1

    def publish(self, chunk_index: int, iteration: int, sums: np.ndarray) -> None:
        """Write this chunk's per-lane sums, fence, then raise the flag.

        The fence-between-sum-and-flag ordering is the correctness core
        of the protocol (Section 2.2: "executes a memory fence, and then
        writes a ready flag").
        """
        sums = np.asarray(sums)
        if sums.shape != (self.tuple_size,):
            raise ValueError(
                f"expected {self.tuple_size} lane sums, got shape {sums.shape}"
            )
        base = self.slot(chunk_index) * self.tuple_size
        self.gmem.store(
            self.sums[iteration], base + np.arange(self.tuple_size), sums
        )
        self.gmem.fence()
        self.gmem.store_scalar(
            self.flags, self.slot(chunk_index), self.flag_target(chunk_index, iteration)
        )

    def poll(self, chunk_indices: Sequence[int], iteration: int) -> np.ndarray:
        """One polling round over the given chunks' flags.

        Returns the readiness vector.  Raises :class:`SimulationError`
        if a flag shows a *later* buffer generation, i.e. the circular
        buffer was overrun and the sums are gone.
        """
        chunk_indices = np.asarray(list(chunk_indices), dtype=np.int64)
        slots = chunk_indices % self.capacity
        values = self.gmem.load(self.flags, slots)
        targets = np.asarray(
            [self.flag_target(int(c), iteration) for c in chunk_indices]
        )
        limits = np.asarray(
            [(self.generation(int(c)) + 1) * self.order for c in chunk_indices]
        )
        if np.any(values > limits):
            overrun = chunk_indices[values > limits]
            raise SimulationError(
                f"auxiliary circular buffer overrun: sums for chunks "
                f"{overrun.tolist()} were overwritten before being consumed "
                f"(capacity {self.capacity}, k {self.k})"
            )
        ready = values >= targets
        self.gmem.stats.flag_polls += len(chunk_indices)
        self.gmem.stats.failed_flag_polls += int(np.count_nonzero(~ready))
        return ready

    def read_sums(self, chunk_indices: Sequence[int], iteration: int) -> np.ndarray:
        """Read per-lane sums of already-ready chunks.

        The reads are issued as one coalesced gather (the paper reads
        "the up to k-1 local sums ... in parallel using coalesced load
        instructions").  Shape: ``(len(chunk_indices), tuple_size)``.
        """
        chunk_indices = np.asarray(list(chunk_indices), dtype=np.int64)
        slots = chunk_indices % self.capacity
        indices = (slots[:, None] * self.tuple_size + np.arange(self.tuple_size)).ravel()
        flat = self.gmem.load(self.sums[iteration], indices)
        return flat.reshape(len(chunk_indices), self.tuple_size)


def _wait_for(aux: AuxBuffers, chunks: Sequence[int], iteration: int):
    """Poll until every chunk in ``chunks`` has published ``iteration``.

    Only not-yet-ready flags are re-polled ("only non-ready flags are
    polled until they are ready", Section 2.2); the generator yields to
    the scheduler between rounds.
    """
    pending = list(chunks)
    while pending:
        ready = aux.poll(pending, iteration)
        pending = [chunk for chunk, ok in zip(pending, ready) if not ok]
        if pending:
            yield


def _reduce_rows_in_order(
    base: np.ndarray, rows: np.ndarray, op: AssociativeOp
) -> np.ndarray:
    """Fold predecessor sums onto ``base`` in ascending chunk order.

    Order matters for non-commutative operators; associativity is the
    only property assumed.
    """
    carry = base
    for row in rows:
        carry = op.apply(carry, row)
    return carry


def decoupled_carry(
    aux: AuxBuffers,
    op: AssociativeOp,
    chunk_index: int,
    iteration: int,
    local_sums: np.ndarray,
    state: Dict,
):
    """SAM's write-followed-by-independent-reads carry computation.

    Publishes first, then gathers predecessors, so no block ever sits in
    another block's critical path longer than one local-sum computation.
    Returns the per-lane carry for ``chunk_index`` at ``iteration``; the
    block's running totals live in ``state['acc']`` (shape
    ``(order, tuple_size)``).
    """
    aux.publish(chunk_index, iteration, local_sums)
    preds = predecessors(chunk_index, aux.k)
    yield from _wait_for(aux, preds, iteration)
    if chunk_index < aux.k:
        identity = op.identity(local_sums.dtype)
        base = np.full(aux.tuple_size, identity, dtype=local_sums.dtype)
    else:
        # Copy: with k == 1 there are no predecessors, so ``base`` would
        # be returned as the carry while still aliasing the accumulator
        # row that is updated in place below.
        base = state["acc"][iteration].copy()
    if len(preds):
        rows = aux.read_sums(preds, iteration)
        carry = _reduce_rows_in_order(base, rows, op)
        aux.gmem.stats.carry_additions += rows.size
    else:
        carry = base
    state["acc"][iteration] = op.apply(carry, local_sums)
    aux.gmem.stats.carry_additions += local_sums.size
    return carry


def chained_carry(
    aux: AuxBuffers,
    op: AssociativeOp,
    chunk_index: int,
    iteration: int,
    local_sums: np.ndarray,
    state: Dict,
):
    """The §5.4 baseline: a read-modify-write chain through all chunks.

    Each chunk publishes its *inclusive running total*; its successor
    needs only that one value but cannot publish its own until it has
    arrived — the serial dependence SAM's scheme removes.
    """
    if chunk_index == 0:
        identity = op.identity(local_sums.dtype)
        prev_total = np.full(aux.tuple_size, identity, dtype=local_sums.dtype)
    else:
        yield from _wait_for(aux, [chunk_index - 1], iteration)
        prev_total = aux.read_sums([chunk_index - 1], iteration)[0]
    total = op.apply(prev_total, local_sums)
    aux.gmem.stats.carry_additions += local_sums.size
    aux.publish(chunk_index, iteration, total)
    return prev_total


#: Carry schemes addressable by name in configs and benchmarks.
CARRY_SCHEMES = {
    "decoupled": decoupled_carry,
    "chained": chained_carry,
}
