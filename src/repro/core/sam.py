"""SAM on the GPU simulator: the paper's unified scan kernel.

One kernel (``SamScan.run``) supports, in any combination —

* any binary associative operator (prefix *scans*),
* inclusive and exclusive variants,
* any order ``q`` (Section 2.4: iterate only the computation stage;
  global traffic stays at one read + one write per element),
* any tuple size ``s`` (Section 2.3: strided summation with ``s`` sum
  buffers; register use and coalescing independent of ``s``),
* both carry-propagation schemes (decoupled = SAM, chained = §5.4's
  ablation baseline),

mirroring the paper's "single templated CUDA kernel with 100
statements" in spirit: the kernel body below is one generator function.

Execution follows the persistent-block model: ``k`` blocks are
launched, block ``b`` processes chunks ``b, b+k, b+2k, ...``, and each
chunk is read from global memory once and written once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.carry import CARRY_SCHEMES, AuxBuffers
from repro.core.localscan import (
    apply_lane_carries,
    lane_totals,
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
    warp_faithful_chunk_scan,
    warp_faithful_strided_chunk_scan,
)
from repro.core.tuning import tune_items_per_thread
from repro.gpusim.counters import TrafficStats
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.cache import L2Cache
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X, GPUSpec
from repro.ops import ADD, get_op

#: Block-local scan engines.  "vector" computes each tuple lane's scan
#: with vectorized slices; "warp" replays the Section 2.1/2.3 shuffle
#: and shared-memory mechanics instruction by instruction (including
#: the strided warp scans and modulo lane lookups for tuples).
FIDELITIES = ("vector", "warp")


@dataclass
class SamResult:
    """Output of one simulated SAM launch."""

    values: np.ndarray
    stats: TrafficStats
    num_chunks: int
    num_blocks: int
    chunk_elements: int
    order: int
    tuple_size: int
    op_name: str
    inclusive: bool
    carry_scheme: str
    l2: object = None  # the L2Cache model when one was attached

    def words_per_element(self) -> float:
        """Global words moved per input element (the 2n check)."""
        return self.stats.words_per_element(max(1, len(self.values)))


class SamScan:
    """Configured SAM engine bound to a simulated GPU.

    Parameters
    ----------
    spec:
        GPU to simulate (defaults to the Titan X testbed).
    threads_per_block:
        Threads per block ``t`` (defaults to the spec's value; smaller
        values make fine-grained tests cheap).
    items_per_thread:
        Elements per thread ``v``; ``None`` applies the auto-tuning
        heuristic per problem size.
    carry_scheme:
        ``"decoupled"`` (SAM) or ``"chained"`` (§5.4 baseline).
    policy:
        Block schedule policy (see :mod:`repro.gpusim.scheduler`);
        results must be identical under every policy.
    fidelity:
        Block-local scan engine, see :data:`FIDELITIES`.
    buffer_factor:
        Auxiliary circular buffers hold
        ``next_pow2(buffer_factor * k + 1)`` slots; the paper uses 3.
    num_blocks:
        Override for the persistent-block count ``k`` (tests use small
        values; defaults to the spec's ``m*b`` capped by chunk count).
    l2_bytes:
        Attach an L2 cache model of this capacity (None = no cache
        model); hit/miss counts land in the result stats.
    tracer:
        Optional :class:`repro.gpusim.trace.Tracer`; records per-chunk
        load/publish/wait/carry/store events so the Figure 2 pipeline
        can be rendered from an actual run.
    """

    def __init__(
        self,
        spec: GPUSpec = TITAN_X,
        threads_per_block: Optional[int] = None,
        items_per_thread: Optional[int] = None,
        carry_scheme: str = "decoupled",
        policy="round_robin",
        fidelity: str = "vector",
        buffer_factor: int = 3,
        num_blocks: Optional[int] = None,
        l2_bytes: Optional[int] = None,
        tracer=None,
    ):
        if carry_scheme not in CARRY_SCHEMES:
            raise KeyError(
                f"unknown carry scheme {carry_scheme!r}; "
                f"available: {sorted(CARRY_SCHEMES)}"
            )
        if fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        self.spec = spec
        self.threads_per_block = threads_per_block or spec.threads_per_block
        self.items_per_thread = items_per_thread
        self.carry_scheme = carry_scheme
        self.policy = policy
        self.fidelity = fidelity
        self.buffer_factor = buffer_factor
        self.num_blocks = num_blocks
        self.l2_bytes = l2_bytes
        self.tracer = tracer

    # -- public API ------------------------------------------------------

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> SamResult:
        """Compute the generalized prefix scan of ``values``.

        Returns a :class:`SamResult` whose ``values`` match the serial
        reference bit-for-bit and whose ``stats`` hold the measured
        traffic for this launch.
        """
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if tuple_size < 1:
            raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)

        n = len(array)
        if n == 0:
            return SamResult(
                values=array.copy(),
                stats=TrafficStats(),
                num_chunks=0,
                num_blocks=0,
                chunk_elements=0,
                order=order,
                tuple_size=tuple_size,
                op_name=op.name,
                inclusive=inclusive,
                carry_scheme=self.carry_scheme,
            )

        t = self.threads_per_block
        v = self.items_per_thread or tune_items_per_thread(n, self.spec, t)
        chunk_elements = t * v
        num_chunks = math.ceil(n / chunk_elements)
        k = self.num_blocks or min(self.spec.persistent_blocks, num_chunks)
        k = min(k, num_chunks)

        l2 = L2Cache(self.l2_bytes) if self.l2_bytes else None
        gmem = GlobalMemory(l2=l2)
        d_in = gmem.alloc_like("sam_in", array)
        d_out = gmem.alloc("sam_out", n, dtype)
        aux = AuxBuffers(
            gmem,
            k,
            order,
            tuple_size,
            dtype,
            buffer_factor=self.buffer_factor,
        )
        carry_fn = CARRY_SCHEMES[self.carry_scheme]
        identity = op.identity(dtype)
        fidelity = self.fidelity
        tracer = self.tracer

        def kernel(ctx):
            """One persistent block: Figure 2's pipeline, directly."""
            state = {
                "acc": np.full((order, tuple_size), identity, dtype=dtype),
            }
            for chunk in range(ctx.block_id, num_chunks, ctx.num_blocks):
                start = chunk * chunk_elements
                count = min(chunk_elements, n - start)
                indices = start + np.arange(count)
                data = gmem.load(d_in, indices)
                if tracer is not None:
                    tracer.record(ctx.block_id, chunk, "load")
                for iteration in range(order):
                    if fidelity == "warp" and tuple_size == 1:
                        scanned = warp_faithful_chunk_scan(ctx, data, op)
                        local_sums = scanned[-1:].copy()
                    elif fidelity == "warp":
                        scanned = warp_faithful_strided_chunk_scan(
                            ctx, data, start, tuple_size, op
                        )
                        local_sums = lane_totals(scanned, start, tuple_size, op)
                    else:
                        scanned, local_sums = strided_inclusive_scan(
                            data, start, tuple_size, op
                        )
                    if tracer is not None:
                        tracer.record(ctx.block_id, chunk, "publish")
                        polls_before = gmem.stats.failed_flag_polls
                    carry = yield from carry_fn(
                        aux, op, chunk, iteration, local_sums, state
                    )
                    if tracer is not None:
                        waited = gmem.stats.failed_flag_polls - polls_before
                        if waited:
                            tracer.record(
                                ctx.block_id, chunk, "wait", f"({waited} polls)"
                            )
                        tracer.record(ctx.block_id, chunk, "carry")
                    last = iteration == order - 1
                    if last and not inclusive:
                        data = strided_exclusive_from_inclusive(
                            scanned, start, tuple_size, op, carry
                        )
                    else:
                        data = apply_lane_carries(
                            scanned, start, tuple_size, op, carry
                        )
                gmem.store(d_out, indices, data)
                if tracer is not None:
                    tracer.record(ctx.block_id, chunk, "store")
                # Yield between chunks so the simulated pipeline
                # interleaves the way Figure 2 depicts.
                yield

        launch_kernel(
            kernel,
            self.spec,
            gmem=gmem,
            num_blocks=k,
            threads_per_block=t,
            policy=self.policy,
        )
        return SamResult(
            values=d_out.data.copy(),
            stats=gmem.stats.copy(),
            num_chunks=num_chunks,
            num_blocks=k,
            chunk_elements=chunk_elements,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
            carry_scheme=self.carry_scheme,
            l2=l2,
        )
