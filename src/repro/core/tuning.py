"""Auto-tuning of items per thread (StreamScan-style, Section 3.1).

The paper: "SAM adopts all of these ideas, including the auto-tuner,
which runs when SAM is installed and determines the optimal number of
input elements to allocate to each thread for different ranges of
problem sizes."

Three entry points:

* :func:`tune_items_per_thread` — the default heuristic used when no
  tuning run has happened: give each thread at least one element, grow
  the per-thread count with the problem size (larger chunks mean fewer
  carries to communicate, Section 2.2 enhancement #4), and cap it at
  half the register file (Section 2.5: ``e = t * O(r)`` because some
  registers are needed for computation).
* :class:`AutoTuner` — an actual tuner: measure a user-supplied cost
  function over candidate values for representative sizes and build a
  lookup table of size ranges, exactly like the install-time tuner the
  paper describes.
* :func:`kernel_tuning` — the host-kernel analogue of the paper's
  install-time tuner: the cache-block byte budget, the minimum lane
  stride that takes the blocked path, and the threaded kernel's
  parallel-cutover size are *measured on this machine* at first use
  (the constants committed in PR 5 were measured on one box), cached
  on disk, and overridable per value by environment variable.
"""

from __future__ import annotations

import bisect
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpusim.spec import GPUSpec

#: Candidate per-thread element counts (powers of two up to r/2).
DEFAULT_CANDIDATES = (1, 2, 4, 8, 16)


def tune_items_per_thread(
    n: int, spec: GPUSpec, threads_per_block: Optional[int] = None
) -> int:
    """Default items-per-thread heuristic for an ``n``-element scan."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    t = threads_per_block or spec.threads_per_block
    resident_threads = spec.persistent_blocks * t
    if resident_threads <= 0:
        raise ValueError("spec yields no resident threads")
    per_thread = max(1, n // resident_threads)
    cap = max(1, int(spec.registers_per_thread) // 2)
    chosen = DEFAULT_CANDIDATES[0]
    for candidate in DEFAULT_CANDIDATES:
        if candidate > cap:
            break
        chosen = candidate
        if candidate >= per_thread:
            break
    return chosen


class AutoTuner:
    """Build an items-per-thread table by measuring a cost function.

    Parameters
    ----------
    cost_fn:
        ``(n, items_per_thread) -> float``; lower is better.  Wall-clock
        time of a host run, simulated traffic, or the analytic model's
        predicted time all work.
    candidates:
        Items-per-thread values to try.
    repeats:
        Cost evaluations per point (the minimum is kept, the standard
        defense against timing noise).
    """

    def __init__(
        self,
        cost_fn: Callable[[int, int], float],
        candidates: Sequence[int] = DEFAULT_CANDIDATES,
        repeats: int = 1,
    ):
        if not candidates:
            raise ValueError("need at least one candidate")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.cost_fn = cost_fn
        self.candidates = tuple(candidates)
        self.repeats = repeats
        self._breakpoints: List[int] = []
        self._choices: List[int] = []

    def tune(self, sizes: Sequence[int]) -> Dict[int, int]:
        """Measure every candidate at every size; build the lookup table.

        Returns the raw ``{size: best_candidate}`` measurements (useful
        for reports); the table itself is stored for :meth:`lookup`.
        """
        best: Dict[int, int] = {}
        for n in sorted(sizes):
            scores: List[Tuple[float, int]] = []
            for candidate in self.candidates:
                cost = min(
                    self.cost_fn(n, candidate) for _ in range(self.repeats)
                )
                scores.append((cost, candidate))
            best[n] = min(scores)[1]
        self._breakpoints = sorted(best)
        self._choices = [best[n] for n in self._breakpoints]
        return best

    def lookup(self, n: int) -> int:
        """Items per thread for problem size ``n`` from the tuned table.

        Sizes between measured points use the nearest measured size at
        or above ``n`` (ranges are right-closed); sizes beyond the table
        use the largest measurement.
        """
        if not self._breakpoints:
            raise RuntimeError("AutoTuner.lookup called before tune()")
        index = bisect.bisect_left(self._breakpoints, n)
        if index == len(self._breakpoints):
            index -= 1
        return self._choices[index]


def wall_clock_cost(run: Callable[[], None]) -> float:
    """Helper: wall-clock seconds of one call (for host-engine tuning)."""
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


# -- host-kernel geometry tuning -----------------------------------------
#
# ``repro.kernels.lane`` needs three machine-dependent numbers:
#
# * ``block_bytes`` — the row-block byte budget of the cache-blocked
#   wide-stride integer path (one block should fit in a core's private
#   cache together with the source rows),
# * ``min_stride_bytes`` — the narrowest lane stride for which the
#   blocked path beats the plain single-call accumulate,
# * ``parallel_cutover_bytes`` — the smallest buffer for which the
#   threaded kernel's dispatch/splice overhead is worth paying.
#
# PR 5 committed one-box constants; this tuner measures them per dtype
# the first time a process asks, persists the result to a small JSON
# cache so later processes skip the measurement, and honors environment
# overrides for reproducible runs:
#
# * ``REPRO_TUNE_DISABLE=1`` — skip measuring, use the built-in defaults
#   (plus any per-value overrides below),
# * ``REPRO_TUNE_CACHE=path`` — cache file location,
# * ``REPRO_BLOCK_BYTES`` / ``REPRO_BLOCKED_MIN_STRIDE_BYTES`` /
#   ``REPRO_PARALLEL_CUTOVER_BYTES`` — pin individual values.

#: Fallback geometry (the PR 5 one-box constants) used when tuning is
#: disabled, the measurement fails, or a dtype has no blocked path.
DEFAULT_BLOCK_BYTES = 128 << 10
DEFAULT_BLOCKED_MIN_STRIDE_BYTES = 64
DEFAULT_PARALLEL_CUTOVER_BYTES = 4 << 20

#: Candidate row-block budgets: from half an L1 up to typical L2 sizes.
BLOCK_BYTES_CANDIDATES = (32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10)

#: Candidate minimum lane strides for the blocked path (bytes).
MIN_STRIDE_CANDIDATES = (32, 64, 128)

_TUNING_CACHE_VERSION = 1


@dataclass(frozen=True)
class KernelTuning:
    """Machine-tuned kernel geometry for one dtype.

    ``source`` records where the numbers came from — ``"measured"``,
    ``"cached"``, ``"default"``, or ``"env"`` — so benchmarks can report
    what they actually ran with.
    """

    block_bytes: int = DEFAULT_BLOCK_BYTES
    min_stride_bytes: int = DEFAULT_BLOCKED_MIN_STRIDE_BYTES
    parallel_cutover_bytes: int = DEFAULT_PARALLEL_CUTOVER_BYTES
    source: str = "default"


def _tuning_cache_path() -> str:
    override = os.environ.get("REPRO_TUNE_CACHE")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "kernel_tuning.json")


def tuning_cache_dir() -> str:
    """The directory holding this machine's measured-tuning artifacts.

    The kernel-tuning cache lives here, and sibling subsystems persist
    their own measurements alongside it — :mod:`repro.plan` keeps the
    planner's empirical throughput calibration
    (``planner_calibration.json``) in the same place, so one directory
    is the whole "what we have measured about this machine" state.
    """
    return os.path.dirname(_tuning_cache_path()) or "."


def _dtype_key(dtype: np.dtype) -> str:
    return f"{dtype.kind}{dtype.itemsize}"


def _best_of(fn: Callable[[], None], repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _blocked_accumulate_seconds(src, out, block_bytes: int) -> float:
    """Time one cache-blocked 2-D accumulate (the lane kernel's inner
    loop shape, reproduced here with plain numpy to avoid importing
    :mod:`repro.kernels` from its own tuner)."""
    m, s = src.shape
    stride = s * src.dtype.itemsize
    rows = max(1, block_bytes // stride)

    def run():
        prev = None
        for i in range(0, m, rows):
            blk = out[i : i + rows]
            np.add.accumulate(src[i : i + rows], axis=0, out=blk)
            if prev is not None:
                np.add(prev, blk, out=blk)
            prev = blk[-1]

    return _best_of(run)


def measure_kernel_tuning(dtype) -> KernelTuning:
    """Measure the kernel geometry for ``dtype`` on this machine.

    Costs a few tens of milliseconds; callers should go through
    :func:`kernel_tuning`, which memoizes and disk-caches the result.
    """
    dtype = np.dtype(dtype)
    itemsize = dtype.itemsize
    budget_bytes = 2 << 20  # small enough to be quick, big enough to time

    # Throughput probe (any dtype): one contiguous accumulate.
    flat = np.ones(budget_bytes // itemsize, dtype=dtype)
    flat_out = np.empty_like(flat)
    flat_seconds = _best_of(lambda: np.add.accumulate(flat, out=flat_out))
    bytes_per_second = flat.nbytes / max(flat_seconds, 1e-9)

    block_bytes = DEFAULT_BLOCK_BYTES
    min_stride_bytes = DEFAULT_BLOCKED_MIN_STRIDE_BYTES
    if dtype.kind in "iu":
        # Block budget: wide-stride matrix, best candidate wins.
        s = max(1, 256 // itemsize)
        m = max(2, budget_bytes // (s * itemsize))
        src = np.ones((m, s), dtype=dtype)
        out = np.empty_like(src)
        scores = [
            (_blocked_accumulate_seconds(src, out, candidate), candidate)
            for candidate in BLOCK_BYTES_CANDIDATES
        ]
        block_bytes = min(scores)[1]

        # Narrowest stride where the blocked path still wins.
        min_stride_bytes = MIN_STRIDE_CANDIDATES[-1] * 2
        for stride in sorted(MIN_STRIDE_CANDIDATES):
            s2 = max(1, stride // itemsize)
            m2 = max(2, budget_bytes // (s2 * itemsize))
            src2 = np.ones((m2, s2), dtype=dtype)
            out2 = np.empty_like(src2)
            plain = _best_of(
                lambda: np.add.accumulate(src2, axis=0, out=out2)
            )
            blocked = _blocked_accumulate_seconds(src2, out2, block_bytes)
            if blocked < plain:
                min_stride_bytes = stride
                break

    # Parallel cutover: the threaded kernel pays ~2 dispatch barriers
    # of pool overhead; demand the serial scan time dwarf it so slab
    # parallelism has something to win.
    from concurrent.futures import ThreadPoolExecutor

    pool = ThreadPoolExecutor(max_workers=2)
    try:
        pool.submit(lambda: None).result()  # exclude thread spawn cost
        dispatch = _best_of(
            lambda: [f.result() for f in [pool.submit(lambda: None) for _ in range(8)]]
        ) / 8.0
    finally:
        pool.shutdown(wait=False)
    cutover = int(32 * dispatch * bytes_per_second)
    cutover = max(1 << 20, min(32 << 20, cutover))

    return KernelTuning(
        block_bytes=int(block_bytes),
        min_stride_bytes=int(min_stride_bytes),
        parallel_cutover_bytes=int(cutover),
        source="measured",
    )


def _load_tuning_cache(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if data.get("version") != _TUNING_CACHE_VERSION:
        return {}
    entries = data.get("entries")
    return entries if isinstance(entries, dict) else {}


def _store_tuning_cache(path: str, entries: dict) -> None:
    payload = {"version": _TUNING_CACHE_VERSION, "entries": entries}
    try:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        os.replace(tmp, path)
    except OSError:
        pass  # the cache is an optimization; tuning still works per process


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _apply_env_overrides(tuning: KernelTuning) -> KernelTuning:
    block = _env_int("REPRO_BLOCK_BYTES")
    stride = _env_int("REPRO_BLOCKED_MIN_STRIDE_BYTES")
    cutover = _env_int("REPRO_PARALLEL_CUTOVER_BYTES")
    if block is None and stride is None and cutover is None:
        return tuning
    return KernelTuning(
        block_bytes=block if block is not None else tuning.block_bytes,
        min_stride_bytes=stride if stride is not None else tuning.min_stride_bytes,
        parallel_cutover_bytes=(
            cutover if cutover is not None else tuning.parallel_cutover_bytes
        ),
        source="env",
    )


_KERNEL_TUNING_MEMO: Dict[str, KernelTuning] = {}


def kernel_tuning(dtype, *, refresh: bool = False) -> KernelTuning:
    """The tuned kernel geometry for ``dtype`` (measured at first use).

    Resolution order: per-value environment overrides always win; with
    ``REPRO_TUNE_DISABLE=1`` the remaining values are the built-in
    defaults; otherwise the disk cache is consulted and a miss triggers
    a one-time measurement that is memoized and written back (best
    effort — an unwritable cache just re-measures per process).
    ``refresh=True`` forces a re-measurement.
    """
    dtype = np.dtype(dtype)
    key = _dtype_key(dtype)
    if not refresh and key in _KERNEL_TUNING_MEMO:
        return _KERNEL_TUNING_MEMO[key]

    if os.environ.get("REPRO_TUNE_DISABLE"):
        tuning = _apply_env_overrides(KernelTuning())
        _KERNEL_TUNING_MEMO[key] = tuning
        return tuning

    path = _tuning_cache_path()
    entries = _load_tuning_cache(path)
    cached = entries.get(key)
    if cached is not None and not refresh:
        try:
            tuning = KernelTuning(
                block_bytes=int(cached["block_bytes"]),
                min_stride_bytes=int(cached["min_stride_bytes"]),
                parallel_cutover_bytes=int(cached["parallel_cutover_bytes"]),
                source="cached",
            )
        except (KeyError, TypeError, ValueError):
            cached = None
        else:
            tuning = _apply_env_overrides(tuning)
            _KERNEL_TUNING_MEMO[key] = tuning
            return tuning

    measured = measure_kernel_tuning(dtype)
    entry = asdict(measured)
    entry.pop("source", None)
    entries[key] = entry
    _store_tuning_cache(path, entries)
    tuning = _apply_env_overrides(measured)
    _KERNEL_TUNING_MEMO[key] = tuning
    return tuning
