"""Auto-tuning of items per thread (StreamScan-style, Section 3.1).

The paper: "SAM adopts all of these ideas, including the auto-tuner,
which runs when SAM is installed and determines the optimal number of
input elements to allocate to each thread for different ranges of
problem sizes."

Two entry points:

* :func:`tune_items_per_thread` — the default heuristic used when no
  tuning run has happened: give each thread at least one element, grow
  the per-thread count with the problem size (larger chunks mean fewer
  carries to communicate, Section 2.2 enhancement #4), and cap it at
  half the register file (Section 2.5: ``e = t * O(r)`` because some
  registers are needed for computation).
* :class:`AutoTuner` — an actual tuner: measure a user-supplied cost
  function over candidate values for representative sizes and build a
  lookup table of size ranges, exactly like the install-time tuner the
  paper describes.
"""

from __future__ import annotations

import bisect
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gpusim.spec import GPUSpec

#: Candidate per-thread element counts (powers of two up to r/2).
DEFAULT_CANDIDATES = (1, 2, 4, 8, 16)


def tune_items_per_thread(
    n: int, spec: GPUSpec, threads_per_block: Optional[int] = None
) -> int:
    """Default items-per-thread heuristic for an ``n``-element scan."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    t = threads_per_block or spec.threads_per_block
    resident_threads = spec.persistent_blocks * t
    if resident_threads <= 0:
        raise ValueError("spec yields no resident threads")
    per_thread = max(1, n // resident_threads)
    cap = max(1, int(spec.registers_per_thread) // 2)
    chosen = DEFAULT_CANDIDATES[0]
    for candidate in DEFAULT_CANDIDATES:
        if candidate > cap:
            break
        chosen = candidate
        if candidate >= per_thread:
            break
    return chosen


class AutoTuner:
    """Build an items-per-thread table by measuring a cost function.

    Parameters
    ----------
    cost_fn:
        ``(n, items_per_thread) -> float``; lower is better.  Wall-clock
        time of a host run, simulated traffic, or the analytic model's
        predicted time all work.
    candidates:
        Items-per-thread values to try.
    repeats:
        Cost evaluations per point (the minimum is kept, the standard
        defense against timing noise).
    """

    def __init__(
        self,
        cost_fn: Callable[[int, int], float],
        candidates: Sequence[int] = DEFAULT_CANDIDATES,
        repeats: int = 1,
    ):
        if not candidates:
            raise ValueError("need at least one candidate")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.cost_fn = cost_fn
        self.candidates = tuple(candidates)
        self.repeats = repeats
        self._breakpoints: List[int] = []
        self._choices: List[int] = []

    def tune(self, sizes: Sequence[int]) -> Dict[int, int]:
        """Measure every candidate at every size; build the lookup table.

        Returns the raw ``{size: best_candidate}`` measurements (useful
        for reports); the table itself is stored for :meth:`lookup`.
        """
        best: Dict[int, int] = {}
        for n in sorted(sizes):
            scores: List[Tuple[float, int]] = []
            for candidate in self.candidates:
                cost = min(
                    self.cost_fn(n, candidate) for _ in range(self.repeats)
                )
                scores.append((cost, candidate))
            best[n] = min(scores)[1]
        self._breakpoints = sorted(best)
        self._choices = [best[n] for n in self._breakpoints]
        return best

    def lookup(self, n: int) -> int:
        """Items per thread for problem size ``n`` from the tuned table.

        Sizes between measured points use the nearest measured size at
        or above ``n`` (ranges are right-closed); sizes beyond the table
        use the largest measurement.
        """
        if not self._breakpoints:
            raise RuntimeError("AutoTuner.lookup called before tune()")
        index = bisect.bisect_left(self._breakpoints, n)
        if index == len(self._breakpoints):
            index -= 1
        return self._choices[index]


def wall_clock_cost(run: Callable[[], None]) -> float:
    """Helper: wall-clock seconds of one call (for host-engine tuning)."""
    start = time.perf_counter()
    run()
    return time.perf_counter() - start
