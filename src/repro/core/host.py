"""Fast vectorized host implementations of the generalized scans.

This is the library most downstream users call: plain numpy, no
simulation, same semantics as SAM bit-for-bit.  The simulator engines
exist to reproduce the paper's *system*; these functions exist to make
the paper's *math* fast on a CPU.

All functions accept the order / tuple-size / operator generalizations
and agree exactly with :mod:`repro.reference` (enforced by tests).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import scan_into, threaded_scan_into
from repro.ops import ADD, get_op


def _validate(values, order: int, tuple_size: int) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {array.shape}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if tuple_size < 1:
        raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
    return array


def host_scan(
    values, op=ADD, tuple_size: int = 1, inclusive: bool = True, threads=None
):
    """One generalized scan pass (all tuple lanes in one kernel call).

    Delegates to :func:`repro.kernels.lane_scan` — the 2-D lane-block
    kernel every engine shares — and, for exclusive output, applies one
    vectorized identity-seeded shift over the whole array instead of a
    per-lane shift loop.  ``threads`` (an int or ``"auto"``) routes the
    pass through the slab-parallel kernel
    (:func:`repro.kernels.threaded_scan_into`): bit-identical for every
    dtype — floats keep the exact serial passes there by default.
    """
    op = get_op(op)
    array = _validate(values, 1, tuple_size)
    dtype = op.check_dtype(array.dtype)
    array = array.astype(dtype, copy=False)
    if array.size == 0:
        return array.copy()
    if threads is not None:
        return threaded_scan_into(
            array,
            np.empty_like(array),
            op,
            order=1,
            tuple_size=tuple_size,
            inclusive=inclusive,
            threads=None if threads in ("auto", 0) else threads,
        )
    return scan_into(
        array,
        np.empty_like(array),
        op,
        order=1,
        tuple_size=tuple_size,
        inclusive=inclusive,
    )


def host_prefix_sum(
    values,
    order: int = 1,
    tuple_size: int = 1,
    op=ADD,
    inclusive: bool = True,
    threads=None,
):
    """Order-``q``, tuple-``s`` prefix scan: ``q`` vectorized passes.

    Matches Section 2.4's iterative formulation.  All ``q`` passes run
    through one output buffer — pass 1 scans the input into it, later
    passes rescan it in place — and the exclusive shift happens on the
    final pass only (Section 2.4's observation that only the last
    iteration differs).  ``threads`` works as in :func:`host_scan`:
    each of the ``q`` passes becomes slab-parallel, still bit-identical.
    """
    op = get_op(op)
    array = _validate(values, order, tuple_size)
    dtype = op.check_dtype(array.dtype)
    array = array.astype(dtype, copy=False)
    if array.size == 0:
        return array.copy()
    if threads is not None:
        return threaded_scan_into(
            array,
            np.empty_like(array),
            op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            threads=None if threads in ("auto", 0) else threads,
        )
    return scan_into(
        array,
        np.empty_like(array),
        op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
    )


def host_delta_encode(values, order: int = 1, tuple_size: int = 1):
    """Order-``q``, tuple-``s`` delta encoding, vectorized.

    Each pass subtracts the lane predecessor (``in[k] - in[k - s]``)
    with wraparound; the inverse of :func:`host_delta_decode`.
    """
    array = _validate(values, order, tuple_size)
    if array.dtype.kind not in "iuf":
        raise TypeError(f"delta encoding needs a numeric dtype, got {array.dtype}")
    out = array.copy()
    for _ in range(order):
        shifted = np.zeros_like(out)
        if len(out) > tuple_size:
            shifted[tuple_size:] = out[:-tuple_size]
        with np.errstate(over="ignore"):
            out = (out - shifted).astype(array.dtype)
    return out


def host_delta_decode(deltas, order: int = 1, tuple_size: int = 1):
    """Decode a difference sequence: the generalized prefix sum."""
    return host_prefix_sum(deltas, order=order, tuple_size=tuple_size, op=ADD)
