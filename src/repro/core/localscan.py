"""Block-local scans: the computation stage SAM iterates.

Two engines compute the same function:

* :func:`strided_inclusive_scan` — the production path.  It implements
  Section 2.3's strided summation: element ``i`` of a chunk whose first
  element sits at global offset ``g`` belongs to tuple lane
  ``(g + i) mod s``, and each lane is scanned independently.  The heavy
  lifting is delegated to :mod:`repro.kernels`' 2-D lane-block kernel,
  which scans all ``s`` lanes in one vectorized call.

* :func:`warp_faithful_chunk_scan` — the instruction-faithful path for
  ``s = 1``.  It reproduces Section 2.1's hierarchy exactly: per-warp
  shuffle scans, a shared auxiliary array of warp totals scanned by one
  warp, two barriers, and per-warp carry addition; chunks larger than a
  block are processed tile by tile with a running register carry.  Tests
  require both engines to agree, which pins the vectorized path to the
  hardware algorithm.

Both return the per-lane *local sums* (the chunk totals per tuple lane)
that the carry-propagation protocol publishes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import kernels
from repro.gpusim.block import BlockContext
from repro.ops import AssociativeOp


def lane_of(global_index, tuple_size: int):
    """Tuple lane of a global element index (Section 1: the m-th sum
    covers positions ``m + j*s``)."""
    return global_index % tuple_size


def lane_start_in_chunk(offset: int, lane: int, tuple_size: int) -> int:
    """Chunk-local index of the first element belonging to ``lane`` in a
    chunk whose first element has global index ``offset``."""
    return (lane - offset) % tuple_size


def strided_inclusive_scan(
    values: np.ndarray,
    offset: int,
    tuple_size: int,
    op: AssociativeOp,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scan a chunk with stride ``tuple_size``; also return lane totals.

    Parameters
    ----------
    values:
        The chunk's elements (any length, including shorter final
        chunks and lengths not divisible by the tuple size).
    offset:
        Global index of ``values[0]`` — determines the lane phase, the
        detail that makes non-power-of-two sizes "the biggest hurdle"
        (Section 2.3).

    Returns
    -------
    scanned:
        Lane-local inclusive scan of the chunk (no inter-chunk carry).
    local_sums:
        Array of length ``tuple_size``; entry ``l`` is the chunk total
        of lane ``l``, or the operator identity when the chunk contains
        no element of that lane.
    """
    values = np.asarray(values)
    op.check_dtype(values.dtype)
    scanned = kernels.lane_scan(values, op, tuple_size, out=np.empty_like(values))
    local_sums = kernels.lane_totals(scanned, op, tuple_size, pos=offset)
    return scanned, local_sums


def strided_exclusive_from_inclusive(
    inclusive: np.ndarray,
    offset: int,
    tuple_size: int,
    op: AssociativeOp,
    carries: np.ndarray,
) -> np.ndarray:
    """Build the carry-corrected *exclusive* chunk from the lane-local
    inclusive scan: each lane shifts right by one and seeds with the
    lane's carry.  Costs no extra memory traffic (Section 2.2's
    correction step, exclusive flavor)."""
    folded = np.array(inclusive, copy=True)
    kernels.fold_lanes(folded, op, carries, pos=offset, tuple_size=tuple_size)
    heads = carries[kernels.phase_perm(offset, tuple_size)]
    return kernels.exclusive_shift(folded, heads)


def apply_lane_carries(
    scanned: np.ndarray,
    offset: int,
    tuple_size: int,
    op: AssociativeOp,
    carries: np.ndarray,
) -> np.ndarray:
    """Combine each lane's inter-chunk carry into the lane-local scan
    ("Add Resulting Carry i to all Values of Chunk i", Figure 1)."""
    out = np.array(scanned, copy=True)
    kernels.fold_lanes(out, op, carries, pos=offset, tuple_size=tuple_size)
    return out


def lane_totals(
    scanned: np.ndarray, offset: int, tuple_size: int, op: AssociativeOp
) -> np.ndarray:
    """Per-tuple-lane totals of a lane-locally scanned chunk (the last
    scanned element of each lane; identity for absent lanes)."""
    return kernels.lane_totals(scanned, op, tuple_size, pos=offset)


def warp_faithful_strided_chunk_scan(
    ctx: BlockContext,
    values: np.ndarray,
    offset: int,
    tuple_size: int,
    op: AssociativeOp,
) -> np.ndarray:
    """Instruction-level *strided* chunk scan (Section 2.3's mechanics).

    The tuple generalization at warp granularity: each warp runs a
    strided Kogge-Stone scan (ladder starting at ``stride = s``); each
    warp publishes one total per tuple lane to a shared auxiliary array
    of ``num_warps * s`` entries; after a barrier the per-lane warp
    totals are scanned and folded back; tiles are linked by per-lane
    register carries.  "Modulo operations are employed to determine
    which sum each thread needs to use" — the residue math below is
    exactly that.
    """
    from repro.gpusim.warp import WARP_SIZE

    values = np.asarray(values)
    dtype = op.check_dtype(values.dtype)
    identity = op.identity(dtype)
    s = tuple_size
    if s == 1:
        return warp_faithful_chunk_scan(ctx, values, op)
    t = ctx.threads_per_block
    num_warps = ctx.num_warps
    aux = ctx.shared.alloc_or_get("_strided_scan_aux", num_warps * s, dtype)
    out = np.empty_like(values)
    # Per-tuple-lane running carry across tiles (lives in registers).
    carries = np.full(s, identity, dtype=dtype)

    for tile_start in range(0, len(values), t):
        tile = values[tile_start : tile_start + t]
        padded = np.full(t, identity, dtype=dtype)
        padded[: len(tile)] = tile
        tile_offset = offset + tile_start
        scanned = np.empty(t, dtype=dtype)

        # Phase 1: independent strided warp scans; publish per-lane
        # totals (the *last* element of each residue class in the warp).
        for w in range(num_warps):
            lane_positions = tile_offset + w * WARP_SIZE + np.arange(WARP_SIZE)
            residues = lane_positions % s
            warp_scan = ctx.warp(w).strided_inclusive_scan(
                padded[w * WARP_SIZE : (w + 1) * WARP_SIZE], op, s
            )
            scanned[w * WARP_SIZE : (w + 1) * WARP_SIZE] = warp_scan
            totals = np.full(s, identity, dtype=dtype)
            for lane in range(s):
                hits = np.flatnonzero(residues == lane)
                if hits.size:
                    totals[lane] = warp_scan[hits[-1]]
            ctx.shared.store(
                "_strided_scan_aux", w * s + np.arange(s), totals
            )
        ctx.syncthreads()

        # Phase 2: exclusive per-lane prefix over the warps' totals.
        table = ctx.shared.load(
            "_strided_scan_aux", np.arange(num_warps * s)
        ).reshape(num_warps, s)
        warp_prefix = np.full((num_warps, s), identity, dtype=dtype)
        for w in range(1, num_warps):
            warp_prefix[w] = op.apply(warp_prefix[w - 1], table[w - 1])
        ctx.shared.store(
            "_strided_scan_aux",
            np.arange(num_warps * s),
            warp_prefix.reshape(-1),
        )
        ctx.syncthreads()

        # Phase 3: every lane folds in its warp's per-residue prefix
        # and the inter-tile carry for its residue (the modulo lookup).
        folded = ctx.shared.load("_strided_scan_aux", np.arange(num_warps * s))
        for w in range(num_warps):
            segment = slice(w * WARP_SIZE, (w + 1) * WARP_SIZE)
            lane_positions = tile_offset + w * WARP_SIZE + np.arange(WARP_SIZE)
            residues = lane_positions % s
            warp_carry = folded[w * s + residues]
            tile_carry = carries[residues]
            combined = op.apply(tile_carry, op.apply(warp_carry, scanned[segment]))
            scanned[segment] = combined.astype(dtype)

        out[tile_start : tile_start + len(tile)] = scanned[: len(tile)]
        # Update the per-lane register carries from the corrected tile.
        for lane in range(s):
            start_idx = lane_start_in_chunk(tile_offset, lane, s)
            hits = np.arange(start_idx, len(tile), s)
            if hits.size:
                carries[lane] = scanned[hits[-1]]
    return out


def warp_faithful_chunk_scan(
    ctx: BlockContext,
    values: np.ndarray,
    op: AssociativeOp,
) -> np.ndarray:
    """Instruction-level chunk scan for tuple size 1 (Section 2.1).

    The chunk is processed in tiles of ``threads_per_block`` elements
    (one element per thread, "multiple values per thread" realized as a
    register loop).  Each tile runs the three-phase block scan; a
    running carry in registers links consecutive tiles.  Trailing
    partial tiles are padded with the operator identity, which leaves
    the scan unchanged.
    """
    values = np.asarray(values)
    dtype = op.check_dtype(values.dtype)
    identity = op.identity(dtype)
    t = ctx.threads_per_block
    out = np.empty_like(values)
    carry = identity
    for tile_start in range(0, len(values), t):
        tile = values[tile_start : tile_start + t]
        if len(tile) < t:
            padded = np.full(t, identity, dtype=dtype)
            padded[: len(tile)] = tile
        else:
            padded = tile
        scanned = ctx.block_inclusive_scan(padded, op)
        corrected = op.apply(np.full(t, carry, dtype=dtype), scanned)
        out[tile_start : tile_start + len(tile)] = corrected[: len(tile)]
        carry = corrected[len(tile) - 1]
    return out
