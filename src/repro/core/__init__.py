"""SAM: the paper's single-pass, generalized prefix-scan algorithm.

The package contains:

* :mod:`repro.core.localscan` — block-local scans: the vectorized
  strided (tuple-aware) scan and the warp-faithful three-phase scan.
* :mod:`repro.core.carry` — inter-block carry propagation: SAM's
  decoupled write-then-independent-reads scheme and the chained
  read-modify-write scheme it is ablated against (Section 5.4).
* :mod:`repro.core.sam` — the SAM kernel on the GPU simulator,
  supporting any order, tuple size, operator, and their combination in
  a single launch (the paper's "single 100-statement kernel").
* :mod:`repro.core.tuning` — the StreamScan-style auto-tuner choosing
  items per thread by problem size (Section 3.1).
* :mod:`repro.core.host` — fast vectorized host implementations of the
  same math (the library most downstream users will call).
"""

from repro.core.carry import (
    CARRY_SCHEMES,
    chained_carry,
    decoupled_carry,
    predecessors,
)
from repro.core.host import (
    host_delta_decode,
    host_delta_encode,
    host_prefix_sum,
    host_scan,
)
from repro.core.localscan import (
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
    warp_faithful_chunk_scan,
)
from repro.core.sam import SamResult, SamScan
from repro.core.tuning import AutoTuner, tune_items_per_thread

__all__ = [
    "AutoTuner",
    "CARRY_SCHEMES",
    "SamResult",
    "SamScan",
    "chained_carry",
    "decoupled_carry",
    "host_delta_decode",
    "host_delta_encode",
    "host_prefix_sum",
    "host_scan",
    "predecessors",
    "strided_exclusive_from_inclusive",
    "strided_inclusive_scan",
    "tune_items_per_thread",
    "warp_faithful_chunk_scan",
]
