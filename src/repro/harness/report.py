"""Text rendering of regenerated figures and tables."""

from __future__ import annotations

from typing import List

from repro.harness.figures import FigureData
from repro.harness.tables import table1_rows


def _fmt_size(n: int) -> str:
    """Sizes as the paper labels them: 2^k or 10^k where exact."""
    if n and n & (n - 1) == 0:
        return f"2^{n.bit_length() - 1}"
    digits = len(str(n)) - 1
    if n == 10**digits:
        return f"10^{digits}"
    return str(n)


def _fmt_tput(value) -> str:
    """Throughput in billions of items per second (the figures' y axis)."""
    if value is None:
        return "-"
    return f"{value / 1e9:8.3f}"


def format_figure(data: FigureData) -> str:
    """Aligned text table: one row per size, one column per series."""
    labels = list(data.values)
    header = f"{data.spec.fig_id}: {data.spec.title}"
    unit = "throughput in G items/s ('-' = size unsupported)"
    col = max(8, max(len(label) for label in labels))
    lines = [header, unit, ""]
    head = f"{'n':>10} " + " ".join(f"{label:>{col}}" for label in labels)
    lines.append(head)
    lines.append("-" * len(head))
    for i, n in enumerate(data.sizes):
        cells = " ".join(
            f"{_fmt_tput(data.values[label][i]):>{col}}" for label in labels
        )
        lines.append(f"{_fmt_size(n):>10} {cells}")
    return "\n".join(lines)


def format_table1() -> str:
    """Table 1 as aligned text, including the paper's published af."""
    rows = table1_rows()
    lines = [
        "Table 1: hardware parameters and architectural factor",
        f"{'GPU':>8} {'generation':>10} {'m':>4} {'b':>3} {'t':>6} "
        f"{'r':>6} {'af*1000':>9} {'paper':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['GPU']:>8} {row['generation']:>10} {row['m']:>4} "
            f"{row['b']:>3} {row['t']:>6} {row['r']:>6} "
            f"{row['af_x1000']:>9.2f} {row['paper_af_x1000']:>7.2f}"
        )
    return "\n".join(lines)


def figure_to_csv(data: FigureData) -> str:
    """CSV export of a figure (one row per size, one column per series).

    Empty cells mark unsupported sizes.  Intended for plotting the
    regenerated figures with external tools.
    """
    labels = list(data.values)
    lines = ["n," + ",".join(labels)]
    for i, n in enumerate(data.sizes):
        cells = [
            "" if data.values[label][i] is None else f"{data.values[label][i]:.6g}"
            for label in labels
        ]
        lines.append(f"{n}," + ",".join(cells))
    return "\n".join(lines)


#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def render_sparklines(data: FigureData) -> str:
    """Compact one-line-per-series view of a figure.

    Each series becomes a sparkline over the size sweep (log-scaled to
    the figure's maximum), making the ramp/plateau shapes and the
    crossovers scannable in a terminal without a plot.
    """
    supported = [
        value
        for values in data.values.values()
        for value in values
        if value is not None
    ]
    if not supported:
        return f"{data.spec.fig_id}: no data"
    top = max(supported)
    label_width = max(len(label) for label in data.values)
    lines = [f"{data.spec.fig_id} (peak {top / 1e9:.1f} G items/s = full bar)"]
    for label, values in data.values.items():
        cells = []
        for value in values:
            if value is None:
                cells.append("-")
                continue
            level = int(round((value / top) * (len(_SPARK_LEVELS) - 1)))
            cells.append(_SPARK_LEVELS[max(1, level)])
        lines.append(f"{label:>{label_width}} |{''.join(cells)}|")
    return "\n".join(lines)


def figure_headline_lines(data: FigureData) -> List[str]:
    """Short per-figure summary: each series' peak throughput."""
    lines = []
    for label, values in data.values.items():
        best = max((v for v in values if v is not None), default=None)
        if best is not None:
            lines.append(f"{data.spec.fig_id} {label}: peak {best / 1e9:.2f} G items/s")
    return lines
