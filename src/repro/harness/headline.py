"""The paper's textual claims as machine-checkable assertions.

Every quantitative statement Section 5 makes about a figure is encoded
as a :class:`HeadlineCheck`: which figure it belongs to, what the paper
says, and a predicate over the performance model.  The test suite runs
them all; EXPERIMENTS.md records paper-value vs model-value per check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.gpusim.spec import ALL_GPUS
from repro.harness.tables import PAPER_AF_X1000
from repro.perf.model import PerformanceModel, UnsupportedProblem


@dataclass
class HeadlineCheck:
    """One claim: evaluating it returns (passed, measured-description)."""

    check_id: str
    figure: str
    paper_claim: str
    evaluate: Callable[[PerformanceModel], Tuple[bool, str]]


def _tput(model, alg, gpu, bits, n, **kw) -> Optional[float]:
    try:
        return model.throughput(alg, gpu, bits, n, **kw)
    except UnsupportedProblem:
        return None


def _ratio_check(
    check_id, figure, claim, alg_a, alg_b, gpu, bits, n, lo, hi, **kw
) -> HeadlineCheck:
    def evaluate(model):
        a = _tput(model, alg_a, gpu, bits, n, **kw)
        b = _tput(model, alg_b, gpu, bits, n, **kw)
        if a is None or b is None:
            return False, "unsupported size"
        ratio = a / b
        return lo <= ratio <= hi, f"{alg_a}/{alg_b} = {ratio:.2f} at n={n}"

    return HeadlineCheck(check_id, figure, claim, evaluate)


def _max_ratio_check(
    check_id, figure, claim, alg_a, alg_b, gpu, bits, lo, hi, **kw
) -> HeadlineCheck:
    def evaluate(model):
        best = 0.0
        best_n = None
        for e in range(10, 31):
            n = 1 << e
            a = _tput(model, alg_a, gpu, bits, n, **kw)
            b = _tput(model, alg_b, gpu, bits, n, **kw)
            if a is None or b is None:
                continue
            if a / b > best:
                best, best_n = a / b, n
        return lo <= best <= hi, f"max {alg_a}/{alg_b} = {best:.2f} at n={best_n}"

    return HeadlineCheck(check_id, figure, claim, evaluate)


def _wins_check(
    check_id, figure, claim, winner, loser, gpu, bits, n, **kw
) -> HeadlineCheck:
    def evaluate(model):
        a = _tput(model, winner, gpu, bits, n, **kw)
        b = _tput(model, loser, gpu, bits, n, **kw)
        if a is None or b is None:
            return False, "unsupported size"
        return a > b, f"{winner}={a/1e9:.2f} vs {loser}={b/1e9:.2f} G/s at n={n}"

    return HeadlineCheck(check_id, figure, claim, evaluate)


def _cudpp_limit_check() -> HeadlineCheck:
    def evaluate(model):
        try:
            model.throughput("cudpp", "Titan X", 32, 2**26)
        except UnsupportedProblem:
            return True, "cudpp raises UnsupportedProblem above 2^25"
        return False, "cudpp accepted 2^26 items"

    return HeadlineCheck(
        "cudpp_size_limit",
        "fig03",
        "CUDPP does not support problem sizes above 2^25",
        evaluate,
    )


def _table1_check() -> HeadlineCheck:
    def evaluate(model):
        worst = 0.0
        for spec in ALL_GPUS:
            worst = max(
                worst,
                abs(spec.architectural_factor_x1000 - PAPER_AF_X1000[spec.name]),
            )
        return worst <= 0.02, f"max |af - paper af| = {worst:.3f} (x1000 scale)"

    return HeadlineCheck(
        "table1_af",
        "table1",
        "af*1000 = 7.32 / 1.96 / 0.92 / 1.46 for C1060 / M2090 / K40 / Titan X",
        evaluate,
    )


def _flat_64bit_tuples_check() -> HeadlineCheck:
    def evaluate(model):
        tputs = [
            model.throughput("sam", "Titan X", 64, 2**28, tuple_size=s)
            for s in (2, 5, 8)
        ]
        spread = max(tputs) / min(tputs)
        return spread <= 1.10, f"max/min across s in (2,5,8): {spread:.3f}"

    return HeadlineCheck(
        "fig12_flat",
        "fig12",
        "64-bit Titan X tuple throughput is nearly the same for 2-, 5-, "
        "and 8-element tuples",
        evaluate,
    )


def _half_rate_check() -> HeadlineCheck:
    def evaluate(model):
        t32 = model.throughput("sam", "Titan X", 32, 2**28)
        t64 = model.throughput("sam", "Titan X", 64, 2**28)
        ratio = t32 / t64
        return 1.7 <= ratio <= 2.3, f"32-bit/64-bit SAM throughput = {ratio:.2f}"

    return HeadlineCheck(
        "fig04_half_rate",
        "fig04",
        "the 64-bit throughputs in items per second are about half as high",
        evaluate,
    )


def _build_checks() -> List[HeadlineCheck]:
    tx, k40 = "Titan X", "K40"
    checks: List[HeadlineCheck] = [
        _table1_check(),
        # -- Figure 3 (Titan X, 32-bit conventional) --
        _ratio_check(
            "fig03_memcpy", "fig03",
            "for very large inputs, SAM matches the cudaMemcpy throughput",
            "sam", "memcpy", tx, 32, 2**30, 0.90, 1.02,
        ),
        _ratio_check(
            "fig03_2x_thrust", "fig03",
            "above ~2^22 SAM provides about twice the throughput of Thrust",
            "sam", "thrust", tx, 32, 2**24, 1.6, 2.5,
        ),
        _wins_check(
            "fig03_thrust_small", "fig03",
            "Thrust performs better than SAM on inputs of up to 2^12",
            "thrust", "sam", tx, 32, 2**12,
        ),
        _wins_check(
            "fig03_sam_beats_thrust", "fig03",
            "... and SAM overtakes Thrust shortly after",
            "sam", "thrust", tx, 32, 2**14,
        ),
        _wins_check(
            "fig03_cudpp_small", "fig03",
            "CUDPP performs better than SAM on inputs of up to 2^19",
            "cudpp", "sam", tx, 32, 2**19,
        ),
        _wins_check(
            "fig03_sam_beats_cudpp", "fig03",
            "... and SAM overtakes CUDPP shortly after",
            "sam", "cudpp", tx, 32, 2**21,
        ),
        _wins_check(
            "fig03_cub_medium", "fig03",
            "CUB performs better than SAM on inputs of up to 2^27",
            "cub", "sam", tx, 32, 2**24,
        ),
        _wins_check(
            "fig03_sam_beats_cub", "fig03",
            "... while SAM wins on the largest inputs",
            "sam", "cub", tx, 32, 2**29,
        ),
        _cudpp_limit_check(),
        # -- Figure 4 (Titan X, 64-bit) --
        _ratio_check(
            "fig04_memcpy", "fig04",
            "SAM again matches the cudaMemcpy throughput for the largest inputs",
            "sam", "memcpy", tx, 64, 2**29, 0.88, 1.02,
        ),
        _half_rate_check(),
        # -- Figure 5/6 (K40) --
        _ratio_check(
            "fig05_cub_wins", "fig05",
            "CUB exceeds SAM's performance by about 50% on large inputs",
            "cub", "sam", k40, 32, 2**28, 1.3, 1.9,
        ),
        _wins_check(
            "fig05_sam_beats_thrust", "fig05",
            "SAM is faster than Thrust on medium and large inputs",
            "sam", "thrust", k40, 32, 2**22,
        ),
        _wins_check(
            "fig06_cub_wins", "fig06",
            "the general 64-bit trends are similar (CUB fastest)",
            "cub", "sam", k40, 64, 2**28,
        ),
        # -- Figure 7 (Titan X, 32-bit, higher order) --
        _ratio_check(
            "fig07_order2", "fig07",
            "with 2^27 items, SAM outperforms CUB by 52% on order two",
            "sam", "cub", tx, 32, 2**27, 1.30, 1.75, order=2,
        ),
        _ratio_check(
            "fig07_order5", "fig07",
            "... by 78% on order five",
            "sam", "cub", tx, 32, 2**27, 1.55, 2.10, order=5,
        ),
        _ratio_check(
            "fig07_order8", "fig07",
            "... and by 87% on order eight",
            "sam", "cub", tx, 32, 2**27, 1.60, 2.25, order=8,
        ),
        _max_ratio_check(
            "fig07_up_to_2_9", "fig07",
            "on some small input sizes with order eight, SAM is almost "
            "three times faster than CUB (abstract: up to 2.9x)",
            "sam", "cub", tx, 32, 2.0, 3.4, order=8,
        ),
        # -- Figure 8 (Titan X, 64-bit, higher order) --
        _ratio_check(
            "fig08_order8", "fig08",
            "the 64-bit speedup factors of SAM over CUB are very similar",
            "sam", "cub", tx, 64, 2**27, 1.5, 2.3, order=8,
        ),
        # -- Figure 9 (K40, 32-bit, higher order) --
        _wins_check(
            "fig09_order2_cub", "fig09",
            "CUB clearly outperforms SAM on order two",
            "cub", "sam", k40, 32, 2**28, order=2,
        ),
        _ratio_check(
            "fig09_order5_close", "fig09",
            "CUB outperforms SAM a little on order five",
            "sam", "cub", k40, 32, 2**28, 0.80, 1.02, order=5,
        ),
        _ratio_check(
            "fig09_order8_tied", "fig09",
            "CUB and SAM are tied on order eight",
            "sam", "cub", k40, 32, 2**28, 0.90, 1.25, order=8,
        ),
        # -- Figure 10 (K40, 64-bit, higher order) --
        _wins_check(
            "fig10_order8_sam", "fig10",
            "on order eight, SAM is already faster than CUB",
            "sam", "cub", k40, 64, 2**28, order=8,
        ),
        # -- Figure 11 (Titan X, 32-bit, tuples) --
        _ratio_check(
            "fig11_s2", "fig11",
            "on large inputs SAM is 17% slower than CUB on two-tuples",
            "sam", "cub", tx, 32, 2**27, 0.74, 0.95, tuple_size=2,
        ),
        _ratio_check(
            "fig11_s5", "fig11",
            "... but 20% faster on five-tuples",
            "sam", "cub", tx, 32, 2**27, 1.08, 1.45, tuple_size=5,
        ),
        _ratio_check(
            "fig11_s8", "fig11",
            "... and 34% faster on eight-tuples",
            "sam", "cub", tx, 32, 2**27, 1.22, 1.70, tuple_size=8,
        ),
        _max_ratio_check(
            "fig11_up_to_2_6", "fig11",
            "abstract: up to a factor of 2.6 on eight-tuple prefix sums",
            "sam", "cub", tx, 32, 1.7, 3.0, tuple_size=8,
        ),
        # -- Figure 12 (Titan X, 64-bit, tuples) --
        _flat_64bit_tuples_check(),
        _wins_check(
            "fig12_s2_cub", "fig12",
            "SAM is again slower than CUB on two-tuples",
            "cub", "sam", tx, 64, 2**28, tuple_size=2,
        ),
        _wins_check(
            "fig12_s5_sam", "fig12",
            "... faster on five-tuples",
            "sam", "cub", tx, 64, 2**28, tuple_size=5,
        ),
        _wins_check(
            "fig12_s8_sam", "fig12",
            "... and much faster on eight-tuples",
            "sam", "cub", tx, 64, 2**28, tuple_size=8,
        ),
        # -- Figure 13 (K40, 32-bit, tuples) --
        _wins_check(
            "fig13_s2_cub", "fig13",
            "CUB is faster on two-tuples on the K40",
            "cub", "sam", k40, 32, 2**28, tuple_size=2,
        ),
        _wins_check(
            "fig13_s5_cub", "fig13",
            "... and on five-tuples",
            "cub", "sam", k40, 32, 2**28, tuple_size=5,
        ),
        _wins_check(
            "fig13_s8_sam", "fig13",
            "SAM still outperforms the CUB-based code on the eight-tuples",
            "sam", "cub", k40, 32, 2**28, tuple_size=8,
        ),
        # -- Figure 14 (K40, 64-bit, tuples) --
        _wins_check(
            "fig14_s5_sam", "fig14",
            "SAM now outperforms CUB already on the five-tuples",
            "sam", "cub", k40, 64, 2**28, tuple_size=5,
        ),
        _wins_check(
            "fig14_s8_sam", "fig14",
            "... and on the eight-tuples",
            "sam", "cub", k40, 64, 2**28, tuple_size=8,
        ),
        # -- Figures 15/16 (carry-propagation ablation) --
        _max_ratio_check(
            "fig15_64pct", "fig15",
            "on large inputs SAM's scheme is up to 64% faster than the "
            "chained approach on the Titan X",
            "sam", "chained", tx, 32, 1.40, 1.80,
        ),
        _max_ratio_check(
            "fig16_39pct", "fig16",
            "... and up to 39% faster on the K40",
            "sam", "chained", k40, 32, 1.25, 1.55,
        ),
    ]
    return checks


#: All headline checks, built once.
HEADLINE_CHECKS: List[HeadlineCheck] = _build_checks()


def run_headline_checks(model: Optional[PerformanceModel] = None) -> List[dict]:
    """Evaluate every check; returns one result dict per check."""
    model = model or PerformanceModel()
    results = []
    for check in HEADLINE_CHECKS:
        passed, measured = check.evaluate(model)
        results.append(
            {
                "check_id": check.check_id,
                "figure": check.figure,
                "paper_claim": check.paper_claim,
                "measured": measured,
                "passed": passed,
            }
        )
    return results
