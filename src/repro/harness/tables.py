"""Table 1: hardware parameters and the architectural factor.

The table derives entirely from the GPU specs — ``af = m*b / (t*r)``,
reported scaled by 1000 — so regenerating it doubles as a check that
the spec constants match the paper.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gpusim.spec import ALL_GPUS

#: The af * 1000 values printed in the paper's Table 1.
PAPER_AF_X1000 = {
    "C1060": 7.32,
    "M2090": 1.96,
    "K40": 0.92,
    "Titan X": 1.46,
}


def table1_rows() -> List[Dict]:
    """One dict per GPU, in the paper's order, with the paper's columns."""
    rows = []
    for spec in ALL_GPUS:
        rows.append(
            {
                "GPU": spec.name,
                "generation": spec.generation,
                "m": spec.sm_count,
                "b": spec.blocks_per_sm,
                "t": spec.threads_per_block,
                "r": spec.registers_per_thread,
                "af_x1000": round(spec.architectural_factor_x1000, 2),
                "paper_af_x1000": PAPER_AF_X1000[spec.name],
            }
        )
    return rows
