"""Experiment harness: regenerate every table and figure of the paper.

:mod:`repro.harness.figures` defines one :class:`FigureSpec` per figure
(3-16) with the exact workload the paper sweeps (GPU, word size, sizes,
algorithms, orders / tuple sizes) and produces the throughput series
from the performance model.  :mod:`repro.harness.tables` regenerates
Table 1 from the GPU specs.  :mod:`repro.harness.report` renders both
as aligned text, the way the benchmark harness prints them.
:mod:`repro.harness.headline` collects the paper's textual claims about
each figure as machine-checkable assertions.
"""

from repro.harness.figures import (
    FIGURES,
    FigureData,
    FigureSpec,
    Series,
    generate_figure,
    power_of_ten_sizes,
    power_of_two_sizes,
)
from repro.harness.headline import HEADLINE_CHECKS, HeadlineCheck, run_headline_checks
from repro.harness.report import format_figure, format_table1, render_sparklines
from repro.harness.tables import table1_rows

__all__ = [
    "FIGURES",
    "FigureData",
    "FigureSpec",
    "HEADLINE_CHECKS",
    "HeadlineCheck",
    "Series",
    "format_figure",
    "format_table1",
    "generate_figure",
    "power_of_ten_sizes",
    "power_of_two_sizes",
    "render_sparklines",
    "run_headline_checks",
    "table1_rows",
]
