"""Figure specifications and series generation.

Section 5 evaluates throughput (items/second) over "power-of-two sizes
between 2^10 and 2^30 as well as ... power-of-ten sizes between 10^3
and 10^9", with "none of the tested codes supporting input sizes above
4 GB, i.e., 2^30 items for 32-bit integers and 2^29 items for 64-bit
longs".  Those sweep rules live here, together with one spec per
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.perf.model import PerformanceModel

#: 4 GB capacity limit -> max items per word size (Section 5.1).
MAX_ITEMS = {32: 2**30, 64: 2**29}


def power_of_two_sizes(word_bits: int) -> List[int]:
    """2^10 .. 2^30 (2^29 for 64-bit)."""
    limit = MAX_ITEMS[word_bits]
    return [1 << e for e in range(10, 31) if (1 << e) <= limit]


def power_of_ten_sizes(word_bits: int) -> List[int]:
    """10^3 .. 10^9, capped at the 4 GB limit."""
    limit = MAX_ITEMS[word_bits]
    return [10**e for e in range(3, 10) if 10**e <= limit]


def standard_sizes(word_bits: int) -> List[int]:
    """The union the paper plots, sorted."""
    return sorted(set(power_of_two_sizes(word_bits)) | set(power_of_ten_sizes(word_bits)))


@dataclass(frozen=True)
class Series:
    """One line in a figure: an algorithm at a given order/tuple size."""

    label: str
    algorithm: str
    order: int = 1
    tuple_size: int = 1


@dataclass(frozen=True)
class FigureSpec:
    """Everything needed to regenerate one figure of the paper."""

    fig_id: str
    title: str
    gpu: str
    word_bits: int
    series: Tuple[Series, ...]

    def sizes(self) -> List[int]:
        sizes = standard_sizes(self.word_bits)
        if max(s.tuple_size for s in self.series) > 1:
            # "the input size needs to be an integer multiple of the
            # tuple size, some of the inputs are actually a few elements
            # shorter than indicated" (Section 5.3) — sizes unchanged,
            # workloads truncate; the model works on the nominal size.
            pass
        return sizes


@dataclass
class FigureData:
    """Generated series for one figure (``None`` = unsupported size)."""

    spec: FigureSpec
    sizes: List[int]
    values: Dict[str, List[Optional[float]]] = field(default_factory=dict)


def _conventional(gpu: str, bits: int, fig_id: str) -> FigureSpec:
    return FigureSpec(
        fig_id=fig_id,
        title=(
            f"Prefix-sum throughput of {bits}-bit integers for different "
            f"problem sizes on the {gpu}"
        ),
        gpu=gpu,
        word_bits=bits,
        series=(
            Series("Thrust", "thrust"),
            Series("CUDPP", "cudpp"),
            Series("CUB", "cub"),
            Series("SAM", "sam"),
            Series("memcpy", "memcpy"),
        ),
    )


def _higher_order(gpu: str, bits: int, fig_id: str) -> FigureSpec:
    return FigureSpec(
        fig_id=fig_id,
        title=(
            f"Higher-order prefix-sum throughput of {bits}-bit integers "
            f"for different problem sizes on the {gpu}"
        ),
        gpu=gpu,
        word_bits=bits,
        series=tuple(
            Series(f"{alg.upper()}{q}", alg, order=q)
            for q in (2, 5, 8)
            for alg in ("cub", "sam")
        ),
    )


def _tuple_based(gpu: str, bits: int, fig_id: str) -> FigureSpec:
    return FigureSpec(
        fig_id=fig_id,
        title=(
            f"Tuple-based prefix-sum throughput of {bits}-bit integers "
            f"for different problem sizes on the {gpu}"
        ),
        gpu=gpu,
        word_bits=bits,
        series=tuple(
            Series(f"{alg.upper()}{s}", alg, tuple_size=s)
            for s in (2, 5, 8)
            for alg in ("cub", "sam")
        ),
    )


def _carry(gpu: str, fig_id: str) -> FigureSpec:
    return FigureSpec(
        fig_id=fig_id,
        title=(
            "Prefix-sum throughput of 32-bit integers for two "
            f"carry-propagation schemes on the {gpu}"
        ),
        gpu=gpu,
        word_bits=32,
        series=(Series("chained", "chained"), Series("SAM", "sam")),
    )


#: Figure id -> spec, exactly the paper's evaluation section.
FIGURES: Dict[str, FigureSpec] = {
    "fig03": _conventional("Titan X", 32, "fig03"),
    "fig04": _conventional("Titan X", 64, "fig04"),
    "fig05": _conventional("K40", 32, "fig05"),
    "fig06": _conventional("K40", 64, "fig06"),
    "fig07": _higher_order("Titan X", 32, "fig07"),
    "fig08": _higher_order("Titan X", 64, "fig08"),
    "fig09": _higher_order("K40", 32, "fig09"),
    "fig10": _higher_order("K40", 64, "fig10"),
    "fig11": _tuple_based("Titan X", 32, "fig11"),
    "fig12": _tuple_based("Titan X", 64, "fig12"),
    "fig13": _tuple_based("K40", 32, "fig13"),
    "fig14": _tuple_based("K40", 64, "fig14"),
    "fig15": _carry("Titan X", "fig15"),
    "fig16": _carry("K40", "fig16"),
}


def generate_figure(
    fig_id: str, model: Optional[PerformanceModel] = None
) -> FigureData:
    """Produce every series of one figure from the performance model."""
    if fig_id not in FIGURES:
        raise KeyError(f"unknown figure {fig_id!r}; available: {sorted(FIGURES)}")
    spec = FIGURES[fig_id]
    model = model or PerformanceModel()
    sizes = spec.sizes()
    data = FigureData(spec=spec, sizes=sizes)
    for series in spec.series:
        data.values[series.label] = model.sweep(
            series.algorithm,
            spec.gpu,
            spec.word_bits,
            sizes,
            order=series.order,
            tuple_size=series.tuple_size,
        )
    return data
