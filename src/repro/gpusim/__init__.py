"""A deterministic functional simulator of the CUDA execution model.

The paper's algorithm (SAM) is defined in terms of CUDA's three levels
of parallelism (Section 2): 32-thread lockstep *warps* exchanging data
via shuffles, *thread blocks* with shared memory and barriers, and a
*grid* of blocks that communicate only through global memory with
fences.  SAM additionally relies on the *persistent-thread* model: only
as many blocks are launched as fit on the hardware, and each processes
every k-th chunk.

This package simulates exactly that model, faithfully enough to

* execute the real inter-block carry-propagation protocol (local-sum
  circular buffers, ready flags/counts, polling) under an arbitrary —
  including adversarial — block interleaving, and
* *measure* the quantity the paper's performance argument rests on:
  global-memory words moved and 128-byte coalesced transactions issued.

Design choices (documented per module):

* Warps are vectorized: a warp's 32 lanes are numpy slices, and shuffle
  instructions are array permutations.  Lockstep execution is therefore
  exact by construction.
* Blocks are Python generators.  A block runs uninterrupted until it
  ``yield``s (polling loops and post-fence points); the scheduler then
  switches blocks.  Global memory is sequentially consistent at yield
  granularity, which is a *stronger* model than real hardware — so a
  protocol that is correct on real hardware must also be correct here,
  and tests additionally drive adversarial schedules to probe ordering
  assumptions.
* Every memory operation updates :class:`TrafficStats`, including the
  coalescing rule: lanes touching the same aligned 128-byte segment
  merge into one transaction (Section 2's description of bulk loads).
"""

from repro.gpusim.counters import TrafficStats
from repro.gpusim.errors import (
    DeadlockError,
    KernelFault,
    SimulationError,
)
from repro.gpusim.kernel import KernelResult, launch_kernel
from repro.gpusim.memory import GlobalArray, GlobalMemory
from repro.gpusim.scheduler import (
    SCHEDULE_POLICIES,
    CooperativeScheduler,
    SchedulePolicy,
)
from repro.gpusim.cache import L2Cache
from repro.gpusim.sharedmem import SharedMemory
from repro.gpusim.spec import ALL_GPUS, C1060, K40, M2090, TITAN_X, GPUSpec
from repro.gpusim.trace import TraceEvent, Tracer, render_pipeline, summarize_stagger
from repro.gpusim.warp import WARP_SIZE, Warp

__all__ = [
    "ALL_GPUS",
    "C1060",
    "CooperativeScheduler",
    "DeadlockError",
    "GlobalArray",
    "GlobalMemory",
    "GPUSpec",
    "K40",
    "KernelFault",
    "KernelResult",
    "L2Cache",
    "launch_kernel",
    "M2090",
    "render_pipeline",
    "summarize_stagger",
    "TraceEvent",
    "Tracer",
    "SCHEDULE_POLICIES",
    "SchedulePolicy",
    "SharedMemory",
    "SimulationError",
    "TITAN_X",
    "TrafficStats",
    "WARP_SIZE",
    "Warp",
]
