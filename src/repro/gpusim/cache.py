"""A set-associative LRU model of the shared L2 cache.

Section 5.1 explains SAM's large-input edge as a locality effect:
"While SAM accesses its auxiliary memory O(n) times just like the other
algorithms do, using O(1) sized circular buffers results in better
locality and thus more cache hits."  This module makes that claim
measurable: an optional L2 model attached to :class:`GlobalMemory`
tracks hits and misses per 128-byte line, per array.

The geometry defaults mirror the testbed GPUs (Section 4: 2 MB on the
Titan X, 1.5 MB on the K40; 128-byte lines); tests shrink the cache so
the effect shows at simulation-friendly sizes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

#: Cache line size (same as the coalescing segment).
LINE_BYTES = 128


class L2Cache:
    """Set-associative LRU cache over (array, line-index) addresses."""

    def __init__(self, size_bytes: int, line_bytes: int = LINE_BYTES, associativity: int = 16):
        if size_bytes < line_bytes * associativity:
            raise ValueError(
                f"cache of {size_bytes} bytes cannot hold one "
                f"{associativity}-way set of {line_bytes}-byte lines"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = max(1, size_bytes // (line_bytes * associativity))
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self._per_array: Dict[str, List[int]] = {}

    def _set_index(self, array_name: str, line: int) -> int:
        return hash((array_name, line)) % self.num_sets

    def access(self, array_name: str, lines) -> Tuple[int, int]:
        """Touch the given line indices of one array; returns (hits, misses)."""
        hits = 0
        misses = 0
        counters = self._per_array.setdefault(array_name, [0, 0])
        for line in lines:
            line = int(line)
            cache_set = self._sets[self._set_index(array_name, line)]
            key = (array_name, line)
            if key in cache_set:
                cache_set.move_to_end(key)
                hits += 1
            else:
                misses += 1
                cache_set[key] = True
                if len(cache_set) > self.associativity:
                    cache_set.popitem(last=False)
        self.hits += hits
        self.misses += misses
        counters[0] += hits
        counters[1] += misses
        return hits, misses

    def hit_rate(self, array_name: str = None) -> float:
        """Overall (or per-array) hit rate; 0.0 when never accessed."""
        if array_name is None:
            hits, misses = self.hits, self.misses
        else:
            hits, misses = self._per_array.get(array_name, (0, 0))
        total = hits + misses
        return hits / total if total else 0.0

    def per_array_stats(self) -> Dict[str, Tuple[int, int]]:
        """{array_name: (hits, misses)} for every touched array."""
        return {name: tuple(counts) for name, counts in self._per_array.items()}
