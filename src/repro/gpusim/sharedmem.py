"""Per-block shared memory with bank-conflict accounting.

Section 2: "All threads in a block have access to a software-controlled
data cache called shared memory".  Shared memory on real GPUs is divided
into 32 banks of 4-byte words; a warp access in which multiple lanes hit
*different addresses in the same bank* serializes.  The simulator counts
those conflicts (they matter for the auxiliary-array phase of the block
scan) but, like the global-memory model, does not simulate time.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.gpusim.counters import TrafficStats
from repro.gpusim.errors import MemoryFault

#: Number of shared-memory banks on every GPU generation in Table 1.
NUM_BANKS = 32


class SharedMemory:
    """One thread block's shared memory: named arrays + counters."""

    def __init__(self, capacity_bytes: int, stats: Optional[TrafficStats] = None):
        self.capacity_bytes = capacity_bytes
        self.stats = stats if stats is not None else TrafficStats()
        self._arrays: Dict[str, np.ndarray] = {}
        self._used_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def alloc(self, name: str, size: int, dtype) -> np.ndarray:
        """Statically allocate a named shared array (like __shared__)."""
        if name in self._arrays:
            raise MemoryFault(f"shared array {name!r} already allocated")
        dtype = np.dtype(dtype)
        nbytes = size * dtype.itemsize
        if self._used_bytes + nbytes > self.capacity_bytes:
            raise MemoryFault(
                f"shared memory exhausted: {self._used_bytes} + {nbytes} bytes "
                f"> capacity {self.capacity_bytes}"
            )
        self._used_bytes += nbytes
        array = np.zeros(size, dtype=dtype)
        self._arrays[name] = array
        return array

    def get(self, name: str) -> np.ndarray:
        if name not in self._arrays:
            raise MemoryFault(f"no shared array named {name!r}")
        return self._arrays[name]

    def alloc_or_get(self, name: str, size: int, dtype) -> np.ndarray:
        """Allocate on first use, reuse afterwards (static __shared__
        arrays persist across loop iterations within a kernel)."""
        if name in self._arrays:
            existing = self._arrays[name]
            if len(existing) < size or existing.dtype != np.dtype(dtype):
                raise MemoryFault(
                    f"shared array {name!r} re-requested with incompatible "
                    f"shape/dtype ({size} x {np.dtype(dtype)} vs "
                    f"{len(existing)} x {existing.dtype})"
                )
            return existing
        return self.alloc(name, size, dtype)

    def _count_conflicts(self, indices: np.ndarray) -> int:
        """Bank conflicts for one warp access: for each bank, every
        *distinct* address beyond the first serializes one extra cycle.
        (Multiple lanes reading the same address broadcast for free.)"""
        if indices.size == 0:
            return 0
        banks = indices % NUM_BANKS
        conflicts = 0
        for bank in np.unique(banks):
            distinct = len(np.unique(indices[banks == bank]))
            conflicts += distinct - 1
        return conflicts

    def load(self, name: str, indices, mask=None) -> np.ndarray:
        """Warp-granularity gather from a shared array."""
        array = self.get(name)
        indices = np.asarray(indices, dtype=np.int64)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            active = indices[mask]
        else:
            active = indices
        if active.size and (active.min() < 0 or active.max() >= len(array)):
            raise MemoryFault(f"shared load out of bounds on {name!r}")
        self.stats.shared_words_read += active.size
        self.stats.shared_bank_conflicts += self._count_conflicts(active)
        out = np.zeros(indices.shape, dtype=array.dtype)
        if mask is not None:
            out[mask] = array[active]
        else:
            out = array[indices]
        return out

    def store(self, name: str, indices, values, mask=None) -> None:
        """Warp-granularity scatter into a shared array."""
        array = self.get(name)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.broadcast_to(np.asarray(values), indices.shape)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            indices = indices[mask]
            values = values[mask]
        if indices.size and (indices.min() < 0 or indices.max() >= len(array)):
            raise MemoryFault(f"shared store out of bounds on {name!r}")
        self.stats.shared_words_written += indices.size
        self.stats.shared_bank_conflicts += self._count_conflicts(indices)
        array[indices] = values.astype(array.dtype)
