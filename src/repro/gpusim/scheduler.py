"""Cooperative scheduling of persistent thread blocks.

Real GPUs schedule resident blocks in an order the programmer cannot
control; SAM's correctness therefore cannot depend on any particular
interleaving.  The simulator makes the interleaving an explicit,
deterministic *policy* so tests can run the same kernel under a
round-robin, reversed, rotated, or seeded-random schedule and demand
bit-identical results.

A block runs until it ``yield``s or finishes.  Blocks waiting on flags
yield inside their polling loop; if a full pass over every live block
produces neither a completion nor a global-memory write, the state can
never change again (the simulator is deterministic between yields) and a
:class:`DeadlockError` is raised instead of spinning forever.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Sequence

from repro.gpusim.counters import TrafficStats
from repro.gpusim.errors import DeadlockError, KernelFault

#: A policy maps (round_index, live_block_ids) to the visit order.
SchedulePolicy = Callable[[int, Sequence[int]], List[int]]


def round_robin(round_index: int, block_ids: Sequence[int]) -> List[int]:
    """Blocks in ascending id order every round (the friendly schedule:
    matches the pipelined processing of Figure 2)."""
    return list(block_ids)


def reversed_order(round_index: int, block_ids: Sequence[int]) -> List[int]:
    """Highest block id first — maximally hostile to forward carry
    propagation, since consumers always run before their producers."""
    return list(reversed(block_ids))


def rotating(round_index: int, block_ids: Sequence[int]) -> List[int]:
    """Rotate the starting block every round."""
    ids = list(block_ids)
    if not ids:
        return ids
    pivot = round_index % len(ids)
    return ids[pivot:] + ids[:pivot]


def make_seeded_random(seed: int) -> SchedulePolicy:
    """A deterministic pseudo-random permutation per round."""
    def policy(round_index: int, block_ids: Sequence[int]) -> List[int]:
        rng = random.Random(seed * 1_000_003 + round_index)
        ids = list(block_ids)
        rng.shuffle(ids)
        return ids

    return policy


SCHEDULE_POLICIES: Dict[str, SchedulePolicy] = {
    "round_robin": round_robin,
    "reversed": reversed_order,
    "rotating": rotating,
    "random": make_seeded_random(0),
}


def resolve_policy(policy) -> SchedulePolicy:
    """Accept a policy name or a policy callable."""
    if callable(policy):
        return policy
    if isinstance(policy, str):
        if policy not in SCHEDULE_POLICIES:
            raise KeyError(
                f"unknown schedule policy {policy!r}; "
                f"available: {sorted(SCHEDULE_POLICIES)}"
            )
        return SCHEDULE_POLICIES[policy]
    raise TypeError(f"expected policy name or callable, got {type(policy).__name__}")


class CooperativeScheduler:
    """Drives a set of block generators to completion under a policy."""

    def __init__(
        self,
        stats: TrafficStats,
        policy: SchedulePolicy = round_robin,
        max_idle_rounds: int = 16,
    ):
        self.stats = stats
        self.policy = policy
        self.max_idle_rounds = max_idle_rounds

    def run(self, blocks: Dict[int, Iterator]) -> None:
        """Run every block generator until all complete.

        ``blocks`` maps block ids to freshly-created generators.  Raises
        :class:`KernelFault` if a block raises and :class:`DeadlockError`
        if no block can make progress.
        """
        live = dict(blocks)
        round_index = 0
        idle_rounds = 0
        while live:
            order = self.policy(round_index, sorted(live))
            if sorted(order) != sorted(live):
                raise ValueError(
                    "schedule policy must return a permutation of the live blocks"
                )
            progress = False
            # Only writes can unblock a waiting block: polling generates
            # reads every round, so reads must not count as progress.
            writes_before = self.stats.global_words_written
            for block_id in order:
                generator = live.get(block_id)
                if generator is None:
                    continue
                self.stats.scheduler_switches += 1
                try:
                    next(generator)
                except StopIteration:
                    del live[block_id]
                    progress = True
                except Exception as exc:  # noqa: BLE001 - rewrapped below
                    raise KernelFault(block_id, exc) from exc
            writes_after = self.stats.global_words_written
            if progress or writes_after != writes_before:
                idle_rounds = 0
            else:
                idle_rounds += 1
                if idle_rounds >= self.max_idle_rounds:
                    raise DeadlockError(
                        f"{len(live)} blocks made no progress for "
                        f"{idle_rounds} full rounds (blocks {sorted(live)})"
                    )
            round_index += 1
