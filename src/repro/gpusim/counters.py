"""Event and traffic counters collected during simulation.

The paper's central performance argument is a *counting* argument:
SAM and CUB move ``2n`` words through global memory, MGPU ``3n``,
Thrust/CUDPP ``4n`` (Sections 2.2 and 3.1), and SAM keeps ``2n`` even
for higher orders (Section 2.4).  The simulator does not model time;
it measures exactly these quantities so the claims become testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class TrafficStats:
    """Accumulated counts for one kernel launch (or a merged set).

    ``global_words_read``/``written`` count *array elements* moved, the
    unit of the paper's 2n/3n/4n analysis.  ``global_bytes_*`` track the
    same traffic in bytes.  Transactions apply the 128-byte coalescing
    rule.  The remaining counters record synchronization and
    communication work: barriers, fences, shuffle instructions, flag
    polls (each poll of a not-yet-ready flag is a wasted global read —
    the latency SAM's pipelining hides), and carry additions (the
    redundant work SAM trades for latency, Section 2.5).
    """

    global_words_read: int = 0
    global_words_written: int = 0
    global_bytes_read: int = 0
    global_bytes_written: int = 0
    global_read_transactions: int = 0
    global_write_transactions: int = 0
    shared_words_read: int = 0
    shared_words_written: int = 0
    shared_bank_conflicts: int = 0
    barriers: int = 0
    fences: int = 0
    shuffles: int = 0
    flag_polls: int = 0
    failed_flag_polls: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    carry_additions: int = 0
    kernel_launches: int = 0
    scheduler_switches: int = 0

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        for spec in fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))
        return self

    def copy(self) -> "TrafficStats":
        return TrafficStats(**{spec.name: getattr(self, spec.name) for spec in fields(self)})

    @property
    def global_words_total(self) -> int:
        """Total global-memory words moved — the paper's headline metric."""
        return self.global_words_read + self.global_words_written

    def words_per_element(self, n: int) -> float:
        """Global words moved per input element (compare against 2/3/4).

        Auxiliary-array traffic makes this slightly larger than the
        ideal coefficient; it converges from above as ``n`` grows.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return self.global_words_total / n

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def __str__(self) -> str:
        parts = [f"{key}={value}" for key, value in self.as_dict().items() if value]
        return "TrafficStats(" + ", ".join(parts) + ")"
