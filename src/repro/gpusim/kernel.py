"""Kernel launch machinery: grids of persistent blocks.

``launch_kernel`` is the simulator's ``<<<grid, block>>>``: it builds a
:class:`BlockContext` per block, instantiates the kernel generator for
each, and drives them with a :class:`CooperativeScheduler`.  One call is
one kernel launch (counted — multi-launch algorithms like the
three-phase scan pay per launch, which is part of the paper's
communication-efficiency story).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional

from repro.gpusim.block import BlockContext
from repro.gpusim.counters import TrafficStats
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.scheduler import CooperativeScheduler, resolve_policy
from repro.gpusim.spec import GPUSpec


@dataclass
class KernelResult:
    """What a launch leaves behind: the device memory and the counters."""

    gmem: GlobalMemory
    stats: TrafficStats
    num_blocks: int


def launch_kernel(
    kernel_fn: Callable,
    spec: GPUSpec,
    gmem: Optional[GlobalMemory] = None,
    num_blocks: Optional[int] = None,
    threads_per_block: Optional[int] = None,
    policy="round_robin",
    max_idle_rounds: int = 16,
) -> KernelResult:
    """Launch ``kernel_fn`` over a grid of (persistent) blocks.

    Parameters
    ----------
    kernel_fn:
        Generator function taking a :class:`BlockContext`.  ``yield``
        points are where the scheduler may switch blocks.
    spec:
        GPU to simulate; defaults ``num_blocks`` to the persistent-block
        count ``k = m*b`` (Section 2.2) and ``threads_per_block`` to the
        spec's ``t``.
    gmem:
        Existing device memory to operate on; a fresh one is created
        when omitted.  Input/output arrays are allocated by the caller.
    policy:
        Block interleaving; see :mod:`repro.gpusim.scheduler`.
    """
    if gmem is None:
        gmem = GlobalMemory()
    if num_blocks is None:
        num_blocks = spec.persistent_blocks
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    gmem.stats.kernel_launches += 1

    contexts = {
        block_id: BlockContext(
            block_id, num_blocks, spec, gmem, threads_per_block=threads_per_block
        )
        for block_id in range(num_blocks)
    }
    generators = {
        block_id: _eager_start(kernel_fn, ctx)
        for block_id, ctx in contexts.items()
    }
    scheduler = CooperativeScheduler(
        gmem.stats, resolve_policy(policy), max_idle_rounds=max_idle_rounds
    )
    scheduler.run(generators)
    return KernelResult(gmem=gmem, stats=gmem.stats, num_blocks=num_blocks)


def _eager_start(kernel_fn: Callable, ctx: BlockContext):
    """Create the block's generator without executing any body code yet.

    Plain (non-generator) kernels are deferred into a one-shot generator
    so that *no* block body runs before the scheduler starts — otherwise
    plain kernels would execute during launch in block order, bypassing
    the schedule policy.
    """
    if inspect.isgeneratorfunction(kernel_fn):
        return kernel_fn(ctx)

    def _deferred():
        kernel_fn(ctx)
        return
        yield  # pragma: no cover - makes this a generator function

    return _deferred()
