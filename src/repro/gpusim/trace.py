"""Execution tracing: reconstruct Figure 2 from a real simulation.

Figure 2 of the paper shows the pipelined processing of chunks by
persistent blocks — which block works on which chunk when, where the
local sums are published, and how carries accumulate.  The simulator
can record exactly those events; :func:`render_pipeline` lays them out
as the figure does (one column per block, time flowing downward).

Events are intentionally coarse: one per (block, chunk, action), where
the action is ``load`` / ``publish`` / ``wait`` / ``carry`` / ``store``.
Kernels emit them through a :class:`Tracer` passed in by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One step of one block, in global execution order."""

    sequence: int
    block_id: int
    chunk: int
    action: str
    detail: str = ""


@dataclass
class Tracer:
    """Collects :class:`TraceEvent`s in execution order."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, block_id: int, chunk: int, action: str, detail: str = "") -> None:
        self.events.append(
            TraceEvent(len(self.events), block_id, chunk, action, detail)
        )

    def for_block(self, block_id: int) -> List[TraceEvent]:
        return [event for event in self.events if event.block_id == block_id]

    def chunk_completion_order(self) -> List[int]:
        """Chunks in the order their results were stored."""
        return [event.chunk for event in self.events if event.action == "store"]


#: Actions rendered and their short labels.
_ACTION_LABELS = {
    "load": "load",
    "publish": "S",      # publish local sum (Figure 2's S_i)
    "wait": "wait",
    "carry": "Carry",    # carry resolved (Figure 2's Carry_i)
    "store": "done",
}


def render_pipeline(tracer: Tracer, num_blocks: int, max_rows: int = 40) -> str:
    """ASCII rendering in the style of Figure 2.

    One column per block; each row is one recorded event, placed in its
    block's column at its global sequence position, so the staggered
    pipeline (block b waiting on block b-1, then streaming) is visible.
    """
    width = 16
    header = "".join(f"{'Block ' + str(b):^{width}}" for b in range(num_blocks))
    lines = [header, "-" * (width * num_blocks)]
    shown = tracer.events[: max_rows]
    for event in shown:
        if event.action not in _ACTION_LABELS:
            continue
        label = _ACTION_LABELS[event.action]
        if event.action in ("publish", "carry"):
            cell = f"{label}{event.chunk}"
        else:
            cell = f"{label} c{event.chunk}"
        if event.detail:
            cell += f" {event.detail}"
        row = [" " * width] * num_blocks
        row[event.block_id] = f"{cell:^{width}}"
        lines.append("".join(row))
    if len(tracer.events) > max_rows:
        lines.append(f"... ({len(tracer.events) - max_rows} more events)")
    return "\n".join(lines)


def summarize_stagger(tracer: Tracer, num_blocks: int) -> Optional[str]:
    """One-line description of the pipeline stagger, if observable.

    Checks Figure 2's key property: chunk results are stored in order
    even though blocks run concurrently, and block b's first store
    happens after block b-1's (the staggered start).
    """
    stores = [
        (event.sequence, event.block_id, event.chunk)
        for event in tracer.events
        if event.action == "store"
    ]
    if not stores:
        return None
    chunks = [chunk for _, _, chunk in stores]
    in_order = chunks == sorted(chunks)
    return (
        f"{len(stores)} chunks stored, "
        f"{'in' if in_order else 'OUT OF'} global order; "
        f"first store by block {stores[0][1]} (chunk {stores[0][2]})"
    )
