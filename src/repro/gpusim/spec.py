"""Hardware descriptions of the GPUs the paper evaluates.

Table 1 of the paper lists, for the best single-chip compute GPU of each
NVIDIA generation: ``m`` (number of SMs), ``b`` (minimum thread blocks
per SM for full occupancy), ``t`` (threads per block), ``r`` (registers
available per thread), and the resulting architectural factor
``af = m*b / (t*r)``.  Section 4 adds clock rates, bandwidth, cache
sizes, and core counts for the two measurement platforms (Titan X and
K40).  Everything the simulator and the performance model need about a
GPU lives in :class:`GPUSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    The first five fields are exactly Table 1's columns; the remainder
    come from Section 4's testbed description (zeros for the two older
    generations the paper only analyzes, never benchmarks).
    """

    name: str
    generation: str
    sm_count: int                 # m
    blocks_per_sm: int            # b
    threads_per_block: int        # t
    registers_per_thread: float   # r
    core_clock_ghz: float = 0.0
    mem_clock_ghz: float = 0.0
    peak_bandwidth_gbs: float = 0.0
    cores: int = 0
    l2_bytes: int = 0
    shared_mem_per_sm_bytes: int = 0
    global_mem_bytes: int = 0
    max_resident_threads: int = 0

    @property
    def persistent_blocks(self) -> int:
        """k, the number of simultaneously-resident thread blocks.

        Section 2.2: "k is the number of persistent thread blocks, which
        is a hardware dependent constant ... 30 and 48 on our GPUs"
        (K40: 15 SMs x 2; Titan X: 24 SMs x 2).
        """
        return self.sm_count * self.blocks_per_sm

    @property
    def architectural_factor(self) -> float:
        """af = m*b / (t*r), Section 2.5's per-element carry-work factor."""
        return (self.sm_count * self.blocks_per_sm) / (
            self.threads_per_block * self.registers_per_thread
        )

    @property
    def architectural_factor_x1000(self) -> float:
        """Table 1 reports af scaled by 1000 for readability."""
        return self.architectural_factor * 1000.0

    @property
    def compute_to_memory_clock_ratio(self) -> float:
        """mem_clock / core_clock — Section 5.1 uses this ratio (4.0 for
        the K40, 3.2 for the Titan X) to explain why trading extra
        computation for latency hiding pays off more on the Titan X."""
        if self.core_clock_ghz == 0:
            return 0.0
        return self.mem_clock_ghz / self.core_clock_ghz


#: Tesla generation (Table 1, row 1).
C1060 = GPUSpec(
    name="C1060",
    generation="Tesla",
    sm_count=30,
    blocks_per_sm=2,
    threads_per_block=512,
    registers_per_thread=16,
)

#: Fermi generation (Table 1, row 2).
M2090 = GPUSpec(
    name="M2090",
    generation="Fermi",
    sm_count=16,
    blocks_per_sm=2,
    threads_per_block=768,
    registers_per_thread=21.3,
)

#: Kepler generation (Table 1, row 3 + Section 4 testbed).
K40 = GPUSpec(
    name="K40",
    generation="Kepler",
    sm_count=15,
    blocks_per_sm=2,
    threads_per_block=1024,
    registers_per_thread=32,
    core_clock_ghz=0.745,
    mem_clock_ghz=3.0,
    peak_bandwidth_gbs=288.0,
    cores=2880,
    l2_bytes=1536 * 1024,
    shared_mem_per_sm_bytes=64 * 1024,
    global_mem_bytes=12 * 1024**3,
    max_resident_threads=30720,
)

#: Maxwell generation (Table 1, row 4 + Section 4 testbed).
TITAN_X = GPUSpec(
    name="Titan X",
    generation="Maxwell",
    sm_count=24,
    blocks_per_sm=2,
    threads_per_block=1024,
    registers_per_thread=32,
    core_clock_ghz=1.1,
    mem_clock_ghz=3.5,
    peak_bandwidth_gbs=336.0,
    cores=3072,
    l2_bytes=2 * 1024 * 1024,
    shared_mem_per_sm_bytes=96 * 1024,
    global_mem_bytes=12 * 1024**3,
    max_resident_threads=49152,
)

#: Table 1's rows in the paper's order.
ALL_GPUS = (C1060, M2090, K40, TITAN_X)
