"""Global (device) memory with coalescing-aware traffic accounting.

Section 2 of the paper: "if the warp threads simultaneously access words
in main memory that lie in the same aligned 128-byte segment, the
hardware merges the 32 reads or writes into one coalesced memory
transaction".  The simulator reproduces that rule: every load/store is
issued at warp granularity, and the number of distinct aligned 128-byte
segments touched by the active lanes is the number of transactions.

Values live in numpy arrays and are visible to all blocks immediately
(sequential consistency at scheduler-switch granularity — see the
package docstring).  Fences are therefore ordering no-ops but are
counted, and the polling API separates *failed* polls so tests can
observe the latency-hiding behaviour SAM's pipelining produces.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.gpusim.counters import TrafficStats
from repro.gpusim.errors import MemoryFault
from repro.gpusim.warp import WARP_SIZE

#: Size of a coalescing segment in bytes (CUDA global-memory rule).
SEGMENT_BYTES = 128


class GlobalArray:
    """A named allocation in simulated global memory.

    Holds its backing numpy buffer plus per-array traffic counts, so a
    test can distinguish data-array traffic (the 2n/4n coefficients)
    from auxiliary-array traffic (SAM's O(1) circular buffers).
    """

    def __init__(self, name: str, data: np.ndarray):
        self.name = name
        self.data = data
        self.words_read = 0
        self.words_written = 0

    def __len__(self) -> int:
        return len(self.data)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __repr__(self) -> str:
        return f"GlobalArray({self.name!r}, n={len(self.data)}, dtype={self.data.dtype})"


class GlobalMemory:
    """The device's global memory: named arrays + traffic counters.

    ``l2`` optionally attaches an :class:`repro.gpusim.cache.L2Cache`;
    every coalesced transaction then also probes the cache model and
    updates the ``l2_hits`` / ``l2_misses`` counters.
    """

    def __init__(self, stats: Optional[TrafficStats] = None, l2=None):
        self.stats = stats if stats is not None else TrafficStats()
        self.l2 = l2
        self._arrays: Dict[str, GlobalArray] = {}

    # -- allocation ----------------------------------------------------

    def alloc(self, name: str, size: int, dtype, fill=None) -> GlobalArray:
        """Allocate ``size`` elements of ``dtype`` under ``name``.

        Allocation itself generates no traffic (cudaMalloc does not
        touch the data); ``fill`` initializes host-side, mirroring
        cudaMemset/cudaMemcpy outside the measured kernel.
        """
        if name in self._arrays:
            raise MemoryFault(f"global array {name!r} already allocated")
        if size < 0:
            raise MemoryFault(f"negative allocation size {size} for {name!r}")
        data = np.zeros(size, dtype=dtype)
        if fill is not None:
            data[:] = fill
        array = GlobalArray(name, data)
        self._arrays[name] = array
        return array

    def alloc_like(self, name: str, values: np.ndarray) -> GlobalArray:
        """Allocate and host-initialize from an existing array (H2D copy)."""
        array = self.alloc(name, len(values), values.dtype)
        array.data[:] = values
        return array

    def get(self, name: str) -> GlobalArray:
        if name not in self._arrays:
            raise MemoryFault(f"no global array named {name!r}")
        return self._arrays[name]

    def free(self, name: str) -> None:
        if name not in self._arrays:
            raise MemoryFault(f"cannot free unknown array {name!r}")
        del self._arrays[name]

    # -- warp-granularity access ----------------------------------------

    def _check_bounds(self, array: GlobalArray, indices: np.ndarray) -> None:
        if indices.size and (indices.min() < 0 or indices.max() >= len(array.data)):
            raise MemoryFault(
                f"out-of-bounds access to {array.name!r}: indices in "
                f"[{indices.min()}, {indices.max()}], size {len(array.data)}"
            )

    def _count_transactions(self, array: GlobalArray, indices: np.ndarray) -> int:
        """Apply the 128-byte coalescing rule per 32-lane group.

        When an L2 model is attached, every transaction's segment also
        probes the cache.
        """
        itemsize = array.data.dtype.itemsize
        transactions = 0
        for start in range(0, len(indices), WARP_SIZE):
            group = indices[start : start + WARP_SIZE]
            segments = np.unique((group.astype(np.int64) * itemsize) // SEGMENT_BYTES)
            transactions += len(segments)
            if self.l2 is not None:
                hits, misses = self.l2.access(array.name, segments)
                self.stats.l2_hits += hits
                self.stats.l2_misses += misses
        return transactions

    def load(self, array: GlobalArray, indices, mask=None) -> np.ndarray:
        """Gather ``array[indices]`` for the active lanes.

        ``indices`` is one or more warps' worth of element indices;
        masked-off lanes neither move data nor count toward coalescing.
        Returns the loaded values (masked lanes return zeros).
        """
        indices = np.asarray(indices, dtype=np.int64)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            active = indices[mask]
        else:
            active = indices
        self._check_bounds(array, active)
        self.stats.global_words_read += active.size
        self.stats.global_bytes_read += active.size * array.data.dtype.itemsize
        self.stats.global_read_transactions += self._count_transactions(array, active)
        array.words_read += active.size
        out = np.zeros(indices.shape, dtype=array.data.dtype)
        if mask is not None:
            out[mask] = array.data[active]
        else:
            out = array.data[indices]
        return out

    def store(self, array: GlobalArray, indices, values, mask=None) -> None:
        """Scatter ``values`` to ``array[indices]`` for the active lanes."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            active_idx = indices[mask]
            active_val = np.broadcast_to(values, indices.shape)[mask]
        else:
            active_idx = indices
            active_val = np.broadcast_to(values, indices.shape)
        self._check_bounds(array, active_idx)
        self.stats.global_words_written += active_idx.size
        self.stats.global_bytes_written += active_idx.size * array.data.dtype.itemsize
        self.stats.global_write_transactions += self._count_transactions(array, active_idx)
        array.words_written += active_idx.size
        array.data[active_idx] = active_val.astype(array.data.dtype)

    # -- scalar access (single-lane, e.g. one thread publishing a sum) --

    def load_scalar(self, array: GlobalArray, index: int):
        """Single-lane read: one word, one transaction."""
        return self.load(array, np.asarray([int(index)]))[0]

    def store_scalar(self, array: GlobalArray, index: int, value) -> None:
        """Single-lane write: one word, one transaction."""
        self.store(array, np.asarray([int(index)]), np.asarray([value]))

    # -- flag polling ----------------------------------------------------

    def poll(self, array: GlobalArray, indices, expected) -> np.ndarray:
        """Read flag words and compare against ``expected``.

        Returns the boolean readiness vector.  Every lane counts as a
        flag poll; lanes that come back not-ready also count as failed
        polls — the wasted traffic that SAM's staggered pipeline is
        designed to minimize (Section 2.2).
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = self.load(array, indices)
        ready = values >= np.asarray(expected)
        self.stats.flag_polls += indices.size
        self.stats.failed_flag_polls += int(np.count_nonzero(~ready))
        return ready

    def fence(self) -> None:
        """__threadfence(): counted; ordering is already guaranteed by
        the simulator's sequential consistency."""
        self.stats.fences += 1
