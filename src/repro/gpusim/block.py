"""The per-block execution context handed to kernel bodies.

A kernel in this simulator is a Python *generator function* taking a
:class:`BlockContext`.  The generator models one thread block of the
persistent grid: it runs uninterrupted until it ``yield``s (the points
where inter-block communication can be observed) and the cooperative
scheduler then switches to another block.

Intra-block parallelism (warps, barriers) is executed sequentially —
phases separated by ``syncthreads`` simply run in order, which is
exactly the semantics a barrier guarantees — while the counters still
record every barrier, fence, and shuffle the real kernel would issue.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.counters import TrafficStats
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.sharedmem import SharedMemory
from repro.gpusim.spec import GPUSpec
from repro.gpusim.warp import WARP_SIZE, Warp
from repro.ops import AssociativeOp

#: Shared-memory capacity used when a spec predates the testbed specs.
DEFAULT_SHARED_BYTES = 48 * 1024


class BlockContext:
    """Everything one persistent thread block can touch.

    Attributes
    ----------
    block_id, num_blocks:
        blockIdx.x and gridDim.x of the persistent launch.
    spec:
        The :class:`GPUSpec` being simulated (threads per block etc.).
    gmem:
        The shared :class:`GlobalMemory` (common to all blocks).
    shared:
        This block's private :class:`SharedMemory`.
    stats:
        The launch-wide :class:`TrafficStats` (shared with ``gmem``).
    """

    def __init__(
        self,
        block_id: int,
        num_blocks: int,
        spec: GPUSpec,
        gmem: GlobalMemory,
        threads_per_block: Optional[int] = None,
    ):
        self.block_id = block_id
        self.num_blocks = num_blocks
        self.spec = spec
        self.gmem = gmem
        self.stats = gmem.stats
        self.threads_per_block = threads_per_block or spec.threads_per_block
        if self.threads_per_block % WARP_SIZE != 0:
            raise ValueError(
                f"threads_per_block must be a multiple of {WARP_SIZE}, "
                f"got {self.threads_per_block}"
            )
        shared_bytes = spec.shared_mem_per_sm_bytes or DEFAULT_SHARED_BYTES
        self.shared = SharedMemory(shared_bytes, self.stats)
        self._warps = [
            Warp(i, self.stats) for i in range(self.threads_per_block // WARP_SIZE)
        ]

    @property
    def num_warps(self) -> int:
        return len(self._warps)

    def warp(self, index: int) -> Warp:
        """The ``index``-th warp of this block."""
        return self._warps[index]

    def syncthreads(self) -> None:
        """__syncthreads(): a block-wide barrier.

        Counted only — phases separated by barriers already execute in
        program order in this simulator.
        """
        self.stats.barriers += 1

    def threadfence(self) -> None:
        """__threadfence(): order global writes before subsequent writes.

        Counted via the memory model; the simulator's memory is
        sequentially consistent so the ordering itself always holds.
        """
        self.gmem.fence()

    # -- composite block-level primitives --------------------------------

    def block_inclusive_scan(self, values: np.ndarray, op: AssociativeOp) -> np.ndarray:
        """The three-phase intra-block scan of Section 2.1, faithfully.

        Phase 1: each warp scans its 32-element subchunk with shuffles
        and records its last element in a shared auxiliary array.
        Phase 2: after a barrier, warp 0 scans the auxiliary array.
        Phase 3: after another barrier, each warp adds its carry.

        ``values`` holds one element per thread (``threads_per_block``
        lane values); multi-element-per-thread chunking happens above
        this level.
        """
        values = np.asarray(values)
        if values.shape != (self.threads_per_block,):
            raise ValueError(
                f"block scan needs {self.threads_per_block} lane values, "
                f"got shape {values.shape}"
            )
        num_warps = self.num_warps
        aux = self.shared.alloc_or_get("_block_scan_aux", WARP_SIZE, values.dtype)

        # Phase 1: independent warp scans; record each warp's total.
        scanned = np.empty_like(values)
        for w in range(num_warps):
            lane_values = values[w * WARP_SIZE : (w + 1) * WARP_SIZE]
            warp_result = self._warps[w].inclusive_scan(lane_values, op)
            scanned[w * WARP_SIZE : (w + 1) * WARP_SIZE] = warp_result
            self.shared.store("_block_scan_aux", np.asarray([w]), warp_result[-1:])
        self.syncthreads()

        # Phase 2: one warp scans the auxiliary array of warp totals.
        totals = self.shared.load("_block_scan_aux", np.arange(WARP_SIZE))
        if num_warps < WARP_SIZE:
            identity = op.identity(values.dtype)
            totals = totals.copy()
            totals[num_warps:] = identity
        totals_scanned = self._warps[0].inclusive_scan(totals, op)
        self.shared.store("_block_scan_aux", np.arange(WARP_SIZE), totals_scanned)
        self.syncthreads()

        # Phase 3: every warp beyond the first adds its carry.
        carries = self.shared.load("_block_scan_aux", np.arange(WARP_SIZE))
        for w in range(1, num_warps):
            segment = slice(w * WARP_SIZE, (w + 1) * WARP_SIZE)
            scanned[segment] = op.apply(
                np.full(WARP_SIZE, carries[w - 1], dtype=values.dtype),
                scanned[segment],
            )
        return scanned
