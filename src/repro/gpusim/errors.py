"""Exception types raised by the GPU simulator."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Base class for all simulator failures."""


class DeadlockError(SimulationError):
    """Every live block is polling and no global write can unblock them.

    A correct single-pass scan never deadlocks because chunk 0 has no
    predecessor; this error existing (and being tested) is what lets the
    scheduler run adversarial interleavings safely.
    """


class KernelFault(SimulationError):
    """A kernel body raised; wraps the original exception with the
    faulting block id so failure-injection tests can pinpoint it."""

    def __init__(self, block_id: int, original: BaseException):
        super().__init__(f"kernel fault in block {block_id}: {original!r}")
        self.block_id = block_id
        self.original = original


class MemoryFault(SimulationError):
    """Out-of-bounds or type-mismatched global/shared memory access."""
