"""Warp-level primitives: lockstep lanes and shuffle-based scans.

Section 2.1: "each warp computes an independent prefix sum on its
subchunk using a series of shuffle instructions".  A warp here is a
vector of 32 lane values (a numpy array), and ``shfl_up`` is the CUDA
``__shfl_up`` instruction: lane ``i`` receives the value of lane
``i - delta``, lanes below ``delta`` keep their own value, and the
instruction costs one shuffle per active warp.

The inclusive warp scan is the classic Kogge-Stone/Hillis-Steele ladder:
log2(32) = 5 shuffle+apply steps.  It works for any associative
operator and any stride (tuple) because striding is handled above the
warp level; the warp only ever scans contiguous lane values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gpusim.counters import TrafficStats
from repro.ops import AssociativeOp

#: Threads per warp on every CUDA GPU the paper considers.
WARP_SIZE = 32


class Warp:
    """One 32-lane warp operating on vectors of lane values.

    The object is stateless apart from its counters; kernel code passes
    lane-value vectors in and out.  This mirrors how real warp shuffles
    move register values rather than memory.
    """

    def __init__(self, warp_id: int, stats: Optional[TrafficStats] = None):
        self.warp_id = warp_id
        self.stats = stats if stats is not None else TrafficStats()
        self.lane_ids = np.arange(WARP_SIZE)

    def _check(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape != (WARP_SIZE,):
            raise ValueError(
                f"warp operations need exactly {WARP_SIZE} lane values, got shape {values.shape}"
            )
        return values

    def shfl_up(self, values, delta: int) -> np.ndarray:
        """CUDA __shfl_up: lane i gets the value of lane i-delta.

        Lanes ``i < delta`` receive their own value unchanged (the
        hardware leaves the destination register untouched for them).
        """
        values = self._check(values)
        if not 0 <= delta < WARP_SIZE:
            raise ValueError(f"shuffle delta must be in [0, {WARP_SIZE}), got {delta}")
        self.stats.shuffles += 1
        if delta == 0:
            return values.copy()
        out = values.copy()
        out[delta:] = values[:-delta]
        return out

    def shfl_down(self, values, delta: int) -> np.ndarray:
        """CUDA __shfl_down: lane i gets the value of lane i+delta."""
        values = self._check(values)
        if not 0 <= delta < WARP_SIZE:
            raise ValueError(f"shuffle delta must be in [0, {WARP_SIZE}), got {delta}")
        self.stats.shuffles += 1
        if delta == 0:
            return values.copy()
        out = values.copy()
        out[:-delta] = values[delta:]
        return out

    def shfl_idx(self, values, src_lane: int) -> np.ndarray:
        """CUDA __shfl: broadcast the value held by ``src_lane`` to all lanes."""
        values = self._check(values)
        if not 0 <= src_lane < WARP_SIZE:
            raise ValueError(f"source lane must be in [0, {WARP_SIZE}), got {src_lane}")
        self.stats.shuffles += 1
        return np.full(WARP_SIZE, values[src_lane], dtype=values.dtype)

    def inclusive_scan(self, values, op: AssociativeOp) -> np.ndarray:
        """Inclusive scan across the warp in log2(32) shuffle steps.

        The Kogge-Stone ladder: at step d each lane i >= 2^d combines in
        the value from lane i - 2^d.  Lanes below 2^d are masked via the
        identity-preserving shfl_up semantics plus an explicit mask.
        """
        values = self._check(values)
        result = values.copy()
        delta = 1
        while delta < WARP_SIZE:
            shifted = self.shfl_up(result, delta)
            contribute = self.lane_ids >= delta
            combined = op.apply(shifted, result)
            result = np.where(contribute, combined, result).astype(values.dtype)
            delta *= 2
        return result

    def strided_inclusive_scan(
        self, values, op: AssociativeOp, stride: int
    ) -> np.ndarray:
        """Strided (tuple) inclusive scan across the warp.

        Lane ``i`` accumulates lanes ``i, i - stride, i - 2*stride, ...``
        — the warp-level form of the paper's Section 2.3 strided
        summation.  The Kogge-Stone ladder simply starts at ``stride``
        and doubles: ceil(log2(32/stride)) shuffle steps.  ``stride >= 32``
        degenerates to a copy (no two lanes share a tuple lane).
        """
        values = self._check(values)
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        result = values.copy()
        delta = stride
        while delta < WARP_SIZE:
            shifted = self.shfl_up(result, delta)
            contribute = self.lane_ids >= delta
            combined = op.apply(shifted, result)
            result = np.where(contribute, combined, result).astype(values.dtype)
            delta *= 2
        return result

    def exclusive_scan(self, values, op: AssociativeOp) -> np.ndarray:
        """Exclusive warp scan: shift the inclusive result up one lane and
        seed lane 0 with the identity."""
        values = self._check(values)
        inclusive = self.inclusive_scan(values, op)
        shifted = self.shfl_up(inclusive, 1)
        shifted[0] = op.identity(values.dtype)
        return shifted

    def reduce(self, values, op: AssociativeOp) -> np.ndarray:
        """Warp-wide reduction; every lane ends up holding the total
        (implemented as inclusive scan + broadcast of lane 31, which is
        how SAM obtains its subchunk totals)."""
        inclusive = self.inclusive_scan(values, op)
        return self.shfl_idx(inclusive, WARP_SIZE - 1)
