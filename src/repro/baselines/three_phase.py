"""The classic three-phase scan (Thrust / CUDPP strategy).

Section 2.1 / 3.1: "CUDPP implements the classic three-phase approach
... it performs 4n global memory accesses"; "Thrust employs a two-pass
scan-then-propagate technique that also requires 4n data movement".

Per scan pass:

1. *Local scan kernel* — every chunk is read, scanned locally, and the
   scanned chunk is **written back** to global memory; chunk totals go
   to an auxiliary array (this is the first read+write of every
   element).
2. *Auxiliary scan* — an exclusive scan over the chunk totals (one
   small kernel, recursing through this same pipeline when the
   auxiliary array itself exceeds a chunk: "very large inputs may
   require a third, even coarser level").
3. *Carry-add kernel* — every scanned chunk is **read again**, the
   chunk carry is combined in, and the result is **written again** (the
   second read+write — the communication inefficiency SAM removes).

Each phase is a separate kernel launch (the implicit grid-wide barrier
between phases).  Higher orders iterate the full pipeline ``q`` times —
``4qn`` traffic; tuples use strided local scans with ``s``-wide
auxiliary entries.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaselineResult, chunk_bounds, chunk_count
from repro.core.localscan import (
    apply_lane_carries,
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
)
from repro.core.tuning import tune_items_per_thread
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X, GPUSpec
from repro.ops import ADD, get_op


class ThreePhaseScan:
    """Thrust/CUDPP-style hierarchical multi-kernel scan engine.

    ``max_elements`` models CUDPP's documented limitation ("CUDPP does
    not support problem sizes above 2^25", Section 5.1): pass it to
    reproduce that failure mode; ``None`` (Thrust flavor) is unlimited.
    """

    name = "three_phase"

    def __init__(
        self,
        spec: GPUSpec = TITAN_X,
        threads_per_block: Optional[int] = None,
        items_per_thread: Optional[int] = None,
        policy="round_robin",
        max_elements: Optional[int] = None,
    ):
        self.spec = spec
        self.threads_per_block = threads_per_block or spec.threads_per_block
        self.items_per_thread = items_per_thread
        self.policy = policy
        self.max_elements = max_elements
        self._alloc_id = 0

    def _fresh_name(self, label: str) -> str:
        self._alloc_id += 1
        return f"tp_{label}_{self._alloc_id}"

    # -- public API ------------------------------------------------------

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> BaselineResult:
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1 or tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        if self.max_elements is not None and len(array) > self.max_elements:
            raise ValueError(
                f"{self.name} engine configured with max_elements="
                f"{self.max_elements}; input has {len(array)} elements"
            )
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)

        gmem = GlobalMemory()
        if len(array) == 0:
            return self._result(array.copy(), gmem, 0, order, tuple_size, op, inclusive)

        ping = gmem.alloc_like(self._fresh_name("buf"), array)
        pong = gmem.alloc(self._fresh_name("buf"), len(array), dtype)
        src, dst = ping, pong
        for iteration in range(order):
            last = iteration == order - 1
            self._scan_pass(
                gmem,
                src,
                dst,
                tuple_size,
                op,
                inclusive=inclusive or not last,
            )
            src, dst = dst, src
        num_chunks = chunk_count(len(array), self._chunk_elements(len(array)))
        return self._result(
            src.data.copy(), gmem, num_chunks, order, tuple_size, op, inclusive
        )

    # -- internals ---------------------------------------------------------

    def _chunk_elements(self, n: int) -> int:
        v = self.items_per_thread or tune_items_per_thread(n, self.spec, self.threads_per_block)
        return self.threads_per_block * v

    def _grid(self, num_chunks: int) -> int:
        return min(self.spec.persistent_blocks, num_chunks)

    def _scan_pass(self, gmem, src, dst, tuple_size, op, inclusive) -> None:
        """One full scan of ``src`` into ``dst`` (4n traffic)."""
        n = len(src.data)
        e = self._chunk_elements(n)
        num_chunks = chunk_count(n, e)
        dtype = src.data.dtype
        identity = op.identity(dtype)

        aux = gmem.alloc(self._fresh_name("aux"), num_chunks * tuple_size, dtype)

        def local_scan_kernel(ctx):
            """Phase 1: scan each chunk locally; store chunk + totals."""
            for chunk in range(ctx.block_id, num_chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, n)
                indices = start + np.arange(count)
                data = gmem.load(src, indices)
                scanned, sums = strided_inclusive_scan(data, start, tuple_size, op)
                gmem.store(dst, indices, scanned)
                gmem.store(
                    aux,
                    chunk * tuple_size + np.arange(tuple_size),
                    sums,
                )

        launch_kernel(
            local_scan_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=self._grid(num_chunks),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )

        # Phase 2: exclusive scan of the chunk totals (per tuple lane).
        # The aux layout [chunk][lane] makes this exactly a tuple-based
        # exclusive scan of the flat array — recurse when it is large.
        if num_chunks > 1:
            self._aux_exclusive_scan(gmem, aux, tuple_size, op)

        def carry_add_kernel(ctx):
            """Phase 3: re-read every chunk, fold in its carry, rewrite."""
            for chunk in range(ctx.block_id, num_chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, n)
                indices = start + np.arange(count)
                scanned = gmem.load(dst, indices)
                if num_chunks > 1:
                    carries = gmem.load(
                        aux, chunk * tuple_size + np.arange(tuple_size)
                    )
                else:
                    carries = np.full(tuple_size, identity, dtype=dtype)
                if inclusive:
                    corrected = apply_lane_carries(
                        scanned, start, tuple_size, op, carries
                    )
                else:
                    corrected = strided_exclusive_from_inclusive(
                        scanned, start, tuple_size, op, carries
                    )
                gmem.store(dst, indices, corrected)

        launch_kernel(
            carry_add_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=self._grid(num_chunks),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )

    def _aux_exclusive_scan(self, gmem, aux, tuple_size, op) -> None:
        """Phase 2: exclusive per-lane scan of the auxiliary array."""
        m = len(aux.data)
        e = self.threads_per_block * (self.items_per_thread or 1)
        if m <= e:
            def single_block_kernel(ctx):
                indices = np.arange(m)
                data = gmem.load(aux, indices)
                scanned, _ = strided_inclusive_scan(data, 0, tuple_size, op)
                identity = op.identity(data.dtype)
                carries = np.full(tuple_size, identity, dtype=data.dtype)
                shifted = strided_exclusive_from_inclusive(
                    scanned, 0, tuple_size, op, carries
                )
                gmem.store(aux, indices, shifted)

            launch_kernel(
                single_block_kernel,
                self.spec,
                gmem=gmem,
                num_blocks=1,
                threads_per_block=self.threads_per_block,
                policy=self.policy,
            )
            return
        # Coarser level: run the full three-phase pipeline on the aux
        # array itself ("a third, even coarser level of granularity").
        scratch = gmem.alloc(self._fresh_name("aux_scratch"), m, aux.data.dtype)
        self._scan_pass(gmem, aux, scratch, tuple_size, op, inclusive=False)
        def copy_back_kernel(ctx):
            e_local = self._chunk_elements(m)
            chunks = chunk_count(m, e_local)
            for chunk in range(ctx.block_id, chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e_local, m)
                indices = start + np.arange(count)
                gmem.store(aux, indices, gmem.load(scratch, indices))

        launch_kernel(
            copy_back_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=self._grid(chunk_count(m, self._chunk_elements(m))),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )

    def _result(self, values, gmem, num_chunks, order, tuple_size, op, inclusive):
        return BaselineResult(
            values=values,
            stats=gmem.stats.copy(),
            num_chunks=num_chunks,
            engine=self.name,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
        )
