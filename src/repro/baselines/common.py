"""Shared machinery for the baseline scan engines."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gpusim.counters import TrafficStats
from repro.ops import AssociativeOp


@dataclass
class BaselineResult:
    """Result of one baseline engine run (mirrors ``SamResult``)."""

    values: np.ndarray
    stats: TrafficStats
    num_chunks: int
    engine: str
    order: int
    tuple_size: int
    op_name: str
    inclusive: bool
    l2: object = None  # the L2Cache model when one was attached

    def words_per_element(self) -> float:
        """Global words moved per input element (compare vs 2/3/4...)."""
        return self.stats.words_per_element(max(1, len(self.values)))


def chunk_count(n: int, chunk_elements: int) -> int:
    return math.ceil(n / chunk_elements)


def chunk_bounds(chunk: int, chunk_elements: int, n: int):
    """(start, count) of a chunk, truncating the final one."""
    start = chunk * chunk_elements
    return start, min(chunk_elements, n - start)


def exclusive_shift_lanes(
    scanned: np.ndarray,
    offset: int,
    tuple_size: int,
    op: AssociativeOp,
    carries: np.ndarray,
) -> np.ndarray:
    """Carry-corrected exclusive output from a lane-local inclusive scan.

    Same math as :func:`repro.core.localscan.strided_exclusive_from_inclusive`;
    re-exported here so baselines need not import SAM internals.
    """
    from repro.core.localscan import strided_exclusive_from_inclusive

    return strided_exclusive_from_inclusive(scanned, offset, tuple_size, op, carries)
