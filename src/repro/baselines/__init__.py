"""Baseline scan implementations the paper compares against.

Each baseline implements, on the same GPU simulator as SAM, the
documented *strategy* of one of the libraries in Sections 2.1 / 3.1:

* :class:`ThreePhaseScan` — the classic scan-then-propagate hierarchy
  used by Thrust and CUDPP: separate kernels per phase, every element
  read and written twice → ``4n`` global traffic.
* :class:`ReduceThenScan` — MGPU's strategy: a read-only reduction
  pass, then a scan pass → ``3n`` global traffic.
* :class:`DecoupledLookbackScan` — CUB's single-pass strategy: tile
  status flags (aggregate-available / prefix-available) with
  opportunistic short-circuiting → ``2n`` traffic but ``O(n)``
  auxiliary memory and, on real hardware, a run-to-run timing
  dependence (Section 3.1).  Supports tuples via a tuple *data type*
  (whole tuples per thread — degrading coalescing and register usage
  exactly as Section 2.3 describes) and higher orders by iterating the
  full scan (``2qn`` traffic).
* :class:`ReorderScanEngine` — the reorder / scan / undo-reorder
  formulation of tuple scans (Section 2.3's strawman), an ablation
  baseline.

All engines return results with ``.values`` (bit-identical to the
serial reference) and ``.stats`` (measured traffic).
"""

from repro.baselines.common import BaselineResult
from repro.baselines.lookback import DecoupledLookbackScan
from repro.baselines.reduce_scan import ReduceThenScan
from repro.baselines.reorder import ReorderScanEngine
from repro.baselines.streamscan import StreamScan
from repro.baselines.three_phase import ThreePhaseScan

__all__ = [
    "BaselineResult",
    "DecoupledLookbackScan",
    "ReduceThenScan",
    "ReorderScanEngine",
    "StreamScan",
    "ThreePhaseScan",
]
