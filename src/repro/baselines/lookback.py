"""Single-pass scan with decoupled look-back (the CUB strategy).

Section 3.1: CUB "incorporates a work-efficient, single-pass method
with 2n data movement ... a variable look-back strategy for propagating
the carries ... includes an opportunistic short-circuit in the event
that the full carry is already available."

Protocol per tile (Merrill & Garland's decoupled look-back):

* publish the tile's *aggregate* with status ``A`` as soon as it is
  computed (tile 0 publishes its *inclusive prefix* with status ``P``
  directly);
* walk predecessors backwards, folding in aggregates, until a tile with
  status ``P`` is found — that tile's inclusive prefix short-circuits
  the walk;
* publish the own inclusive prefix with status ``P``; correct and
  store the tile.

Contrasts with SAM that the paper calls out, reproduced here:

* auxiliary arrays are ``O(n)`` (one status/aggregate/prefix entry per
  tile) versus SAM's ``O(1)`` circular buffers;
* CUB "laggardly pulls the running carry along" — the walk length
  depends on timing, so on real hardware the combine order can differ
  run to run for pseudo-associative operators (our simulator is
  deterministic for a fixed schedule policy, but different policies do
  produce different walk lengths — observable in the poll counters);
* higher orders must iterate the *entire* scan: ``q`` launches and
  ``2qn`` traffic (versus SAM's ``2n``);
* tuples are handled via a tuple *data type*: each thread processes
  whole tuples, so per-element loads are strided (coalescing degrades
  with ``s``, measured by the transaction counters) and per-thread
  register demand scales with ``s`` (modeled by shrinking the tuples
  per thread so the register budget stays fixed).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaselineResult, chunk_bounds, chunk_count
from repro.core.localscan import (
    apply_lane_carries,
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
)
from repro.core.tuning import tune_items_per_thread
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.cache import L2Cache
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X, GPUSpec
from repro.ops import ADD, get_op

#: Tile status codes (Merrill & Garland).
STATUS_INVALID = 0   # "X": nothing published yet
STATUS_AGGREGATE = 1  # "A": tile aggregate available
STATUS_PREFIX = 2    # "P": tile inclusive prefix available


class DecoupledLookbackScan:
    """CUB-style single-pass scan engine (2n traffic, O(n) aux memory)."""

    name = "decoupled_lookback"

    def __init__(
        self,
        spec: GPUSpec = TITAN_X,
        threads_per_block: Optional[int] = None,
        items_per_thread: Optional[int] = None,
        policy="round_robin",
        l2_bytes: Optional[int] = None,
    ):
        self.spec = spec
        self.threads_per_block = threads_per_block or spec.threads_per_block
        self.items_per_thread = items_per_thread
        self.policy = policy
        self.l2_bytes = l2_bytes
        self._alloc_id = 0

    def _fresh_name(self, label: str) -> str:
        self._alloc_id += 1
        return f"lb_{label}_{self._alloc_id}"

    # -- public API ------------------------------------------------------

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> BaselineResult:
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1 or tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        if tuple_size > 1 and len(array) % tuple_size != 0:
            raise ValueError(
                "the tuple-data-type formulation needs the input size to be "
                f"a multiple of the tuple size ({len(array)} % {tuple_size} != 0)"
            )
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)

        l2 = L2Cache(self.l2_bytes) if self.l2_bytes else None
        gmem = GlobalMemory(l2=l2)
        if len(array) == 0:
            return self._result(array.copy(), gmem, 0, order, tuple_size, op, inclusive)

        ping = gmem.alloc_like(self._fresh_name("buf"), array)
        pong = gmem.alloc(self._fresh_name("buf"), len(array), dtype)
        src, dst = ping, pong
        num_tiles = 0
        # Higher orders iterate the whole single-pass scan: q launches,
        # 2qn traffic (the contrast with SAM's iterated computation stage).
        for iteration in range(order):
            last = iteration == order - 1
            num_tiles = self._scan_pass(
                gmem, src, dst, tuple_size, op, inclusive or not last
            )
            src, dst = dst, src
        return self._result(
            src.data.copy(), gmem, num_tiles, order, tuple_size, op, inclusive
        )

    # -- internals ---------------------------------------------------------

    def _tile_geometry(self, n: int, tuple_size: int):
        """(tile_elements, tuples_per_thread) for this problem size.

        The per-thread register budget is ``v`` words; with the tuple
        data type each thread holds whole ``s``-word tuples, so it gets
        ``max(1, v // s)`` of them — the register-pressure model.
        """
        v = self.items_per_thread or tune_items_per_thread(
            n, self.spec, self.threads_per_block
        )
        if tuple_size == 1:
            return self.threads_per_block * v, v
        tuples_per_thread = max(1, v // tuple_size)
        return self.threads_per_block * tuples_per_thread * tuple_size, tuples_per_thread

    def _poll_status(self, gmem, status, tile: int) -> int:
        value = int(gmem.load(status, np.asarray([tile]))[0])
        gmem.stats.flag_polls += 1
        if value == STATUS_INVALID:
            gmem.stats.failed_flag_polls += 1
        return value

    def _load_tile(self, gmem, src, start, count, tuple_size, per_thread):
        """Load one tile with the engine's access pattern.

        ``tuple_size == 1``: striped arrangement — consecutive threads
        load consecutive elements; fully coalesced rows.

        ``tuple_size > 1``: blocked tuple arrangement — thread ``i``
        loads tuples ``[i*pt, (i+1)*pt)`` one element at a time, so each
        warp access strides ``pt * s`` words; the transaction counters
        record the degraded coalescing.
        """
        if tuple_size == 1:
            return gmem.load(src, start + np.arange(count))
        t = self.threads_per_block
        data = np.zeros(count, dtype=src.data.dtype)
        thread_ids = np.arange(t)
        for u in range(per_thread):
            for j in range(tuple_size):
                offsets = (thread_ids * per_thread + u) * tuple_size + j
                mask = offsets < count
                if not mask.any():
                    continue
                loaded = gmem.load(src, start + offsets, mask=mask)
                data[offsets[mask]] = loaded[mask]
        return data

    def _store_tile(self, gmem, dst, start, values, tuple_size, per_thread):
        """Store one tile with the same arrangement as the load."""
        count = len(values)
        if tuple_size == 1:
            gmem.store(dst, start + np.arange(count), values)
            return
        t = self.threads_per_block
        thread_ids = np.arange(t)
        for u in range(per_thread):
            for j in range(tuple_size):
                offsets = (thread_ids * per_thread + u) * tuple_size + j
                mask = offsets < count
                if not mask.any():
                    continue
                gmem.store(dst, start + offsets, values[np.minimum(offsets, count - 1)], mask=mask)

    def _scan_pass(self, gmem, src, dst, tuple_size, op, inclusive) -> int:
        n = len(src.data)
        tile_elements, per_thread = self._tile_geometry(n, tuple_size)
        num_tiles = chunk_count(n, tile_elements)
        dtype = src.data.dtype
        identity = op.identity(dtype)

        status = gmem.alloc(
            self._fresh_name("status"), num_tiles, np.int64, fill=STATUS_INVALID
        )
        aggregates = gmem.alloc(
            self._fresh_name("agg"), num_tiles * tuple_size, dtype
        )
        prefixes = gmem.alloc(
            self._fresh_name("prefix"), num_tiles * tuple_size, dtype
        )

        def kernel(ctx):
            for tile in range(ctx.block_id, num_tiles, ctx.num_blocks):
                start, count = chunk_bounds(tile, tile_elements, n)
                data = self._load_tile(gmem, src, start, count, tuple_size, per_thread)
                scanned, agg = strided_inclusive_scan(data, start, tuple_size, op)
                lane_idx = tile * tuple_size + np.arange(tuple_size)

                if tile == 0:
                    carry = np.full(tuple_size, identity, dtype=dtype)
                    gmem.store(prefixes, lane_idx, agg)
                    gmem.fence()
                    gmem.store_scalar(status, tile, STATUS_PREFIX)
                else:
                    gmem.store(aggregates, lane_idx, agg)
                    gmem.fence()
                    gmem.store_scalar(status, tile, STATUS_AGGREGATE)
                    # Variable look-back with opportunistic short-circuit.
                    running = np.full(tuple_size, identity, dtype=dtype)
                    j = tile - 1
                    while True:
                        st = self._poll_status(gmem, status, j)
                        if st == STATUS_INVALID:
                            yield
                            continue
                        row_idx = j * tuple_size + np.arange(tuple_size)
                        if st == STATUS_PREFIX:
                            row = gmem.load(prefixes, row_idx)
                            running = op.apply(row, running)
                            break
                        row = gmem.load(aggregates, row_idx)
                        running = op.apply(row, running)
                        gmem.stats.carry_additions += tuple_size
                        j -= 1
                    carry = running
                    inclusive_prefix = op.apply(carry, agg)
                    gmem.stats.carry_additions += tuple_size
                    gmem.store(prefixes, lane_idx, inclusive_prefix)
                    gmem.fence()
                    gmem.store_scalar(status, tile, STATUS_PREFIX)

                if inclusive:
                    corrected = apply_lane_carries(
                        scanned, start, tuple_size, op, carry
                    )
                else:
                    corrected = strided_exclusive_from_inclusive(
                        scanned, start, tuple_size, op, carry
                    )
                self._store_tile(
                    gmem, dst, start, corrected, tuple_size, per_thread
                )
                yield

        launch_kernel(
            kernel,
            self.spec,
            gmem=gmem,
            num_blocks=min(self.spec.persistent_blocks, num_tiles),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )
        return num_tiles

    def _result(self, values, gmem, num_tiles, order, tuple_size, op, inclusive):
        return BaselineResult(
            values=values,
            stats=gmem.stats.copy(),
            num_chunks=num_tiles,
            engine=self.name,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
            l2=gmem.l2,
        )
