"""Tuple scans via reorder / scan / undo-reorder (Section 2.3 strawman).

"Computing a tuple-based prefix sum can be accomplished by first
reordering the elements, i.e., grouping them by location within the
tuple, then performing multiple smaller prefix sums, and finally
undoing the reordering ... However, since the two reordering steps
require extra memory accesses, it is slow."

This engine makes that cost measurable: the gather and scatter kernels
run on the simulator (2n words each, and the strided side of each
transposition is uncoalesced — visible in the transaction counters),
and the ``s`` per-lane scans are delegated to any base engine.  Used by
the ablation benchmark that justifies SAM's direct strided approach.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineResult, chunk_bounds, chunk_count
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.ops import ADD, get_op


class ReorderScanEngine:
    """Wrap a conventional scan engine into a tuple scan by transposing.

    ``base_engine`` is any engine with a
    ``run(values, order=..., op=..., inclusive=...)`` method (SAM or a
    baseline); its traffic is merged into this engine's counters.
    """

    name = "reorder_scan"

    def __init__(self, base_engine):
        self.base_engine = base_engine
        self.spec = base_engine.spec
        self.threads_per_block = base_engine.threads_per_block

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> BaselineResult:
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if tuple_size < 1 or order < 1:
            raise ValueError("order and tuple_size must be >= 1")
        if tuple_size > 1 and len(array) % tuple_size != 0:
            raise ValueError(
                "reordering needs the input size to be a multiple of the "
                f"tuple size ({len(array)} % {tuple_size} != 0)"
            )
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)
        n = len(array)

        gmem = GlobalMemory()
        if n == 0 or tuple_size == 1:
            # Degenerate: no reordering needed; delegate entirely.
            base = self.base_engine.run(array, order=order, op=op, inclusive=inclusive)
            gmem.stats.merge(base.stats)
            return self._result(base.values, gmem, order, tuple_size, op, inclusive)

        src = gmem.alloc_like("ro_src", array)
        grouped = gmem.alloc("ro_grouped", n, dtype)
        per_lane = n // tuple_size

        def gather_kernel(ctx):
            """Group elements by tuple lane: grouped[l*per_lane + j] =
            src[j*s + l].  Contiguous writes, strided (uncoalesced) reads."""
            e = self.threads_per_block
            chunks = chunk_count(n, e)
            for chunk in range(ctx.block_id, chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, n)
                out_positions = start + np.arange(count)
                lanes = out_positions // per_lane
                within = out_positions % per_lane
                src_positions = within * tuple_size + lanes
                data = gmem.load(src, src_positions)
                gmem.store(grouped, out_positions, data)

        launch_kernel(
            gather_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=min(self.spec.persistent_blocks, chunk_count(n, self.threads_per_block)),
            threads_per_block=self.threads_per_block,
        )

        # One independent scan per lane segment (the "multiple smaller
        # prefix sums"); traffic of each run is merged in.
        scanned = np.empty(n, dtype=dtype)
        for lane in range(tuple_size):
            segment = grouped.data[lane * per_lane : (lane + 1) * per_lane].copy()
            base = self.base_engine.run(segment, order=order, op=op, inclusive=inclusive)
            scanned[lane * per_lane : (lane + 1) * per_lane] = base.values
            gmem.stats.merge(base.stats)
        grouped.data[:] = scanned

        out = gmem.alloc("ro_out", n, dtype)

        def scatter_kernel(ctx):
            """Undo the grouping: contiguous reads, strided writes."""
            e = self.threads_per_block
            chunks = chunk_count(n, e)
            for chunk in range(ctx.block_id, chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, n)
                in_positions = start + np.arange(count)
                lanes = in_positions // per_lane
                within = in_positions % per_lane
                dst_positions = within * tuple_size + lanes
                data = gmem.load(grouped, in_positions)
                gmem.store(out, dst_positions, data)

        launch_kernel(
            scatter_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=min(self.spec.persistent_blocks, chunk_count(n, self.threads_per_block)),
            threads_per_block=self.threads_per_block,
        )
        return self._result(out.data.copy(), gmem, order, tuple_size, op, inclusive)

    def _result(self, values, gmem, order, tuple_size, op, inclusive):
        return BaselineResult(
            values=values,
            stats=gmem.stats.copy(),
            num_chunks=0,
            engine=self.name,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
        )
