"""StreamScan (Yan, Long, Zhang [27]) — the other single-pass scan.

Section 3.1: "StreamScan implements a matrix-based intra-block scan
approach that is communication efficient and only requires 2n data
movement.  It runs in a single computation phase and, therefore, does
not need any global barriers and only a single kernel invocation."

Two properties distinguish it from both SAM and CUB's look-back:

* the *matrix-based* intra-block scan: a tile is treated as a rows x
  cols matrix; rows are scanned independently (fully parallel), the
  row totals' column is scanned, and the column prefixes are added back
  — a different decomposition from the warp/shared-memory hierarchy;
* inter-block propagation is *adjacent-only*: block i waits for block
  i-1's inclusive prefix, adds its tile total, publishes.  That is the
  minimal-work O(n) chain (SAM's §5.4 "chained" scheme is the same
  idea inside a persistent kernel), with none of SAM's redundant
  additions but a full serial dependence — the trade-off the paper's
  Figure 15/16 quantifies.

SAM "adopts all of these ideas, including the auto-tuner" — this engine
shares the repository's auto-tuner for its tile size.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaselineResult, chunk_bounds, chunk_count
from repro.core.localscan import (
    apply_lane_carries,
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
)
from repro.core.tuning import tune_items_per_thread
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X, GPUSpec
from repro.ops import ADD, AssociativeOp, get_op


def matrix_block_scan(values: np.ndarray, cols: int, op: AssociativeOp) -> np.ndarray:
    """StreamScan's matrix-based intra-block inclusive scan.

    Reshape (conceptually) into rows of ``cols`` elements; scan each row
    independently; scan the row-total column; add each row's prefix to
    the next row.  Equivalent to a flat scan but organized for maximum
    register-level parallelism.
    """
    values = np.asarray(values)
    n = len(values)
    if n == 0:
        return values.copy()
    full_rows = n // cols
    out = np.empty_like(values)
    identity = op.identity(values.dtype)

    body = values[: full_rows * cols].reshape(full_rows, cols)
    scanned_rows = op.accumulate(body, axis=1) if full_rows else body
    if full_rows:
        row_totals = scanned_rows[:, -1]
        row_prefixes = op.accumulate(row_totals)
        out_body = scanned_rows.copy()
        if full_rows > 1:
            out_body[1:] = op.apply(
                np.repeat(row_prefixes[:-1, None], cols, axis=1), scanned_rows[1:]
            )
        out[: full_rows * cols] = out_body.reshape(-1)
        carry = row_prefixes[-1]
    else:
        carry = identity
    tail = values[full_rows * cols :]
    if len(tail):
        tail_scan = op.accumulate(tail)
        out[full_rows * cols :] = op.apply(
            np.full(len(tail), carry, dtype=values.dtype), tail_scan
        )
    return out


class StreamScan:
    """StreamScan-style single-pass engine (2n traffic, adjacent chain)."""

    name = "streamscan"

    def __init__(
        self,
        spec: GPUSpec = TITAN_X,
        threads_per_block: Optional[int] = None,
        items_per_thread: Optional[int] = None,
        policy="round_robin",
        matrix_cols: int = 32,
    ):
        if matrix_cols < 1:
            raise ValueError(f"matrix_cols must be >= 1, got {matrix_cols}")
        self.spec = spec
        self.threads_per_block = threads_per_block or spec.threads_per_block
        self.items_per_thread = items_per_thread
        self.policy = policy
        self.matrix_cols = matrix_cols
        self._alloc_id = 0

    def _fresh_name(self, label: str) -> str:
        self._alloc_id += 1
        return f"ss_{label}_{self._alloc_id}"

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> BaselineResult:
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1 or tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)

        gmem = GlobalMemory()
        if len(array) == 0:
            return self._result(array.copy(), gmem, 0, order, tuple_size, op, inclusive)

        ping = gmem.alloc_like(self._fresh_name("buf"), array)
        pong = gmem.alloc(self._fresh_name("buf"), len(array), dtype)
        src, dst = ping, pong
        num_tiles = 0
        # Like CUB, higher orders re-run the whole scan (StreamScan has
        # no iterated-computation mode): 2qn traffic.
        for iteration in range(order):
            last = iteration == order - 1
            num_tiles = self._scan_pass(
                gmem, src, dst, tuple_size, op, inclusive or not last
            )
            src, dst = dst, src
        return self._result(
            src.data.copy(), gmem, num_tiles, order, tuple_size, op, inclusive
        )

    def _scan_pass(self, gmem, src, dst, tuple_size, op, inclusive) -> int:
        n = len(src.data)
        v = self.items_per_thread or tune_items_per_thread(
            n, self.spec, self.threads_per_block
        )
        tile_elements = self.threads_per_block * v
        num_tiles = chunk_count(n, tile_elements)
        dtype = src.data.dtype
        identity = op.identity(dtype)

        # Adjacent-chain state: each tile's *inclusive* prefix, plus a
        # ready flag.  O(n/tile) storage, one producer, one consumer.
        prefixes = gmem.alloc(self._fresh_name("prefix"), num_tiles * tuple_size, dtype)
        flags = gmem.alloc(self._fresh_name("flag"), num_tiles, np.int64)
        cols = self.matrix_cols

        def kernel(ctx):
            for tile in range(ctx.block_id, num_tiles, ctx.num_blocks):
                start, count = chunk_bounds(tile, tile_elements, n)
                indices = start + np.arange(count)
                data = gmem.load(src, indices)
                if tuple_size == 1:
                    scanned = matrix_block_scan(data, cols, op)
                    totals = scanned[-1:].copy()
                else:
                    scanned, totals = strided_inclusive_scan(
                        data, start, tuple_size, op
                    )
                lane_idx = tile * tuple_size + np.arange(tuple_size)
                if tile == 0:
                    carry = np.full(tuple_size, identity, dtype=dtype)
                else:
                    # Adjacent-only dependence: wait for tile - 1.
                    while True:
                        ready = gmem.poll(flags, np.asarray([tile - 1]), 1)
                        if ready[0]:
                            break
                        yield
                    carry = gmem.load(
                        prefixes, (tile - 1) * tuple_size + np.arange(tuple_size)
                    )
                own_prefix = op.apply(carry, totals)
                gmem.stats.carry_additions += tuple_size
                gmem.store(prefixes, lane_idx, own_prefix)
                gmem.fence()
                gmem.store_scalar(flags, tile, 1)
                if inclusive:
                    corrected = apply_lane_carries(
                        scanned, start, tuple_size, op, carry
                    )
                else:
                    corrected = strided_exclusive_from_inclusive(
                        scanned, start, tuple_size, op, carry
                    )
                gmem.store(dst, indices, corrected)
                yield

        launch_kernel(
            kernel,
            self.spec,
            gmem=gmem,
            num_blocks=min(self.spec.persistent_blocks, num_tiles),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )
        return num_tiles

    def _result(self, values, gmem, num_tiles, order, tuple_size, op, inclusive):
        return BaselineResult(
            values=values,
            stats=gmem.stats.copy(),
            num_chunks=num_tiles,
            engine=self.name,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
        )
