"""Reduce-then-scan (the MGPU strategy).

Section 3.1: "MGPU is more efficient and only performs 3n global memory
accesses ... because the first pass of its two-pass reduce-then-scan
strategy is read-only."

Per scan pass:

1. *Reduce kernel* — read every chunk, reduce per tuple lane, write
   only the chunk totals (n reads, ~0 writes).
2. *Auxiliary scan* — exclusive scan of the totals.
3. *Scan kernel* — read every chunk again, scan locally, fold in the
   carry, write the final result (n reads + n writes).

Total ≈ 3n words.  Higher orders iterate the pipeline (3qn); tuples use
strided reductions with ``s``-wide auxiliary entries.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import BaselineResult, chunk_bounds, chunk_count
from repro.core.localscan import (
    apply_lane_carries,
    lane_start_in_chunk,
    strided_exclusive_from_inclusive,
    strided_inclusive_scan,
)
from repro.core.tuning import tune_items_per_thread
from repro.gpusim.kernel import launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.gpusim.spec import TITAN_X, GPUSpec
from repro.ops import ADD, get_op


class ReduceThenScan:
    """MGPU-style two-pass scan engine (3n traffic)."""

    name = "reduce_then_scan"

    def __init__(
        self,
        spec: GPUSpec = TITAN_X,
        threads_per_block: Optional[int] = None,
        items_per_thread: Optional[int] = None,
        policy="round_robin",
    ):
        self.spec = spec
        self.threads_per_block = threads_per_block or spec.threads_per_block
        self.items_per_thread = items_per_thread
        self.policy = policy
        self._alloc_id = 0

    def _fresh_name(self, label: str) -> str:
        self._alloc_id += 1
        return f"rs_{label}_{self._alloc_id}"

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> BaselineResult:
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1 or tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)

        gmem = GlobalMemory()
        if len(array) == 0:
            return self._result(array.copy(), gmem, 0, order, tuple_size, op, inclusive)

        ping = gmem.alloc_like(self._fresh_name("buf"), array)
        pong = gmem.alloc(self._fresh_name("buf"), len(array), dtype)
        src, dst = ping, pong
        for iteration in range(order):
            last = iteration == order - 1
            self._scan_pass(gmem, src, dst, tuple_size, op, inclusive or not last)
            src, dst = dst, src
        num_chunks = chunk_count(len(array), self._chunk_elements(len(array)))
        return self._result(
            src.data.copy(), gmem, num_chunks, order, tuple_size, op, inclusive
        )

    def _chunk_elements(self, n: int) -> int:
        v = self.items_per_thread or tune_items_per_thread(
            n, self.spec, self.threads_per_block
        )
        return self.threads_per_block * v

    def _grid(self, num_chunks: int) -> int:
        return min(self.spec.persistent_blocks, num_chunks)

    def _scan_pass(self, gmem, src, dst, tuple_size, op, inclusive) -> None:
        n = len(src.data)
        e = self._chunk_elements(n)
        num_chunks = chunk_count(n, e)
        dtype = src.data.dtype
        identity = op.identity(dtype)
        aux = gmem.alloc(self._fresh_name("aux"), num_chunks * tuple_size, dtype)

        def reduce_kernel(ctx):
            """Phase 1 (read-only over the data): per-lane chunk totals."""
            for chunk in range(ctx.block_id, num_chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, n)
                data = gmem.load(src, start + np.arange(count))
                sums = np.full(tuple_size, identity, dtype=dtype)
                for lane in range(tuple_size):
                    begin = lane_start_in_chunk(start, lane, tuple_size)
                    if begin >= count:
                        continue
                    sums[lane] = op.reduce(data[begin::tuple_size])
                gmem.store(aux, chunk * tuple_size + np.arange(tuple_size), sums)

        launch_kernel(
            reduce_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=self._grid(num_chunks),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )

        if num_chunks > 1:
            self._aux_exclusive_scan(gmem, aux, tuple_size, op)

        def scan_kernel(ctx):
            """Phase 3: re-read chunks, scan, fold carry, write result."""
            for chunk in range(ctx.block_id, num_chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, n)
                indices = start + np.arange(count)
                data = gmem.load(src, indices)
                scanned, _ = strided_inclusive_scan(data, start, tuple_size, op)
                if num_chunks > 1:
                    carries = gmem.load(
                        aux, chunk * tuple_size + np.arange(tuple_size)
                    )
                else:
                    carries = np.full(tuple_size, identity, dtype=dtype)
                if inclusive:
                    corrected = apply_lane_carries(
                        scanned, start, tuple_size, op, carries
                    )
                else:
                    corrected = strided_exclusive_from_inclusive(
                        scanned, start, tuple_size, op, carries
                    )
                gmem.store(dst, indices, corrected)

        launch_kernel(
            scan_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=self._grid(num_chunks),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )

    def _aux_exclusive_scan(self, gmem, aux, tuple_size, op) -> None:
        """Exclusive per-lane scan of the chunk totals.

        Small enough to fit one block in every workload we drive (the
        auxiliary array shrinks by the chunk size each level); recursion
        uses this same reduce-then-scan pipeline when it is not.
        """
        m = len(aux.data)
        e = self._chunk_elements(m)
        if m <= e:
            def single_block_kernel(ctx):
                indices = np.arange(m)
                data = gmem.load(aux, indices)
                scanned, _ = strided_inclusive_scan(data, 0, tuple_size, op)
                identity = op.identity(data.dtype)
                carries = np.full(tuple_size, identity, dtype=data.dtype)
                gmem.store(
                    aux,
                    indices,
                    strided_exclusive_from_inclusive(scanned, 0, tuple_size, op, carries),
                )

            launch_kernel(
                single_block_kernel,
                self.spec,
                gmem=gmem,
                num_blocks=1,
                threads_per_block=self.threads_per_block,
                policy=self.policy,
            )
            return
        scratch = gmem.alloc(self._fresh_name("aux_scratch"), m, aux.data.dtype)
        self._scan_pass(gmem, aux, scratch, tuple_size, op, inclusive=False)

        def copy_back_kernel(ctx):
            chunks = chunk_count(m, e)
            for chunk in range(ctx.block_id, chunks, ctx.num_blocks):
                start, count = chunk_bounds(chunk, e, m)
                indices = start + np.arange(count)
                gmem.store(aux, indices, gmem.load(scratch, indices))

        launch_kernel(
            copy_back_kernel,
            self.spec,
            gmem=gmem,
            num_blocks=self._grid(chunk_count(m, e)),
            threads_per_block=self.threads_per_block,
            policy=self.policy,
        )

    def _result(self, values, gmem, num_chunks, order, tuple_size, op, inclusive):
        return BaselineResult(
            values=values,
            stats=gmem.stats.copy(),
            num_chunks=num_chunks,
            engine=self.name,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
        )
