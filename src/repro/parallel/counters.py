"""Counters for real parallel runs, analogous to ``gpusim.counters``.

The simulator measures *words moved*; a real shared-memory run instead
measures the quantities that determine wall-clock on a multicore CPU:
how evenly chunks were claimed, how often carry polls failed (the
latency the decoupled scheme hides), and where the time went per phase.
:class:`ParallelCounters` is what the perf layer gets back from a
:class:`repro.parallel.ParallelSamScan` launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import List, Optional


@dataclass
class WorkerCounters:
    """Per-worker event counts and phase timings for one scan.

    Filled in by the worker process and shipped back to the master over
    the result pipe when the worker finishes its chunk set.
    """

    worker_id: int = 0
    chunks_claimed: int = 0
    flag_polls: int = 0
    failed_flag_polls: int = 0
    poll_sleeps: int = 0
    carry_additions: int = 0
    seconds_local_scan: float = 0.0
    seconds_carry: float = 0.0
    seconds_store: float = 0.0

    def as_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerCounters":
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class ParallelCounters:
    """Aggregated view of one parallel launch.

    ``seconds_setup`` covers shared-memory allocation and input copy-in,
    ``seconds_dispatch`` the task sends, ``seconds_compute`` the
    watchdog-supervised wait for every worker, and ``seconds_collect``
    the output copy-out and segment teardown.  ``engine_used`` records
    whether the parallel path actually ran or the call degraded to the
    host engine (``fallback_reason`` says why).
    """

    num_workers: int = 0
    num_chunks: int = 0
    engine_used: str = "parallel"
    fallback_reason: Optional[str] = None
    seconds_setup: float = 0.0
    seconds_dispatch: float = 0.0
    seconds_compute: float = 0.0
    seconds_collect: float = 0.0
    workers: List[WorkerCounters] = field(default_factory=list)

    # -- aggregates ------------------------------------------------------

    @property
    def chunks_claimed(self) -> int:
        return sum(w.chunks_claimed for w in self.workers)

    @property
    def flag_polls(self) -> int:
        return sum(w.flag_polls for w in self.workers)

    @property
    def failed_flag_polls(self) -> int:
        return sum(w.failed_flag_polls for w in self.workers)

    @property
    def carry_additions(self) -> int:
        return sum(w.carry_additions for w in self.workers)

    @property
    def seconds_total(self) -> float:
        return (
            self.seconds_setup
            + self.seconds_dispatch
            + self.seconds_compute
            + self.seconds_collect
        )

    def chunks_per_worker(self) -> List[int]:
        """Chunk counts by worker id — the load-balance picture."""
        return [w.chunks_claimed for w in sorted(self.workers, key=lambda w: w.worker_id)]

    def as_dict(self) -> dict:
        return {
            "num_workers": self.num_workers,
            "num_chunks": self.num_chunks,
            "engine_used": self.engine_used,
            "fallback_reason": self.fallback_reason,
            "seconds_setup": self.seconds_setup,
            "seconds_dispatch": self.seconds_dispatch,
            "seconds_compute": self.seconds_compute,
            "seconds_collect": self.seconds_collect,
            "chunks_claimed": self.chunks_claimed,
            "flag_polls": self.flag_polls,
            "failed_flag_polls": self.failed_flag_polls,
            "carry_additions": self.carry_additions,
            "workers": [w.as_dict() for w in self.workers],
        }

    def __str__(self) -> str:
        return (
            f"ParallelCounters(engine={self.engine_used}, "
            f"workers={self.num_workers}, chunks={self.num_chunks}, "
            f"polls={self.flag_polls} ({self.failed_flag_polls} failed), "
            f"carry_adds={self.carry_additions}, "
            f"wall={self.seconds_total:.4f}s)"
        )
