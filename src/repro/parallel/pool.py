"""A warm pool of persistent worker processes.

Spawning a process per scan would dwarf the scan itself for all but
huge inputs, so the engine keeps workers alive across calls — the
process-level analogue of the paper's persistent blocks, which are
launched once and then claim work forever.  The pool

* spawns lazily and grows on demand (``ensure(k)``),
* detects and transparently respawns workers that died (the engine's
  graceful-degradation path relies on this: after a crash-induced host
  fallback, the *next* call gets a healthy pool again),
* is shared process-wide by default (:func:`WorkerPool.shared`), so
  every engine instance, test, and fuzz iteration reuses the same warm
  workers,
* shuts everything down at interpreter exit; workers are daemons, so
  even a hard-killed master leaves no orphans.

The fork start method is preferred (milliseconds, inherits the loaded
numpy); platforms without it fall back to spawn.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from typing import List, Optional

from repro.parallel.worker import worker_main


def _pick_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class WorkerHandle:
    """One pooled worker: its process and the master end of its pipe."""

    def __init__(self, ctx, worker_id: int):
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, ctx.get_start_method() != "fork"),
            name=f"repro-parallel-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @property
    def sentinel(self):
        return self.process.sentinel

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, timeout: float = 1.0) -> None:
        """Ask the worker to exit; escalate to terminate if it will not."""
        if self.process.is_alive():
            try:
                self.conn.send({"cmd": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)
        try:
            self.conn.close()
        except OSError:
            pass

    def discard(self) -> None:
        """Drop a dead worker's resources without waiting."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
        self.process.join(0.5)


class WorkerPool:
    """Grow-on-demand pool of :class:`WorkerHandle`.

    Thread-safe; handle ``worker_id`` equals its index, which the engine
    uses directly as the worker's slot in the chunk-claiming stride.
    """

    _shared: Optional["WorkerPool"] = None
    _shared_lock = threading.Lock()

    def __init__(self):
        self._ctx = _pick_context()
        if self._ctx.get_start_method() == "fork":
            # Start the resource tracker *before* forking workers so they
            # inherit the live pipe and share the master's tracker.  A
            # worker forked with no tracker running would spawn a private
            # one on first attach, which at worker exit re-unlinks every
            # segment the master already cleaned up (ENOENT warnings).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        self._lock = threading.Lock()
        self._handles: List[WorkerHandle] = []
        self._closed = False

    @classmethod
    def shared(cls) -> "WorkerPool":
        """The process-wide default pool (created on first use)."""
        with cls._shared_lock:
            if cls._shared is None or cls._shared._closed:
                cls._shared = cls()
                atexit.register(cls._shared.shutdown)
            return cls._shared

    def ensure(self, count: int) -> List[WorkerHandle]:
        """Return ``count`` live handles, spawning/respawning as needed."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        with self._lock:
            for worker_id in range(count):
                if worker_id < len(self._handles):
                    handle = self._handles[worker_id]
                    if not handle.alive():
                        handle.discard()
                        self._handles[worker_id] = WorkerHandle(self._ctx, worker_id)
                else:
                    self._handles.append(WorkerHandle(self._ctx, worker_id))
            return self._handles[:count]

    @property
    def size(self) -> int:
        return len(self._handles)

    def alive_count(self) -> int:
        return sum(1 for handle in self._handles if handle.alive())

    def shutdown(self) -> None:
        """Stop every worker (idempotent; registered atexit for the
        shared pool)."""
        with self._lock:
            self._closed = True
            for handle in self._handles:
                handle.stop()
            self._handles.clear()
