"""Exception types raised by the shared-memory parallel engine.

The hierarchy mirrors :mod:`repro.gpusim.errors`: the simulator turns
protocol violations into loud, typed failures instead of silent
corruption, and the real-parallelism engine keeps that property.  Every
error below derives from :class:`ParallelError`, which is what
:class:`repro.parallel.ParallelSamScan` catches when deciding whether
to degrade to the host engine.
"""

from __future__ import annotations


class ParallelError(RuntimeError):
    """Base class for all shared-memory engine failures."""


class WorkerStallError(ParallelError):
    """No worker made progress within the watchdog budget.

    The real-hardware analogue of :class:`repro.gpusim.errors.DeadlockError`:
    a correct single-pass scan never stalls because chunk 0 has no
    predecessor, so a quiet period longer than the stall timeout means a
    worker is wedged (or the machine is so oversubscribed the run cannot
    finish).  The engine aborts the launch rather than hanging the caller.
    """


class WorkerDeathError(ParallelError):
    """A worker process exited mid-scan (crash, OOM-kill, SIGKILL).

    Detected through the process sentinel and the generation-tagged flag
    state; the scan output may be partially written, so the engine never
    returns it — it either falls back to the host engine or raises.
    """


class SharedBufferOverrunError(ParallelError):
    """A circular auxiliary slot was overwritten before being consumed.

    The shared-memory twin of the simulator's overrun ``SimulationError``:
    flag values encode the buffer generation, so a reader that observes a
    *later* generation knows the local sums it needed are gone.  With the
    paper's ``3k+1`` capacity this cannot happen for in-order workers; the
    check is defense in depth against protocol bugs.
    """


class ParallelAbort(ParallelError):
    """Internal: raised inside a worker when the master sets the abort
    flag in the shared control region.  Never escapes the engine."""
