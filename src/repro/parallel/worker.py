"""The persistent worker process: SAM's kernel body on a real core.

Each worker is the OS-process analogue of one *persistent thread
block*: it is spawned once per pool, sits in a receive loop, and for
every launch processes chunks ``w, w+k, w+2k, ...`` of the shared input
— the same every-k-th claiming as :class:`repro.core.sam.SamScan`'s
persistent blocks.  Per chunk, per order-iteration it

1. computes the lane-local strided scan *in place* through
   :mod:`repro.kernels` — the same kernel layer
   :func:`repro.core.localscan.strided_inclusive_scan` (the simulator's
   path and the bit-identity proofs) wraps, so the two cannot drift,
2. publishes its per-lane local sums and resolves the inter-chunk carry
   through :mod:`repro.parallel.protocol` (decoupled or chained),
3. corrects the chunk and writes it to the shared output array once.

Workers communicate results (counters, errors) over their pipe and
heartbeat progress through the control region so the master's watchdog
can distinguish "slow" from "wedged".

Implementation note: the chunk loop lives in its own function
(:func:`_scan_chunks`) so that when the task finishes — normally or by
exception — every numpy view of the shared segment held in its frame is
released before :meth:`SegmentViews.close` unmaps the segment.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro import kernels
from repro.ops import get_op
from repro.parallel.counters import WorkerCounters
from repro.parallel.errors import ParallelAbort, WorkerStallError
from repro.parallel.layout import (
    CTRL_ABORT,
    CTRL_ERROR,
    CTRL_PROGRESS,
    ScanLayout,
    SegmentViews,
    attach_segment,
)
from repro.parallel.protocol import CARRY_SCHEMES, SharedAuxBuffers


def _maybe_inject(inject, worker_id: int, chunk_ordinal: int, control) -> None:
    """Failure-injection hooks for the robustness tests.

    ``{"kind": "die", ...}`` hard-exits the process (simulating an
    OOM-kill or crash); ``{"kind": "stall", ...}`` spins without
    publishing until the master aborts the launch — the scenario the
    watchdog exists for.
    """
    if not inject:
        return
    if inject.get("worker") != worker_id or inject.get("chunk") != chunk_ordinal:
        return
    if inject["kind"] == "die":
        os._exit(17)
    if inject["kind"] == "stall":
        while not control[CTRL_ABORT]:
            time.sleep(0.002)
        raise ParallelAbort("stall injection released by abort")


def _scan_chunks(worker_id: int, task: dict, layout: ScanLayout, views) -> WorkerCounters:
    """Process this worker's chunk set; all segment views are frame-local."""
    op = get_op(task["op"])
    dtype = layout.np_dtype
    order = layout.order
    tuple_size = layout.tuple_size
    k = task["num_active"]
    inclusive = task["inclusive"]
    inject = task.get("inject")
    carry_fn = CARRY_SCHEMES[task["carry_scheme"]]
    # Opt-in slab threads inside this worker's chunk scans (bit-identical
    # for the integer dtypes this engine handles; see kernels.threaded).
    threads = int(task.get("threads") or 1)

    counters = WorkerCounters(worker_id=worker_id)
    aux = SharedAuxBuffers(
        views.flags,
        views.sums,
        views.control,
        k,
        order,
        tuple_size,
        counters,
        stall_timeout=task["stall_timeout"],
    )
    identity = op.identity(dtype)
    acc = np.full((order, tuple_size), identity, dtype=dtype)
    n = layout.n
    chunk_elements = layout.chunk_elements
    progress_word = CTRL_PROGRESS + worker_id

    for ordinal, chunk in enumerate(range(worker_id, layout.num_chunks, k)):
        if views.control[CTRL_ABORT]:
            raise ParallelAbort("master aborted the launch")
        _maybe_inject(inject, worker_id, ordinal, views.control)
        start = chunk * chunk_elements
        count = min(chunk_elements, n - start)
        # One owned copy of the chunk; every pass then scans and folds
        # it in place through the shared kernel layer — no per-pass
        # temporaries (the shared input segment must stay pristine, so
        # the in-place kernel cannot run on the view directly).
        data = np.array(views.input[start : start + count], copy=True)
        for iteration in range(order):
            t0 = time.perf_counter()
            if threads > 1:
                kernels.threaded_lane_scan(
                    data, op, tuple_size, out=data, threads=threads
                )
            else:
                kernels.lane_scan(data, op, tuple_size, out=data)
            local_sums = kernels.lane_totals(data, op, tuple_size, pos=start)
            t1 = time.perf_counter()
            carry = carry_fn(aux, op, chunk, iteration, local_sums, acc)
            t2 = time.perf_counter()
            last = iteration == order - 1
            if threads > 1:
                kernels.threaded_fold_lanes(
                    data, op, carry, pos=start, tuple_size=tuple_size,
                    threads=threads,
                )
            else:
                kernels.fold_lanes(
                    data, op, carry, pos=start, tuple_size=tuple_size
                )
            if last and not inclusive:
                heads = carry[kernels.phase_perm(start, tuple_size)]
                data = kernels.exclusive_shift(data, heads)
            counters.seconds_local_scan += t1 - t0
            counters.seconds_carry += t2 - t1
        t3 = time.perf_counter()
        views.output[start : start + count] = data
        counters.seconds_store += time.perf_counter() - t3
        counters.chunks_claimed += 1
        views.control[progress_word] += 1
    return counters


#: Whether this worker's resource tracker is private (spawn start
#: method); set once by :func:`worker_main` from the pool's context.
_PRIVATE_TRACKER = False


def run_scan_task(worker_id: int, task: dict) -> tuple:
    """Execute one launch; returns the tagged message for the master.

    Exceptions are converted to messages *inside* this function (which
    implicitly clears their tracebacks) so no dangling frame pins the
    segment views when :meth:`SegmentViews.close` runs.
    """
    layout = ScanLayout(**task["layout"])
    shm = attach_segment(task["shm_name"], private_tracker=_PRIVATE_TRACKER)
    views = SegmentViews(shm, layout)
    try:
        try:
            counters = _scan_chunks(worker_id, task, layout, views)
            return ("done", counters.as_dict())
        except ParallelAbort:
            return ("aborted", worker_id)
        except WorkerStallError as exc:
            views.control[CTRL_ERROR] = 1
            return ("stalled", str(exc))
        except Exception as exc:  # noqa: BLE001 - everything must be reported
            views.control[CTRL_ERROR] = 1
            return ("error", f"{type(exc).__name__}: {exc}")
    finally:
        views.close()


def worker_main(worker_id: int, conn, private_tracker: bool = False) -> None:
    """Entry point of a pooled worker process.

    Loops on the task pipe until told to shut down (or the master
    disappears).  Every outcome — success, stall, abort, arbitrary
    exception — is reported as a tagged message so the master never has
    to guess; an unreportable state (broken pipe) just exits.
    """
    global _PRIVATE_TRACKER
    _PRIVATE_TRACKER = private_tracker
    # The master owns Ctrl-C; workers must not die to a stray SIGINT
    # racing the abort protocol.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main-thread spawn
        pass
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        cmd = task.get("cmd")
        if cmd == "shutdown":
            return
        if cmd == "ping":
            _safe_send(conn, ("pong", worker_id))
            continue
        if cmd != "scan":
            _safe_send(conn, ("error", f"unknown command {cmd!r}"))
            continue
        try:
            message = run_scan_task(worker_id, task)
        except Exception as exc:  # noqa: BLE001 - e.g. segment already gone
            message = ("error", f"{type(exc).__name__}: {exc}")
        _safe_send(conn, message)


def _safe_send(conn, message) -> None:
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):  # pragma: no cover - master died
        pass
