"""repro.parallel — SAM on real shared-memory multicore parallelism.

The paper's persistent-block single-pass scan (Section 2), executed by
persistent OS worker processes over ``multiprocessing.shared_memory``
instead of the deterministic :mod:`repro.gpusim` scheduler: the same
O(1) circular auxiliary buffers, the same generation-tagged ready
flags, the same decoupled write-then-independent-reads carry scheme —
but with the interleavings chosen by the kernel scheduler of the
machine it runs on.

Quickstart::

    import numpy as np
    from repro.parallel import ParallelSamScan

    engine = ParallelSamScan(num_workers=4)
    result = engine.run(np.arange(1 << 20, dtype=np.int64), order=2)
    result.values          # bit-identical to repro.reference
    result.engine_used     # "parallel" (or "host" after degradation)
    result.counters        # chunks/worker, polls, per-phase wall-clock

Or through the public API::

    repro.prefix_sum(values, engine="parallel")
"""

from repro.parallel.counters import ParallelCounters, WorkerCounters
from repro.parallel.engine import (
    DEFAULT_MIN_PARALLEL_ELEMENTS,
    DEFAULT_STALL_TIMEOUT,
    ParallelResult,
    ParallelSamScan,
)
from repro.parallel.errors import (
    ParallelError,
    SharedBufferOverrunError,
    WorkerDeathError,
    WorkerStallError,
)
from repro.parallel.pool import WorkerPool

__all__ = [
    "ParallelSamScan",
    "ParallelResult",
    "ParallelCounters",
    "WorkerCounters",
    "WorkerPool",
    "ParallelError",
    "WorkerStallError",
    "WorkerDeathError",
    "SharedBufferOverrunError",
    "DEFAULT_MIN_PARALLEL_ELEMENTS",
    "DEFAULT_STALL_TIMEOUT",
]
