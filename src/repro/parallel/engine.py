"""``ParallelSamScan`` — SAM on real OS-level shared-memory parallelism.

The paper's persistent-block algorithm, executed by the worker pool of
:mod:`repro.parallel.pool` instead of the deterministic coroutine
scheduler: input and output live zero-copy in a shared segment, the
O(1) circular auxiliary buffers and generation-tagged ready flags live
beside them, and worker ``w`` claims every k-th chunk, resolving
carries with the decoupled write-then-independent-reads scheme (or the
§5.4 chained ablation).

The engine satisfies the repo-wide engine contract —
``run(values, order=..., tuple_size=..., op=..., inclusive=...)``
returning a result with ``.values`` — so it drops into ``repro.api``,
the differential fuzzer, and the benchmark harness unchanged, and it is
bit-identical to :mod:`repro.reference` for every operator, integer
dtype, order, and tuple size (wraparound included): the chunk-local
scans and the carry fold are the *same functions* the proven simulator
path uses, and the chunk partition is deterministic, so results do not
depend on timing or worker count.

Production shape:

* **Warm pool** — workers are spawned once and reused across calls
  (:func:`WorkerPool.shared` by default).
* **Watchdog** — a stall detector in the master mirrors the simulator's
  ``DeadlockError``: if no worker heartbeats within ``stall_timeout``,
  the launch is aborted instead of hanging the caller.
* **Graceful degradation** — small inputs, custom (unpicklable)
  operators, dead workers, stalls, and buffer overruns all degrade to
  the bit-identical host engine (``fallback="host"``); partial output
  is never returned.  ``fallback="raise"`` surfaces the typed error.
* **Counters** — every launch returns a
  :class:`~repro.parallel.counters.ParallelCounters` (chunks claimed
  per worker, carry polls, failed polls, per-phase wall-clock) so the
  perf layer can analyze real runs the way it analyzes simulated ones.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Optional

import numpy as np

from repro.core.host import host_prefix_sum
from repro.ops import ADD, BUILTIN_OPS, get_op
from repro.parallel.counters import ParallelCounters, WorkerCounters
from repro.parallel.errors import (
    ParallelError,
    SharedBufferOverrunError,
    WorkerDeathError,
    WorkerStallError,
)
from repro.parallel.layout import (
    CTRL_PROGRESS,
    ScanLayout,
    SegmentViews,
    create_segment,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.protocol import CARRY_SCHEMES, aux_capacity

#: Below this size the dispatch/attach overhead dominates any possible
#: speedup and the engine runs the host path (see docs/API.md for the
#: crossover discussion).
DEFAULT_MIN_PARALLEL_ELEMENTS = 1 << 16

#: Watchdog budget: the longest quiet period (no chunk completed by any
#: worker) tolerated before the launch is declared stalled.
DEFAULT_STALL_TIMEOUT = 30.0

_WATCH_INTERVAL = 0.05
_DRAIN_GRACE = 5.0


@dataclass
class ParallelResult:
    """Output of one :class:`ParallelSamScan` launch."""

    values: np.ndarray
    counters: ParallelCounters
    num_chunks: int
    num_workers: int
    chunk_elements: int
    order: int
    tuple_size: int
    op_name: str
    inclusive: bool
    carry_scheme: str

    @property
    def engine_used(self) -> str:
        """``"parallel"`` or ``"host"`` (graceful degradation)."""
        return self.counters.engine_used


class ParallelSamScan:
    """Configured shared-memory SAM engine.

    Parameters
    ----------
    num_workers:
        Worker processes to use (default: ``os.cpu_count()``).  The
        effective count is capped by the chunk count; oversubscribed
        launches (more workers than chunks) leave the excess idle.
    chunk_elements:
        Elements per chunk; ``None`` targets a few chunks per worker
        with a floor that keeps per-chunk numpy work vectorized.
    carry_scheme:
        ``"decoupled"`` (SAM) or ``"chained"`` (§5.4 ablation).
    min_parallel_elements:
        Inputs smaller than this run the host engine directly.
    stall_timeout:
        Watchdog budget in seconds (also each worker's per-wait poll
        deadline).
    fallback:
        ``"host"`` degrades to the host engine on any
        :class:`ParallelError`; ``"raise"`` propagates it.
    buffer_factor:
        Circular buffers hold ``next_pow2(buffer_factor * k + 1)``
        slots; the paper uses 3 (the minimum that is overrun-free for
        in-order workers).
    pool:
        A :class:`WorkerPool` to use; ``None`` = the shared pool.
    worker_threads:
        Opt-in slab threads *inside* each worker's chunk scans (the
        :mod:`repro.kernels.threaded` kernel).  Default 1: the process
        pool already owns the cores, so intra-worker threads only help
        when workers < cores (e.g. few huge chunks).  Results are
        bit-identical either way.
    failure_injection:
        Test hook forwarded to workers (see ``worker._maybe_inject``).
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        chunk_elements: Optional[int] = None,
        carry_scheme: str = "decoupled",
        min_parallel_elements: int = DEFAULT_MIN_PARALLEL_ELEMENTS,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        fallback: str = "host",
        buffer_factor: int = 3,
        pool: Optional[WorkerPool] = None,
        worker_threads: int = 1,
        failure_injection: Optional[dict] = None,
    ):
        if carry_scheme not in CARRY_SCHEMES:
            raise KeyError(
                f"unknown carry scheme {carry_scheme!r}; "
                f"available: {sorted(CARRY_SCHEMES)}"
            )
        if fallback not in ("host", "raise"):
            raise ValueError(
                f"fallback must be 'host' or 'raise', got {fallback!r}"
            )
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if chunk_elements is not None and chunk_elements < 1:
            raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
        self.num_workers = num_workers or (os.cpu_count() or 1)
        self.chunk_elements = chunk_elements
        self.carry_scheme = carry_scheme
        self.min_parallel_elements = min_parallel_elements
        self.stall_timeout = stall_timeout
        self.fallback = fallback
        if worker_threads < 1:
            raise ValueError(f"worker_threads must be >= 1, got {worker_threads}")
        self.buffer_factor = buffer_factor
        self._pool = pool
        self.worker_threads = int(worker_threads)
        self.failure_injection = failure_injection

    # -- public API ------------------------------------------------------

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> ParallelResult:
        """Compute the generalized prefix scan of ``values``."""
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if tuple_size < 1:
            raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
        dtype = op.check_dtype(array.dtype)
        array = array.astype(dtype, copy=False)
        n = len(array)

        chunk_elements = self.chunk_elements or _auto_chunk_elements(
            n, self.num_workers
        )
        num_chunks = math.ceil(n / chunk_elements) if n else 0

        reason = self._host_path_reason(n, num_chunks, op)
        if reason is not None:
            return self._run_host(
                array, order, tuple_size, op, inclusive,
                chunk_elements, num_chunks, reason,
            )
        try:
            return self._run_parallel(
                array, order, tuple_size, op, inclusive, chunk_elements, num_chunks
            )
        except ParallelError as exc:
            if self.fallback == "raise":
                raise
            return self._run_host(
                array, order, tuple_size, op, inclusive,
                chunk_elements, num_chunks,
                f"{type(exc).__name__}: {exc}",
            )

    # -- host degradation ------------------------------------------------

    def _host_path_reason(self, n: int, num_chunks: int, op) -> Optional[str]:
        if n == 0:
            return "empty input"
        if n < self.min_parallel_elements:
            return (
                f"n={n} below the parallel crossover "
                f"({self.min_parallel_elements})"
            )
        if num_chunks < 2:
            return "input fits in a single chunk"
        if BUILTIN_OPS.get(op.name) is not op:
            return f"operator {op.name!r} is not picklable across processes"
        return None

    def _run_host(
        self, array, order, tuple_size, op, inclusive,
        chunk_elements, num_chunks, reason,
    ) -> ParallelResult:
        t0 = time.perf_counter()
        out = host_prefix_sum(
            array, order=order, tuple_size=tuple_size, op=op, inclusive=inclusive
        )
        counters = ParallelCounters(
            num_workers=0,
            num_chunks=num_chunks,
            engine_used="host",
            fallback_reason=reason,
            seconds_compute=time.perf_counter() - t0,
        )
        return ParallelResult(
            values=out,
            counters=counters,
            num_chunks=num_chunks,
            num_workers=0,
            chunk_elements=chunk_elements,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
            carry_scheme=self.carry_scheme,
        )

    # -- the parallel launch ---------------------------------------------

    def _run_parallel(
        self, array, order, tuple_size, op, inclusive, chunk_elements, num_chunks
    ) -> ParallelResult:
        active = min(self.num_workers, num_chunks)
        pool = self._pool or WorkerPool.shared()
        counters = ParallelCounters(num_workers=active, num_chunks=num_chunks)

        t0 = time.perf_counter()
        try:
            handles = pool.ensure(active)
        except RuntimeError as exc:
            raise WorkerDeathError(f"worker pool unavailable: {exc}") from exc
        layout = ScanLayout(
            n=len(array),
            dtype=np.dtype(array.dtype).name,
            order=order,
            tuple_size=tuple_size,
            num_workers=active,
            capacity=aux_capacity(active, self.buffer_factor),
            chunk_elements=chunk_elements,
            num_chunks=num_chunks,
        )
        shm = create_segment(layout)
        views = SegmentViews(shm, layout)
        try:
            views.input[:] = array
            counters.seconds_setup = time.perf_counter() - t0

            t1 = time.perf_counter()
            task = {
                "cmd": "scan",
                "shm_name": shm.name,
                "layout": layout.__dict__,
                "num_active": active,
                "op": op.name,
                "inclusive": inclusive,
                "carry_scheme": self.carry_scheme,
                "stall_timeout": self.stall_timeout,
                "threads": self.worker_threads,
                "inject": self.failure_injection,
            }
            dispatched = []
            for handle in handles:
                try:
                    handle.conn.send(task)
                except (BrokenPipeError, OSError) as exc:
                    self._abort_and_drain(
                        views, {h.worker_id: h for h in dispatched}
                    )
                    raise WorkerDeathError(
                        f"worker {handle.worker_id} died before dispatch"
                    ) from exc
                dispatched.append(handle)
            counters.seconds_dispatch = time.perf_counter() - t1

            t2 = time.perf_counter()
            failure, still_pending = self._supervise(views, dispatched, counters)
            counters.seconds_compute = time.perf_counter() - t2
            if failure is not None:
                self._abort_and_drain(views, still_pending)
                raise failure

            t3 = time.perf_counter()
            out = views.output.copy()
            counters.seconds_collect = time.perf_counter() - t3
        finally:
            views.close()
            shm.unlink()
        return ParallelResult(
            values=out,
            counters=counters,
            num_chunks=num_chunks,
            num_workers=active,
            chunk_elements=chunk_elements,
            order=order,
            tuple_size=tuple_size,
            op_name=op.name,
            inclusive=inclusive,
            carry_scheme=self.carry_scheme,
        )

    def _supervise(self, views, handles, counters):
        """Wait for every worker, watching heartbeats and sentinels.

        Returns ``(failure, still_pending)``: the failure to raise after
        draining (or None on success) plus the handles that have not yet
        sent a terminal message — the only ones the drain must wait on.
        The stall clock resets whenever any progress word advances or
        any message arrives — mirroring the simulator's deadlock rule "a
        full round with no block finishing and no global write can never
        change state".
        """
        pending = {handle.worker_id: handle for handle in handles}
        progress = views.control[
            CTRL_PROGRESS : CTRL_PROGRESS + len(handles)
        ].copy()
        last_change = time.monotonic()
        while pending:
            objects = [h.conn for h in pending.values()] + [
                h.sentinel for h in pending.values()
            ]
            ready = _wait_connections(objects, timeout=_WATCH_INTERVAL)
            now = time.monotonic()
            for handle in list(pending.values()):
                if handle.conn in ready:
                    try:
                        kind, payload = handle.conn.recv()
                    except (EOFError, OSError):
                        del pending[handle.worker_id]
                        return (
                            WorkerDeathError(
                                f"worker {handle.worker_id} died mid-scan "
                                f"(pipe closed)"
                            ),
                            pending,
                        )
                    last_change = now
                    del pending[handle.worker_id]
                    if kind == "done":
                        counters.workers.append(WorkerCounters.from_dict(payload))
                    elif kind == "stalled":
                        return WorkerStallError(payload), pending
                    elif kind == "aborted":
                        # Only possible after *we* set the abort flag;
                        # reaching here without a failure means a bug.
                        return (
                            ParallelError(
                                f"worker {handle.worker_id} aborted unexpectedly"
                            ),
                            pending,
                        )
                    else:
                        return _classify_worker_error(payload), pending
                elif handle.sentinel in ready and not handle.process.is_alive():
                    del pending[handle.worker_id]
                    return (
                        WorkerDeathError(
                            f"worker {handle.worker_id} died mid-scan "
                            f"(exit code {handle.process.exitcode})"
                        ),
                        pending,
                    )
            snapshot = views.control[
                CTRL_PROGRESS : CTRL_PROGRESS + len(handles)
            ]
            if not np.array_equal(snapshot, progress):
                progress = snapshot.copy()
                last_change = now
            elif pending and now - last_change > self.stall_timeout:
                return (
                    WorkerStallError(
                        f"no worker progress for {self.stall_timeout:.1f}s "
                        f"(waiting on workers {sorted(pending)})"
                    ),
                    pending,
                )
        return None, {}

    def _abort_and_drain(self, views, pending) -> None:
        """Set the abort flag and give still-mid-task workers a grace
        period to acknowledge, so the pool stays reusable next call.

        ``pending`` maps worker id to handle for exactly the workers
        that have not yet sent a terminal message; anyone else is
        already back in their receive loop and must not be waited on.
        """
        from repro.parallel.layout import CTRL_ABORT

        views.control[CTRL_ABORT] = 1
        deadline = time.monotonic() + _DRAIN_GRACE
        pending = {
            wid: handle for wid, handle in pending.items() if handle.alive()
        }
        while pending and time.monotonic() < deadline:
            objects = [h.conn for h in pending.values()] + [
                h.sentinel for h in pending.values()
            ]
            ready = _wait_connections(objects, timeout=_WATCH_INTERVAL)
            for handle in list(pending.values()):
                if handle.conn in ready:
                    try:
                        handle.conn.recv()
                    except (EOFError, OSError):
                        pass
                    del pending[handle.worker_id]
                elif handle.sentinel in ready and not handle.process.is_alive():
                    del pending[handle.worker_id]
        for handle in pending.values():  # unresponsive: cut it loose
            handle.process.terminate()
            # Settle the death now so the next ensure() sees it and
            # respawns instead of racing the signal delivery.
            handle.process.join(1.0)


def _auto_chunk_elements(n: int, num_workers: int) -> int:
    """Chunk sizing: a few chunks per worker, floor large enough that
    numpy's per-chunk vector work dominates the protocol overhead."""
    if n == 0:
        return 1
    target = math.ceil(n / (num_workers * 4))
    return max(16384, min(target, n))


def _classify_worker_error(message: str) -> ParallelError:
    if message.startswith("SharedBufferOverrunError"):
        return SharedBufferOverrunError(message)
    return ParallelError(f"worker failed: {message}")
