"""Shared-memory segment layout for one parallel scan launch.

One :class:`multiprocessing.shared_memory.SharedMemory` segment holds
everything a launch needs, so workers attach exactly one object:

* a small int64 *control* region — abort flag, error code, and one
  progress word per worker (the watchdog's heartbeat);
* the int64 *flags* array — generation-tagged ready counts, one slot
  per circular-buffer entry, exactly as in :class:`repro.core.carry.AuxBuffers`;
* the per-order *sums* buffers — ``order x capacity x tuple_size``
  values of the scan dtype (the paper's "s sum arrays, one per order");
* the *input* and *output* arrays, shared zero-copy.

Regions are 128-byte aligned so the polled flag words never share a
cache line with the bulk data (the CPU analogue of keeping the paper's
auxiliary buffers resident in L2, Section 5.1).  The auxiliary state is
O(workers), never O(n): ``capacity = next_pow2(3k + 1)`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List

import numpy as np

#: Control-region word indices.
CTRL_ABORT = 0
CTRL_ERROR = 1
CTRL_PROGRESS = 2  # one word per worker starts here

_ALIGN = 128


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ScanLayout:
    """Byte offsets of every region inside the shared segment.

    Plain data so it pickles cheaply into the task descriptor each
    worker receives; ``dtype`` travels as its string name.
    """

    n: int
    dtype: str
    order: int
    tuple_size: int
    num_workers: int
    capacity: int
    chunk_elements: int
    num_chunks: int

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def control_words(self) -> int:
        return CTRL_PROGRESS + self.num_workers

    @property
    def control_offset(self) -> int:
        return 0

    @property
    def flags_offset(self) -> int:
        return _align(self.control_offset + self.control_words * 8)

    @property
    def sums_offset(self) -> int:
        return _align(self.flags_offset + self.capacity * 8)

    @property
    def sums_words_per_order(self) -> int:
        return self.capacity * self.tuple_size

    @property
    def input_offset(self) -> int:
        sums_bytes = self.order * self.sums_words_per_order * self.np_dtype.itemsize
        return _align(self.sums_offset + sums_bytes)

    @property
    def output_offset(self) -> int:
        return _align(self.input_offset + self.n * self.np_dtype.itemsize)

    @property
    def total_bytes(self) -> int:
        # SharedMemory rejects size 0; n == 0 never reaches the
        # parallel path but keep the floor anyway.
        return max(self.output_offset + self.n * self.np_dtype.itemsize, 8)


class SegmentViews:
    """Numpy views over an attached segment, per :class:`ScanLayout`.

    Keeps a reference to the :class:`SharedMemory` object and exposes
    :meth:`close` that drops every view *before* closing the mapping —
    numpy arrays pin the exported memoryview, and closing out of order
    raises ``BufferError``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, layout: ScanLayout):
        self.shm = shm
        self.layout = layout
        buf = shm.buf
        dtype = layout.np_dtype
        self.control = np.frombuffer(
            buf, dtype=np.int64, count=layout.control_words,
            offset=layout.control_offset,
        )
        self.flags = np.frombuffer(
            buf, dtype=np.int64, count=layout.capacity, offset=layout.flags_offset
        )
        words = layout.sums_words_per_order
        self.sums: List[np.ndarray] = [
            np.frombuffer(
                buf, dtype=dtype, count=words,
                offset=layout.sums_offset + it * words * dtype.itemsize,
            )
            for it in range(layout.order)
        ]
        self.input = np.frombuffer(
            buf, dtype=dtype, count=layout.n, offset=layout.input_offset
        )
        self.output = np.frombuffer(
            buf, dtype=dtype, count=layout.n, offset=layout.output_offset
        )

    def close(self) -> None:
        """Release every view, then the mapping itself.

        If some view still has a live external reference (e.g. a frame
        kept alive by an in-flight traceback), a collection pass usually
        clears it; as a last resort the close is deferred to the
        mapping's finalizer rather than crashing the worker.
        """
        self.control = self.flags = self.sums = self.input = self.output = None
        try:
            self.shm.close()
        except BufferError:
            import gc

            gc.collect()
            try:
                self.shm.close()
            except BufferError:  # pragma: no cover - finalizer will close
                pass


def create_segment(layout: ScanLayout) -> shared_memory.SharedMemory:
    """Allocate a fresh (zero-filled) segment for one launch.

    A new mapping means the flag and control words start at zero — no
    explicit reset pass is needed before dispatch.
    """
    return shared_memory.SharedMemory(create=True, size=layout.total_bytes)


def attach_segment(name: str, private_tracker: bool = False) -> shared_memory.SharedMemory:
    """Attach to the master's segment from a worker process.

    On Python < 3.13 merely attaching registers the segment with the
    ``resource_tracker``.  Fork workers share the master's tracker, so
    the duplicate registration is an idempotent set-add and must be left
    alone (unregistering would drop the *master's* entry).  Spawn
    workers get a private tracker that would try to unlink the master's
    segments at worker exit; there the worker-side registration must be
    removed (``private_tracker=True``).
    """
    shm = shared_memory.SharedMemory(name=name)
    if private_tracker:  # pragma: no cover - spawn-start platforms only
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm
