"""SAM's carry protocol over real shared memory.

The same write-followed-by-independent-reads scheme as
:mod:`repro.core.carry`, re-hosted from the simulator's
:class:`~repro.gpusim.memory.GlobalMemory` onto numpy views of a
:class:`multiprocessing.shared_memory.SharedMemory` segment.  The slot /
generation / flag-target arithmetic is *imported* from ``core.carry``
rather than re-derived, so the two implementations cannot drift.

Memory-ordering note: the simulator models an explicit fence between
the sum store and the flag store.  Here the writer is a CPython worker
doing two aligned stores through a shared mapping; CPython emits them
in program order and x86-TSO (and ARM with the interpreter's internal
barriers around refcounting) keeps same-address-free stores visible in
order, while the generation-tagged flags turn any violation into a loud
:class:`SharedBufferOverrunError` instead of silent corruption — the
same defense the simulator uses against hostile schedules.

Polling runs a short spin-then-sleep backoff: a few scheduler yields
first (the common case resolves within microseconds on idle cores),
then exponentially longer sleeps capped at 2 ms so oversubscribed
machines — more workers than cores — still make forward progress
instead of burning the quantum of the worker they are waiting on.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.carry import next_power_of_two, predecessors  # noqa: F401 (re-export)
from repro.ops import AssociativeOp
from repro.parallel.counters import WorkerCounters
from repro.parallel.errors import (
    ParallelAbort,
    SharedBufferOverrunError,
    WorkerStallError,
)
from repro.parallel.layout import CTRL_ABORT

#: Poll backoff schedule: pure yields, then exponential sleeps.
_SPIN_YIELDS = 4
_SLEEP_FLOOR = 50e-6
_SLEEP_CEIL = 2e-3


def aux_capacity(num_workers: int, buffer_factor: int = 3) -> int:
    """Circular-buffer slots for ``k`` workers (paper: next_pow2(3k+1))."""
    return next_power_of_two(buffer_factor * num_workers + 1)


class SharedAuxBuffers:
    """The O(1) auxiliary state, as raw views into the shared segment.

    Mirrors :class:`repro.core.carry.AuxBuffers` field for field:
    ``flags`` is one int64 per circular slot holding the count-valued,
    generation-tagged ready flag; ``sums`` is one dtype array per order
    holding ``tuple_size`` lane sums per slot.
    """

    def __init__(
        self,
        flags: np.ndarray,
        sums: Sequence[np.ndarray],
        control: np.ndarray,
        k: int,
        order: int,
        tuple_size: int,
        counters: WorkerCounters,
        stall_timeout: float,
    ):
        self.flags = flags
        self.sums = sums
        self.control = control
        self.k = k
        self.order = order
        self.tuple_size = tuple_size
        self.capacity = len(flags)
        self.counters = counters
        self.stall_timeout = stall_timeout

    # -- slot arithmetic (identical to core.carry.AuxBuffers) -----------

    def slot(self, chunk_index: int) -> int:
        return chunk_index % self.capacity

    def generation(self, chunk_index: int) -> int:
        return chunk_index // self.capacity

    def flag_target(self, chunk_index: int, iteration: int) -> int:
        return self.generation(chunk_index) * self.order + iteration + 1

    # -- protocol primitives --------------------------------------------

    def publish(self, chunk_index: int, iteration: int, local_sums: np.ndarray) -> None:
        """Store the chunk's per-lane sums, then raise its ready flag."""
        base = self.slot(chunk_index) * self.tuple_size
        self.sums[iteration][base : base + self.tuple_size] = local_sums
        # The flag store must come last; see the module docstring.
        self.flags[self.slot(chunk_index)] = self.flag_target(chunk_index, iteration)

    def poll(self, chunk_indices: np.ndarray, iteration: int) -> np.ndarray:
        """One polling round; returns the readiness vector.

        Raises :class:`SharedBufferOverrunError` when a flag shows a
        later buffer generation (the slot was reused before this reader
        consumed it).
        """
        slots = chunk_indices % self.capacity
        values = self.flags[slots]
        generations = chunk_indices // self.capacity
        targets = generations * self.order + iteration + 1
        limits = (generations + 1) * self.order
        if np.any(values > limits):
            overrun = chunk_indices[values > limits]
            raise SharedBufferOverrunError(
                f"auxiliary circular buffer overrun: sums for chunks "
                f"{overrun.tolist()} were overwritten before being consumed "
                f"(capacity {self.capacity}, k {self.k})"
            )
        ready = values >= targets
        self.counters.flag_polls += len(chunk_indices)
        self.counters.failed_flag_polls += int(np.count_nonzero(~ready))
        return ready

    def read_sums(self, chunk_indices: np.ndarray, iteration: int) -> np.ndarray:
        """Gather per-lane sums of already-ready chunks, ascending order."""
        slots = chunk_indices % self.capacity
        indices = (
            slots[:, None] * self.tuple_size + np.arange(self.tuple_size)
        ).ravel()
        return self.sums[iteration][indices].reshape(
            len(chunk_indices), self.tuple_size
        )

    def wait_for(self, chunks: Sequence[int], iteration: int) -> None:
        """Block until every chunk has published ``iteration``.

        Only not-yet-ready flags are re-polled.  Checks the master's
        abort flag between rounds (raising :class:`ParallelAbort`) and
        enforces a per-wait stall deadline so a dead predecessor can
        never wedge this worker forever.
        """
        pending = np.asarray(list(chunks), dtype=np.int64)
        if pending.size == 0:
            return
        spins = 0
        deadline = time.monotonic() + self.stall_timeout
        while True:
            ready = self.poll(pending, iteration)
            pending = pending[~ready]
            if pending.size == 0:
                return
            if self.control[CTRL_ABORT]:
                raise ParallelAbort("master aborted the launch")
            if time.monotonic() > deadline:
                raise WorkerStallError(
                    f"predecessor chunks {pending.tolist()} never published "
                    f"iteration {iteration} within {self.stall_timeout:.1f}s"
                )
            self.counters.poll_sleeps += 1
            if spins < _SPIN_YIELDS:
                time.sleep(0)
            else:
                time.sleep(
                    min(_SLEEP_FLOOR * (1 << min(spins - _SPIN_YIELDS, 5)), _SLEEP_CEIL)
                )
            spins += 1


def _reduce_rows_in_order(
    base: np.ndarray, rows: np.ndarray, op: AssociativeOp
) -> np.ndarray:
    """Fold predecessor sums onto ``base`` in ascending chunk order —
    the exact fold of ``core.carry``, preserving non-commutative ops."""
    carry = base
    for row in rows:
        carry = op.apply(carry, row)
    return carry


def decoupled_carry(
    aux: SharedAuxBuffers,
    op: AssociativeOp,
    chunk_index: int,
    iteration: int,
    local_sums: np.ndarray,
    acc: np.ndarray,
) -> np.ndarray:
    """SAM's scheme: publish immediately, then read predecessors.

    ``acc`` is the worker's ``(order, tuple_size)`` running-total state
    (the register accumulator of Section 2.2's incremental update).
    Returns the per-lane carry for this chunk and iteration.
    """
    aux.publish(chunk_index, iteration, local_sums)
    preds = predecessors(chunk_index, aux.k)
    aux.wait_for(preds, iteration)
    if chunk_index < aux.k:
        identity = op.identity(local_sums.dtype)
        base = np.full(aux.tuple_size, identity, dtype=local_sums.dtype)
    else:
        # Copy: with k == 1 there are no predecessors, so ``base`` would
        # be returned as the carry while still aliasing the accumulator
        # row that is updated in place below.
        base = acc[iteration].copy()
    if len(preds):
        rows = aux.read_sums(np.asarray(preds, dtype=np.int64), iteration)
        carry = _reduce_rows_in_order(base, rows, op)
        aux.counters.carry_additions += rows.size
    else:
        carry = base
    acc[iteration] = op.apply(carry, local_sums)
    aux.counters.carry_additions += local_sums.size
    return carry


def chained_carry(
    aux: SharedAuxBuffers,
    op: AssociativeOp,
    chunk_index: int,
    iteration: int,
    local_sums: np.ndarray,
    acc: np.ndarray,
) -> np.ndarray:
    """The §5.4 ablation: wait for the predecessor's inclusive total,
    add, publish — the serial chain SAM's decoupling removes."""
    if chunk_index == 0:
        identity = op.identity(local_sums.dtype)
        prev_total = np.full(aux.tuple_size, identity, dtype=local_sums.dtype)
    else:
        aux.wait_for([chunk_index - 1], iteration)
        prev_total = aux.read_sums(
            np.asarray([chunk_index - 1], dtype=np.int64), iteration
        )[0]
    total = op.apply(prev_total, local_sums)
    aux.counters.carry_additions += local_sums.size
    aux.publish(chunk_index, iteration, total)
    return prev_total


#: Carry schemes addressable by name (mirrors core.carry.CARRY_SCHEMES).
CARRY_SCHEMES = {
    "decoupled": decoupled_carry,
    "chained": chained_carry,
}
