"""``repro.plan`` — the execution planner.

Six PRs built six ways to run the same scan: the serial lane kernel,
the slab-parallel threaded kernel, the shared-memory process pool, the
single-session out-of-core driver, the sharded driver, and the serving
layer's batched sessions.  This package chooses among them *from the
data*: a :class:`Workload` (size, dtype, op, order, tuple size, where
the bytes live) and a :class:`Machine` (core count plus the
empirically tuned kernel geometry) are priced through a cost model
that combines the analytic vocabulary of :mod:`repro.perf` with the
measured throughput calibration this machine has accumulated, and the
winning :class:`Plan` dispatches through the existing engines —
recording its decision in counters and folding the observed runtime
back into the calibration store so repeated workloads converge on the
best configuration.

``repro.scan(x)``, ``repro.prefix_sum(x)``, flag-less
``repro.scan_file`` and the serving layer all route through here;
explicit flags always win, and ``engine="auto"`` names the planner
explicitly.  ``repro.explain(...)`` (CLI: ``repro scan --explain``)
prints the candidate table without running anything.
"""

from repro.plan.calibration import (
    CalibrationStore,
    calibration_path,
    get_store,
)
from repro.plan.cost import Candidate
from repro.plan.planner import (
    PLANNER_COUNTERS,
    TINY_BYTES,
    Plan,
    PlannerCounters,
    auto_scan,
    execute_plan,
    explain_scan,
    plan_file_scan,
    plan_scan,
    session_threads,
)
from repro.plan.workload import Machine, Workload, machine_snapshot

__all__ = [
    "PLANNER_COUNTERS",
    "TINY_BYTES",
    "CalibrationStore",
    "Candidate",
    "Machine",
    "Plan",
    "PlannerCounters",
    "Workload",
    "auto_scan",
    "calibration_path",
    "execute_plan",
    "explain_scan",
    "get_store",
    "machine_snapshot",
    "plan_file_scan",
    "plan_scan",
    "session_threads",
]
