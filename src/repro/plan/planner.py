"""Pick the execution strategy from the data, not from flags.

``plan_scan`` enumerates the strategies that could correctly run a
:class:`~repro.plan.Workload` on this :class:`~repro.plan.Machine`,
prices each with :mod:`repro.plan.cost` (analytic model corrected by
the empirical calibration store), and returns a :class:`Plan` — the
chosen candidate, the full scored table, and a human-readable
rationale.  ``execute_plan`` dispatches the winner through the
existing engines and folds the observed runtime back into the store,
so repeated workloads converge on measured truth.

Candidate set
-------------

In memory (``repro.scan(x)`` / ``repro.prefix_sum(x)``):

* ``serial`` — the one-dispatch lane kernel.  Always a candidate, and
  the *only* candidate for exact-mode floats, looped operators,
  non-contiguous buffers, or anything below :data:`TINY_BYTES` (tiny
  inputs never pay planning overhead, let alone dispatch overhead).
* ``threaded:T`` — the slab-parallel kernel, for integer ufunc scans
  on a multicore machine, over a small ladder of thread counts.
* ``parallel:W`` — the shared-memory process pool, only proposed at
  sizes where its warmup and copy traffic could possibly amortize.

On files (``repro.scan_file``):

* ``stream`` — the single-session out-of-core driver.
* ``stream_threaded:T`` — the same driver with slab-parallel chunk
  scans.
* ``sharded:S`` — the sharded driver with a shard count and worker
  count sized to the machine.

Correctness is a *gate*, not a score: a strategy that cannot
bit-identically reproduce the workload's reference (float regrouping,
looped operators under threads) is never proposed, so the planner can
only affect speed.  The reference is mode-relative: under the default
float contract it is the sequential left fold, which only the serial
path reproduces, so exact-mode floats plan serial-only; under
``float_mode="compensated"`` every candidate — serial included — emits
the error-free-carry result of :mod:`repro.kernels.compensated`, whose
fixed segment grid makes it bit-identical for any thread or shard
count, so float ``add`` workloads get the full parallel candidate set.

``REPRO_PLAN_DISABLE=1`` short-circuits the whole subsystem to the
serial path (the escape hatch mirroring ``REPRO_TUNE_DISABLE``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.plan.calibration import CalibrationStore, get_store
from repro.plan.cost import (
    Candidate,
    price_parallel,
    price_serial,
    price_sharded,
    price_threaded,
)
from repro.plan.workload import Machine, Workload, machine_snapshot

#: Below this many bytes the planner returns the serial plan without
#: consulting the machine snapshot or the calibration store: planning
#: must cost nothing where there is nothing to win.
TINY_BYTES = 256 << 10

#: Smallest payload for which the process pool is even priced.
PARALLEL_MIN_BYTES = 64 << 20

#: Shard sizing for the sharded out-of-core candidate.
MIN_SHARD_BYTES = 8 << 20


@dataclass
class PlannerCounters:
    """Process-wide audit trail of planner activity (the in-memory
    analogue of the ``planner_*`` fields on ``StreamCounters``)."""

    plans: int = 0
    tiny_shortcuts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    feedback_updates: int = 0
    last_strategy: str = ""
    by_strategy: Dict[str, int] = field(default_factory=dict)

    def record_plan(self, label: str, cache_hit: bool) -> None:
        self.plans += 1
        self.last_strategy = label
        self.by_strategy[label] = self.by_strategy.get(label, 0) + 1
        if cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def to_dict(self) -> dict:
        return {
            "plans": self.plans,
            "tiny_shortcuts": self.tiny_shortcuts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "feedback_updates": self.feedback_updates,
            "last_strategy": self.last_strategy,
            "by_strategy": dict(self.by_strategy),
        }


#: The process-wide planner audit counters.
PLANNER_COUNTERS = PlannerCounters()


def _plan_disabled() -> bool:
    return bool(os.environ.get("REPRO_PLAN_DISABLE"))


@dataclass
class Plan:
    """One planning decision: the table, the winner, and why."""

    workload: Workload
    machine: Machine
    candidates: List[Candidate]
    chosen: Candidate
    reason: str
    store: Optional[CalibrationStore] = None

    @property
    def cache_hit(self) -> bool:
        """Whether the winner was priced from measured calibration."""
        return self.chosen.throughput_source == "measured"

    # -- feedback ---------------------------------------------------------

    def observe(self, seconds: float) -> bool:
        """Fold the observed runtime back into the calibration store
        (the online feedback loop); returns whether it was recorded."""
        if self.store is None or seconds <= 0 or self.workload.nbytes <= 0:
            return False
        recorded = self.store.observe(
            self.chosen.calibration_key(self.workload),
            self.workload.nbytes / seconds,
        )
        if recorded:
            PLANNER_COUNTERS.feedback_updates += 1
        return recorded

    # -- presentation -----------------------------------------------------

    def explain(self) -> str:
        """The candidate table: every strategy, its predicted cost, its
        throughput source, and why the winner won."""
        w, m = self.workload, self.machine
        lines = [
            f"planner: {w.source} {w.dtype} {w.op} order={w.order} "
            f"tuple_size={w.tuple_size} "
            f"({w.nbytes:,} bytes, {w.elements:,} elements) on "
            f"{m.cpu_count} core(s); tuning {m.tuning_source}, "
            f"parallel cutover {m.parallel_cutover_bytes:,} bytes",
        ]
        if np.dtype(w.dtype).kind == "f":
            if w.compensable:
                lines.append(
                    "  float mode: compensated — error-free carries on the "
                    "fixed segment grid; parallel candidates are "
                    "bit-identical for any thread/shard count"
                )
            else:
                lines.append(
                    f"  float mode: {w.float_mode or 'exact'} — sequential "
                    "reference only (float_mode='compensated' would admit "
                    "parallel candidates for ufunc add)"
                )
        if w.order > 1:
            if w.scan_passes == 1:
                lines.append(
                    f"  pass structure: fused — one single-pass tile scan "
                    f"produces all {w.order} orders via binomial carry "
                    f"splicing, so traffic is priced at 1 pass, not "
                    f"{w.order}"
                )
            else:
                lines.append(
                    f"  pass structure: pass-per-order — {w.order} iterated "
                    f"scan passes (the fused single-pass path needs integer "
                    f"ADD with tuple_size >= 2)"
                )
        lines.append(
            f"  {'':2}{'strategy':<18} {'predicted':>12} {'source':>9}  note"
        )
        for candidate in self.candidates:
            marker = "* " if candidate is self.chosen else "  "
            lines.append(
                f"  {marker}{candidate.label:<18} "
                f"{candidate.predicted_seconds * 1e3:>9.3f} ms "
                f"{candidate.throughput_source:>9}  {candidate.note}"
            )
        lines.append(f"  chosen {self.chosen.label}: {self.reason}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


def _thread_ladder(cpu_count: int) -> List[int]:
    """Thread counts worth pricing: powers of two up to the core count,
    plus the core count itself."""
    ladder = []
    t = 2
    while t < cpu_count:
        ladder.append(t)
        t *= 2
    ladder.append(max(2, cpu_count))
    return sorted(set(ladder))


def _parallel_safe(workload: Workload) -> bool:
    """Whether regrouping strategies can reproduce the workload's
    reference bit-for-bit: fixed-width integers under a real ufunc on a
    contiguous buffer, or a compensable float workload (the caller
    opted into ``float_mode="compensated"``, where the reference *is*
    the deterministic compensated result)."""
    return (
        workload.integer and workload.vectorized and workload.contiguous
    ) or workload.compensable


def _mark_compensated(workload: Workload, candidate) -> None:
    """Stamp a parallel candidate with the float mode it must run
    under (``execute_plan`` and the drivers read it from params)."""
    if workload.compensable:
        candidate.params["float_mode"] = "compensated"
        candidate.note += "; compensated float carries"


def _enumerate(
    workload: Workload, machine: Machine, store: Optional[CalibrationStore]
) -> List[Candidate]:
    candidates = [price_serial(workload, machine, store)]
    # Under the compensated contract the *serial* candidate renders the
    # compensated result too — all candidates agree bit for bit.
    _mark_compensated(workload, candidates[0])
    if workload.source == "memory":
        if _parallel_safe(workload) and machine.multicore:
            for threads in _thread_ladder(machine.cpu_count):
                candidate = price_threaded(workload, machine, store, threads)
                _mark_compensated(workload, candidate)
                candidates.append(candidate)
            # The process pool regroups chunk reductions and cannot
            # replay the compensated chain — integer workloads only.
            if workload.integer and workload.nbytes >= PARALLEL_MIN_BYTES:
                candidates.append(
                    price_parallel(workload, machine, store, machine.cpu_count)
                )
    else:
        if _parallel_safe(workload):
            if machine.multicore and workload.source != "compressed-file":
                # Slab threads parallelize the *scan* of raw chunks; a
                # compressed job's chunk time is dominated by the serial
                # block decode, which threads do not help — its parallel
                # candidate is the sharded driver (parallel decodes).
                candidate = price_threaded(
                    workload, machine, store, machine.cpu_count
                )
                _mark_compensated(workload, candidate)
                candidates.append(candidate)
            # With one core, concurrent shard scans cannot overlap —
            # sharding would be the stream driver plus splice overhead.
            # Compensated sharding is order-1 only (pass q >= 2 rescans
            # rendered output, which has no exact errors to recover).
            if (
                machine.multicore
                and workload.nbytes >= 2 * MIN_SHARD_BYTES
                and (workload.integer or workload.order == 1)
                and (workload.integer or workload.source != "compressed-file")
            ):
                shards = max(
                    2,
                    min(
                        2 * machine.cpu_count,
                        workload.nbytes // MIN_SHARD_BYTES,
                    ),
                )
                workers = max(1, min(machine.cpu_count, shards))
                candidate = price_sharded(
                    workload, machine, store, shards, workers
                )
                _mark_compensated(workload, candidate)
                candidates.append(candidate)
    return candidates


def _synthesize(
    workload: Workload,
    machine: Machine,
    store: Optional[CalibrationStore],
    force: str,
) -> Optional[Candidate]:
    """Price a forced strategy that feasibility gating skipped (e.g.
    ``parallel`` below its size floor) — but never one that would be
    *incorrect* for the workload (float regrouping, looped ops)."""
    name, _, arg = force.partition(":")
    count = int(arg) if arg else machine.cpu_count
    if name == "serial" and workload.source == "memory":
        return price_serial(workload, machine, store)
    if name == "stream" and workload.on_disk:
        return price_serial(workload, machine, store)
    if not _parallel_safe(workload):
        return None
    candidate = None
    if name == "threaded" and workload.source == "memory":
        candidate = price_threaded(workload, machine, store, count)
    elif name == "parallel" and workload.source == "memory":
        if not workload.integer:
            return None  # the process pool cannot replay the dd chain
        candidate = price_parallel(workload, machine, store, count)
    elif name == "stream_threaded" and workload.source == "file":
        candidate = price_threaded(workload, machine, store, count)
    elif name == "sharded" and workload.on_disk:
        if not workload.integer and workload.order > 1:
            return None  # compensated sharding is order-1 only
        workers = max(1, min(machine.cpu_count, count))
        candidate = price_sharded(workload, machine, store, count, workers)
    if candidate is not None:
        _mark_compensated(workload, candidate)
    return candidate


def _gate_reason(workload: Workload) -> str:
    """Why this workload plans serial-only — named precisely, because
    for floats the answer is an *instruction* (the compensated mode
    exists), not a fact of nature."""
    if not workload.contiguous:
        return (
            "only correct strategy for this workload "
            "(non-contiguous buffer: slab/shard bounds need a flat layout)"
        )
    if not workload.vectorized:
        return (
            "only correct strategy for this workload "
            "(looped operator: no GIL-releasing inner loop to parallelize)"
        )
    if not workload.integer:
        from repro.kernels import compensated_supported

        if workload.float_mode != "compensated" and compensated_supported(
            workload.op, workload.dtype
        ):
            return (
                "float dtype under the exact contract: only the sequential "
                "path reproduces the left fold bit for bit "
                "(float_mode='compensated' admits deterministic parallel "
                "candidates)"
            )
        return (
            "only correct strategy for this workload (float regrouping "
            "rounds differently per split, and this op has no error-free "
            "transformation)"
        )
    return (
        "only correct strategy for this workload "
        "(non-integer dtype, looped op, or non-contiguous buffer)"
    )


def _serial_plan(workload: Workload, machine: Machine, reason: str) -> Plan:
    candidate = Candidate(
        "serial" if workload.source == "memory" else "stream",
        predicted_seconds=0.0,
        note=reason,
    )
    # The float mode is a correctness contract, not a tunable: even the
    # tiny-input / planner-disabled shortcuts must execute under it.
    _mark_compensated(workload, candidate)
    return Plan(
        workload=workload,
        machine=machine,
        candidates=[candidate],
        chosen=candidate,
        reason=reason,
        store=None,
    )


def plan_scan(
    workload: Workload,
    machine: Optional[Machine] = None,
    store: Optional[CalibrationStore] = None,
    force: Optional[str] = None,
) -> Plan:
    """Score the candidate set and pick a strategy for ``workload``.

    ``force`` names a strategy label (``"serial"``, ``"threaded:4"``,
    ``"parallel:2"``, ...) to choose regardless of predicted cost —
    used by the differential fuzzer and the planner benchmark to
    exercise *every* candidate's dispatch path, and only offered for
    strategies that are correct for the workload.
    """
    if workload.nbytes <= TINY_BYTES and force is None:
        PLANNER_COUNTERS.tiny_shortcuts += 1
        machine = machine or Machine(
            cpu_count=os.cpu_count() or 1,
            block_bytes=0,
            parallel_cutover_bytes=0,
            tuning_source="skipped",
        )
        plan = _serial_plan(
            workload,
            machine,
            f"tiny input ({workload.nbytes:,} bytes <= {TINY_BYTES:,}): "
            "the serial kernel wins before any dispatch overhead is paid",
        )
        PLANNER_COUNTERS.record_plan(plan.chosen.label, cache_hit=False)
        return plan
    if _plan_disabled() and force is None:
        machine = machine or Machine(
            cpu_count=os.cpu_count() or 1,
            block_bytes=0,
            parallel_cutover_bytes=0,
            tuning_source="disabled",
        )
        plan = _serial_plan(workload, machine, "REPRO_PLAN_DISABLE=1")
        PLANNER_COUNTERS.record_plan(plan.chosen.label, cache_hit=False)
        return plan

    machine = machine or machine_snapshot(workload.dtype)
    store = store if store is not None else get_store()
    candidates = _enumerate(workload, machine, store)
    candidates.sort(key=lambda c: c.predicted_seconds)

    chosen = candidates[0]
    if force is not None:
        matches = [
            c for c in candidates if c.label == force or c.strategy == force
        ]
        if not matches:
            forced = _synthesize(workload, machine, store, force)
            if forced is None:
                raise ValueError(
                    f"cannot force strategy {force!r} for this workload; "
                    f"correct candidates: {[c.label for c in candidates]}"
                )
            candidates.append(forced)
            candidates.sort(key=lambda c: c.predicted_seconds)
            matches = [forced]
        chosen = matches[0]
        reason = f"forced by caller (predicted rank {candidates.index(chosen) + 1})"
    elif len(candidates) == 1:
        reason = (
            _gate_reason(workload)
            if not _parallel_safe(workload)
            else "no parallel candidate on this machine/size"
        )
    else:
        runner_up = candidates[1]
        edge = runner_up.predicted_seconds / max(
            chosen.predicted_seconds, 1e-12
        )
        reason = (
            f"predicted {edge:.2f}x faster than {runner_up.label} "
            f"({chosen.throughput_source} throughput)"
        )
    plan = Plan(
        workload=workload,
        machine=machine,
        candidates=candidates,
        chosen=chosen,
        reason=reason,
        store=store,
    )
    PLANNER_COUNTERS.record_plan(chosen.label, cache_hit=plan.cache_hit)
    return plan


# -- in-memory dispatch -----------------------------------------------------


def execute_plan(plan: Plan, values, *, op=None, forced: bool = False) -> np.ndarray:
    """Run an in-memory workload on its plan's chosen strategy and feed
    the observed runtime back into the calibration store.

    ``op`` carries the caller's original operator object when it is not
    resolvable by name (a locally constructed :class:`AssociativeOp`);
    such workloads are always planned serial, and the serial kernel
    takes the object verbatim.  ``forced=True`` (the fuzzer)
    additionally zeroes the threaded kernel's cutover and the process
    pool's degradation threshold so the strategy genuinely executes
    even at fuzz sizes.
    """
    w = plan.workload
    run_op = op if op is not None else w.op
    chosen = plan.chosen
    float_mode = chosen.params.get("float_mode")
    t0 = time.perf_counter()
    if chosen.strategy == "threaded":
        from repro.kernels import ThreadedScan

        engine = ThreadedScan(
            threads=chosen.params.get("threads"),
            cutover_bytes=0 if forced else None,
            float_mode=float_mode,
        )
        out = engine.run(
            values,
            order=w.order,
            tuple_size=w.tuple_size,
            op=run_op,
            inclusive=w.inclusive,
        ).values
    elif chosen.strategy == "parallel":
        from repro.parallel import ParallelSamScan

        kwargs = {"num_workers": chosen.params.get("workers")}
        if forced:
            kwargs["min_parallel_elements"] = 0
        # No explicit teardown: the engine shares the module's warm
        # worker pool, which amortizes across planned scans.
        out = ParallelSamScan(**kwargs).run(
            values,
            order=w.order,
            tuple_size=w.tuple_size,
            op=run_op,
            inclusive=w.inclusive,
        ).values
    elif float_mode == "compensated":
        # Serial under the compensated contract: the one-thread
        # compensated kernel, so every candidate of this plan agrees.
        from repro.kernels import compensated_scan_into

        source = np.ascontiguousarray(values)
        out = compensated_scan_into(
            source,
            np.empty_like(source),
            run_op,
            order=w.order,
            tuple_size=w.tuple_size,
            inclusive=w.inclusive,
        )
    else:  # serial
        from repro.core.host import host_prefix_sum

        out = host_prefix_sum(
            values,
            order=w.order,
            tuple_size=w.tuple_size,
            op=run_op,
            inclusive=w.inclusive,
        )
    plan.observe(time.perf_counter() - t0)
    return out


def auto_scan(
    values,
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    force: Optional[str] = None,
    float_mode: Optional[str] = None,
) -> np.ndarray:
    """Plan and run one in-memory scan — the engine behind
    ``repro.scan(x)`` / ``repro.prefix_sum(x)`` when the caller passes
    no engine: bit-identical to the workload's (mode-relative)
    reference for every workload, as fast as the machine's candidate
    set allows."""
    workload = Workload.from_array(
        values, op=op, order=order, tuple_size=tuple_size,
        inclusive=inclusive, float_mode=float_mode,
    )
    if float_mode == "compensated" and np.dtype(workload.dtype).kind == "f":
        # Same contract as the session/sharded surfaces: asking for
        # compensated carries on an op they cannot recover is an error,
        # not a silent downgrade to the exact serial plan.
        from repro.kernels.compensated import check_compensated

        check_compensated(op, workload.dtype)
    plan = plan_scan(workload, force=force)
    return execute_plan(plan, values, op=op, forced=force is not None)


def explain_scan(
    values=None,
    *,
    nbytes: Optional[int] = None,
    dtype=None,
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    source: str = "memory",
    float_mode: Optional[str] = None,
) -> Plan:
    """Build (but do not run) the plan for a workload, for inspection.

    Describe the workload either by example (``values``) or by shape
    (``nbytes`` + ``dtype`` [+ ``source="file"``]).  The returned
    :class:`Plan` prints as the candidate table (``--explain``)."""
    if values is not None:
        workload = Workload.from_array(
            values, op=op, order=order, tuple_size=tuple_size,
            inclusive=inclusive, float_mode=float_mode,
        )
    else:
        if nbytes is None or dtype is None:
            raise ValueError("explain needs either values or nbytes + dtype")
        from repro.ops import get_op

        resolved = get_op(op)
        workload = Workload(
            nbytes=int(nbytes),
            dtype=resolved.check_dtype(dtype).name,
            op=resolved.name,
            order=int(order),
            tuple_size=int(tuple_size),
            inclusive=bool(inclusive),
            source=source,
            float_mode=float_mode,
        )
    return plan_scan(workload)


# -- file and session planning ----------------------------------------------


def plan_file_scan(
    input_path,
    dtype,
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    input_format: str = "auto",
    float_mode: Optional[str] = None,
) -> Plan:
    """Plan an out-of-core file scan (used by ``repro.scan_file`` when
    the caller pins neither ``shards`` nor ``chunk_bytes`` nor
    ``threads`` nor ``engine``).  ``input_format="auto"`` sniffs the
    blocked-container magic; a blocked input is planned as a
    compressed workload — dtype and logical size from its header, a
    decode term in the cost model, and no slab-threaded candidate
    (block decode is the serial bottleneck; sharding is the parallel
    answer).  ``float_mode`` threads the caller's float contract into
    the workload; blocked containers carry integer payloads today, so
    the flag only shapes raw-file plans."""
    from repro.stream.driver import resolve_input_format

    input_format = resolve_input_format(input_path, input_format)
    if input_format == "blocked":
        workload = Workload.from_blocked_file(
            input_path,
            op=op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
        )
    else:
        workload = Workload.from_file(
            input_path,
            dtype,
            op=op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            float_mode=float_mode,
        )
    return plan_scan(workload)


def session_threads(dtype, op="add", float_mode: Optional[str] = None) -> Optional[str]:
    """Planned ``threads=`` for a streaming/served session whose chunk
    sizes are unknown up front: ``"auto"`` on a multicore machine with
    a parallel-safe configuration (the threaded kernel's own tuned
    cutover then decides per chunk), ``None`` where slab threads could
    only add dispatch overhead."""
    if _plan_disabled():
        return None
    if (os.cpu_count() or 1) <= 1:
        # Cheap early-out: never touch the (possibly measuring) tuner
        # from a serve OPEN when threads could not help anyway.
        return None
    try:
        from repro.ops import get_op

        resolved = get_op(op)
        if np.dtype(dtype).kind in "iu":
            if resolved.ufunc is None:
                return None
        elif float_mode == "compensated":
            # Compensated float sessions parallelize their segment
            # pass-1 the same way integer slabs do.
            from repro.kernels import compensated_supported

            if not compensated_supported(resolved.name, dtype):
                return None
        else:
            return None
    except Exception:
        return None
    machine = machine_snapshot(dtype)
    return "auto" if machine.multicore else None
