"""What the planner plans over: a workload and a machine.

The paper's thesis is that the right scan structure is a function of
*measurable* parameters — element width, tuple size, order, problem
size, memory hierarchy — not of user folklore.  Six PRs of engines
gave this repo one knob per structural decision (``engine=``,
``threads=``, ``shards=``, ``chunk_bytes=``); this module names the
inputs those decisions actually depend on, so that
:mod:`repro.plan.planner` can make them from data.

* :class:`Workload` — one scan job, reduced to exactly the fields the
  cost model reads: payload size, dtype, operator, order, tuple size,
  inclusive flavor, where the bytes live (in memory vs on disk) and
  whether they are contiguous.  Frozen and hashable, so it doubles as
  the calibration-bucket key source.
* :class:`Machine` — this host, reduced the same way: core count plus
  the empirically tuned kernel geometry that
  :func:`repro.core.tuning.kernel_tuning` measures at first use
  (cache-block bytes, the threaded kernel's parallel cutover).  A
  snapshot is taken per dtype and memoized; with
  ``REPRO_TUNE_DISABLE=1`` it degrades to the built-in defaults and
  says so in ``tuning_source``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.ops import get_op

#: Workload sources the cost model distinguishes.
SOURCE_MEMORY = "memory"
SOURCE_FILE = "file"
SOURCE_COMPRESSED = "compressed-file"


@dataclass(frozen=True)
class Workload:
    """One scan job, described by the parameters cost depends on.

    ``nbytes`` is always the *logical* payload (elements × itemsize);
    a :data:`SOURCE_COMPRESSED` workload additionally carries
    ``compressed_nbytes`` — the container bytes that actually cross the
    disk — so the cost model can price the decode term separately from
    the (smaller) IO term.

    ``float_mode`` is the caller's float contract and is part of the
    workload, not a tunable: under ``"compensated"`` every candidate —
    serial included — produces the error-free-carry result, so the
    planner's bit-identity guarantee holds *within* the mode and
    parallel candidates open up for float ``add``.  ``None`` (and
    ``"exact"``) keep the historical promise that a float plan equals
    the sequential left fold bit for bit, which only the serial path
    can honor.
    """

    nbytes: int
    dtype: str
    op: str = "add"
    order: int = 1
    tuple_size: int = 1
    inclusive: bool = True
    source: str = SOURCE_MEMORY
    contiguous: bool = True
    compressed_nbytes: int = 0
    float_mode: Optional[str] = None

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {self.nbytes}")
        if self.order < 1 or self.tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        if self.source not in (SOURCE_MEMORY, SOURCE_FILE, SOURCE_COMPRESSED):
            raise ValueError(f"unknown workload source {self.source!r}")
        if self.float_mode not in (None, "exact", "compensated", "regrouped"):
            raise ValueError(f"unknown float_mode {self.float_mode!r}")

    @classmethod
    def from_array(
        cls,
        values,
        op="add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
        float_mode=None,
    ) -> "Workload":
        """Describe an in-memory array scan (the ``repro.scan(x)`` shape)."""
        array = np.asarray(values)
        resolved = get_op(op)
        return cls(
            nbytes=int(array.nbytes),
            dtype=resolved.check_dtype(array.dtype).name,
            op=resolved.name,
            order=int(order),
            tuple_size=int(tuple_size),
            inclusive=bool(inclusive),
            source=SOURCE_MEMORY,
            contiguous=bool(array.flags.c_contiguous or array.ndim != 1),
            float_mode=float_mode,
        )

    @classmethod
    def from_file(
        cls,
        path,
        dtype,
        op="add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
        float_mode=None,
    ) -> "Workload":
        """Describe an out-of-core file scan (the ``repro.scan_file`` shape)."""
        resolved = get_op(op)
        return cls(
            nbytes=int(os.path.getsize(path)),
            dtype=resolved.check_dtype(dtype).name,
            op=resolved.name,
            order=int(order),
            tuple_size=int(tuple_size),
            inclusive=bool(inclusive),
            source=SOURCE_FILE,
            contiguous=True,
            float_mode=float_mode,
        )

    @classmethod
    def from_blocked_file(
        cls,
        path,
        op="add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
    ) -> "Workload":
        """Describe a scan over a blocked ``.samb`` container.  The
        container header is authoritative for dtype and element count;
        ``nbytes`` is the logical payload and ``compressed_nbytes`` the
        container size on disk."""
        from repro.compression.stream import read_index

        index = read_index(path)
        resolved = get_op(op)
        dtype = resolved.check_dtype(index.dtype)
        return cls(
            nbytes=int(index.count) * dtype.itemsize,
            dtype=dtype.name,
            op=resolved.name,
            order=int(order),
            tuple_size=int(tuple_size),
            inclusive=bool(inclusive),
            source=SOURCE_COMPRESSED,
            contiguous=True,
            compressed_nbytes=int(index.container_bytes),
        )

    # -- derived ----------------------------------------------------------

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def elements(self) -> int:
        return self.nbytes // self.itemsize

    @property
    def on_disk(self) -> bool:
        """Whether the payload crosses the filesystem (raw or
        compressed) — the out-of-core drivers apply either way."""
        return self.source in (SOURCE_FILE, SOURCE_COMPRESSED)

    @property
    def integer(self) -> bool:
        """Fixed-width integer payloads are truly associative: every
        parallel regrouping (slabs, shards, process chunks) stays
        bit-identical.  Everything else is planned onto the exact
        serial path."""
        return np.dtype(self.dtype).kind in "iu"

    @property
    def compensable(self) -> bool:
        """Whether this workload runs under the compensated float
        contract: the caller asked for ``float_mode="compensated"`` and
        the kernels support it (float ``add`` with a real ufunc) on a
        contiguous buffer.  Compensable workloads get parallel
        candidates — every strategy, serial included, produces the
        same error-free-carry bits."""
        if self.float_mode != "compensated" or not self.contiguous:
            return False
        from repro.kernels import compensated_supported

        return compensated_supported(self.op, self.dtype)

    @property
    def scan_passes(self) -> int:
        """Memory passes the host kernels make over the payload.

        ``1`` inside the fused order-``q`` gate
        (:func:`repro.kernels.fused_supported`: integer ADD at
        ``order >= 2`` with ``tuple_size >= 2`` — the single-pass
        tile-resident path), ``order`` otherwise (iterated
        pass-per-order scans, the paper's ``2qn`` traffic).  The cost
        model divides by this instead of ``order`` wherever a term
        counts passes, so an order-3 integer scan is priced at its
        actual single-pass traffic.
        """
        if self.order == 1:
            return 1
        try:
            op = get_op(self.op)
        except (KeyError, TypeError):
            return self.order
        from repro.kernels import fused_supported

        if fused_supported(op, self.dtype, self.order, self.tuple_size):
            return 1
        return self.order

    @property
    def vectorized(self) -> bool:
        """Whether the operator has a GIL-releasing ufunc inner loop
        (looped operators serialize threads, so slab parallelism cannot
        win on them).  Unregistered custom operators — whose name
        cannot be resolved back to an op — count as looped: the planner
        then only ever proposes the serial path, which takes the
        original op object verbatim."""
        try:
            return get_op(self.op).ufunc is not None
        except (KeyError, TypeError):
            return False

    def size_bucket(self) -> int:
        """Power-of-two size bucket for calibration: observed throughput
        at 48 MiB should inform a prediction at 60 MiB, not at 6 KiB."""
        return max(1, int(self.nbytes)).bit_length()

    def calibration_key(self, strategy: str) -> str:
        """The calibration-store bucket this workload's observations of
        ``strategy`` feed (and read).  Parameters that change the
        bytes-per-second of a strategy are part of the key; ones that do
        not (inclusive flavor) are left out so buckets warm up faster.
        The float mode is appended only when set, so integer buckets
        (and pre-existing float ones) keep their historical keys."""
        suffix = f"|fm:{self.float_mode}" if self.float_mode else ""
        return (
            f"{strategy}|{self.source}|{self.dtype}|{self.op}"
            f"|q{self.order}|s{self.tuple_size}|b{self.size_bucket()}{suffix}"
        )


@dataclass(frozen=True)
class Machine:
    """This host, reduced to the parameters the cost model reads."""

    cpu_count: int
    block_bytes: int
    parallel_cutover_bytes: int
    tuning_source: str = "default"

    @property
    def multicore(self) -> bool:
        return self.cpu_count > 1


_MACHINE_MEMO: Dict[str, Machine] = {}


def machine_snapshot(dtype, *, refresh: bool = False) -> Machine:
    """The memoized :class:`Machine` for ``dtype``.

    Consults :func:`repro.core.tuning.kernel_tuning` — which measures
    at first use, caches on disk, and honors ``REPRO_TUNE_DISABLE=1``
    and the per-value env pins — so the planner sees exactly the
    geometry the kernels run with.  A tuner failure falls back to the
    built-in defaults instead of failing the scan.
    """
    key = np.dtype(dtype).name
    if not refresh and key in _MACHINE_MEMO:
        return _MACHINE_MEMO[key]
    cpu = os.cpu_count() or 1
    try:
        from repro.core.tuning import kernel_tuning

        tuning = kernel_tuning(dtype, refresh=refresh)
        machine = Machine(
            cpu_count=cpu,
            block_bytes=tuning.block_bytes,
            parallel_cutover_bytes=tuning.parallel_cutover_bytes,
            tuning_source=tuning.source,
        )
    except Exception:  # pragma: no cover - defensive: planning must not fail scans
        from repro.core.tuning import (
            DEFAULT_BLOCK_BYTES,
            DEFAULT_PARALLEL_CUTOVER_BYTES,
        )

        machine = Machine(
            cpu_count=cpu,
            block_bytes=DEFAULT_BLOCK_BYTES,
            parallel_cutover_bytes=DEFAULT_PARALLEL_CUTOVER_BYTES,
            tuning_source="fallback",
        )
    _MACHINE_MEMO[key] = machine
    return machine


def _reset_machine_memo() -> None:
    """Test hook: forget memoized snapshots (env/tuning changed)."""
    _MACHINE_MEMO.clear()
