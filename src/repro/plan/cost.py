"""The planner's cost model: analytic skeleton, empirical correction.

Every candidate strategy is priced as::

    time = fixed_overhead + nbytes / effective_bytes_per_second

with two sources for the throughput term, in priority order:

1. **Measured** — the calibration store's EWMA for this exact
   (strategy, source, dtype, op, order, tuple-size, size-bucket)
   bucket, fed by previous planned runs (the online feedback loop).
2. **Modeled** — an analytic composition in the vocabulary of
   :mod:`repro.perf.model`: a per-pass memory term that scales with
   ``order`` (iterated host passes re-touch the buffer, exactly the
   paper's 2qn argument against iterated scans), a parallel-efficiency
   factor for slab/shard strategies, an extra carry-fold traffic term
   (the fold pass re-touches ``(P-1)/P`` of the buffer), and the
   occupancy ramp :func:`repro.perf.ramp` with the *tuned parallel
   cutover* as the half-rate point — the empirically measured size at
   which dispatch overhead equals scan time on this machine.

The defaults are deliberately conservative "safe" numbers: with a cold
cache on an unknown machine the model must never pick a strategy that
falls off a cliff, merely possibly miss a win until feedback arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.perf.model import ramp
from repro.plan.calibration import CalibrationStore
from repro.plan.workload import Machine, Workload

#: Conservative cold-cache throughput guesses (bytes/second).  The
#: in-memory number is a low-end single-core accumulate rate; the file
#: number folds read + scan + write over a buffered disk.  Both are
#: corrected by the first real observation.
DEFAULT_MEMORY_BYTES_PER_SECOND = 2e9
DEFAULT_FILE_BYTES_PER_SECOND = 6e8

#: Varint+zigzag block decode rate, in *logical* bytes per second — a
#: conservative number for the vectorized decoder.  A compressed
#: workload's per-byte time is the sum of an IO term scaled by its
#: compression ratio (only ``compressed_nbytes`` cross the disk) and
#: this decode term, so better ratios genuinely predict faster scans.
DEFAULT_DECODE_BYTES_PER_SECOND = 5e8

#: Per-call bookkeeping before any data moves (validation, dispatch).
T_CALL_SECONDS = 3e-6

#: One thread-pool dispatch barrier (submit + join a round of futures).
T_DISPATCH_SECONDS = 6e-5

#: Opening the out-of-core machinery (mmap, session, output file).
T_FILE_SECONDS = 4e-4

#: Warming / reattaching the shared-memory process pool.
T_POOL_SECONDS = 3e-2

#: Fraction of linear scaling a slab/shard actually delivers (memory
#: bandwidth is shared; threads contend on it).
PARALLEL_EFFICIENCY = 0.7

#: The process pool additionally copies chunks into and out of shared
#: memory: ~3x the traffic of the in-place threaded kernel.
PROCESS_TRAFFIC_FACTOR = 3.0

#: Sharded jobs pay a splice pass plus manifest bookkeeping per shard.
T_SHARD_SECONDS = 2e-3


@dataclass
class Candidate:
    """One priced strategy: what would run, and what it should cost."""

    strategy: str            # "serial" | "threaded" | "parallel" | "stream" | "sharded"
    params: dict = field(default_factory=dict)
    predicted_seconds: float = 0.0
    throughput_source: str = "model"   # "model" | "measured"
    note: str = ""

    @property
    def label(self) -> str:
        """Compact display / counters form, e.g. ``threaded:4`` or
        ``sharded:6`` (a sharded candidate is named by its shard count,
        not its worker cap)."""
        for key in ("threads", "shards", "workers"):
            if key in self.params:
                return f"{self.strategy}:{self.params[key]}"
        return self.strategy

    def calibration_key(self, workload: Workload) -> str:
        return workload.calibration_key(self.strategy)


def _throughput(
    candidate: Candidate,
    workload: Workload,
    store: Optional[CalibrationStore],
    modeled: float,
) -> float:
    """Measured bucket throughput when available, else the model's."""
    if store is not None:
        measured = store.throughput(candidate.calibration_key(workload))
        if measured is not None:
            candidate.throughput_source = "measured"
            return measured
    candidate.throughput_source = "model"
    return modeled


def _base_rate(workload: Workload) -> float:
    if workload.source == "compressed-file":
        # Per logical byte: an IO share shrunk by the compression ratio
        # plus a decode share.  An incompressible container degrades to
        # raw-file IO + decode overhead, never better.
        io_fraction = workload.compressed_nbytes / max(1, workload.nbytes)
        per_byte = (
            io_fraction / DEFAULT_FILE_BYTES_PER_SECOND
            + 1.0 / DEFAULT_DECODE_BYTES_PER_SECOND
        )
        base = 1.0 / per_byte
    elif workload.source == "file":
        base = DEFAULT_FILE_BYTES_PER_SECOND
    else:
        base = DEFAULT_MEMORY_BYTES_PER_SECOND
    # Looped (non-ufunc) operators run Python-rate inner loops.
    return base if workload.vectorized else base / 50.0


def _anchored_base(
    workload: Workload, store: Optional[CalibrationStore]
) -> float:
    """The per-pass base rate, anchored to this machine when possible.

    Candidates that have been run carry *measured* throughput while
    never-run candidates keep the model's guess — and an optimistic
    guess would then beat an honest measurement forever.  Anchoring
    fixes the asymmetry: when the baseline strategy (serial / stream)
    has a measured bucket, every *modeled* sibling is priced relative
    to that measurement instead of the built-in default, so the model
    only ever expresses relative structure (scaling, traffic, fixed
    costs), not absolute optimism.
    """
    base = _base_rate(workload)
    if store is not None:
        anchor = "serial" if workload.source == "memory" else "stream"
        measured = store.throughput(workload.calibration_key(anchor))
        if measured is not None:
            # price_serial models the anchor as base / scan_passes
            # (1 inside the fused order-q gate); invert it.
            base = measured * workload.scan_passes
    return base


def plan_chunk_bytes(nbytes: int) -> int:
    """Planned chunk size for the double-buffered single-session
    driver: about four chunks per job, so reads, scans, and writes of
    neighboring chunks actually overlap (one job-sized chunk degrades
    the pipeline to strictly sequential phases), floored to keep
    per-chunk overhead amortized and capped at the driver default."""
    from repro.stream.driver import DEFAULT_CHUNK_BYTES

    return int(min(DEFAULT_CHUNK_BYTES, max(1 << 20, nbytes // 4)))


def price_serial(
    workload: Workload, machine: Machine, store: Optional[CalibrationStore]
) -> Candidate:
    """The one-dispatch serial lane kernel (or single-session driver)."""
    params = (
        {"chunk_bytes": plan_chunk_bytes(workload.nbytes)}
        if workload.on_disk
        else {}
    )
    candidate = Candidate(
        "serial" if workload.source == "memory" else "stream", params=params
    )
    per_pass = _anchored_base(workload, store)
    modeled = per_pass / workload.scan_passes
    rate = _throughput(candidate, workload, store, modeled)
    fixed = T_CALL_SECONDS + (
        T_FILE_SECONDS if workload.on_disk else 0.0
    )
    candidate.predicted_seconds = fixed + workload.nbytes / rate
    candidate.note = "exact for every dtype/op; no dispatch overhead"
    return candidate


def price_threaded(
    workload: Workload,
    machine: Machine,
    store: Optional[CalibrationStore],
    threads: int,
) -> Candidate:
    """Slab-parallel in-memory kernel (or threaded chunk scans for a
    file job): scan -> splice -> fold on ``threads`` workers."""
    name = "threaded" if workload.source == "memory" else "stream_threaded"
    params = {"threads": threads}
    if workload.on_disk:
        params["chunk_bytes"] = plan_chunk_bytes(workload.nbytes)
    candidate = Candidate(name, params=params)
    effective = max(1, min(threads, machine.cpu_count))
    scale = 1.0 + (effective - 1) * PARALLEL_EFFICIENCY
    fold_traffic = 1.0 + (effective - 1) / effective  # fold re-touches P-1 slabs
    modeled = _anchored_base(workload, store) * scale / (
        workload.scan_passes * fold_traffic
    )
    rate = _throughput(candidate, workload, store, modeled)
    fixed = (
        T_CALL_SECONDS
        + (T_FILE_SECONDS if workload.on_disk else 0.0)
        + 2 * T_DISPATCH_SECONDS * threads * workload.scan_passes
    )
    occupancy = ramp(workload.nbytes, machine.parallel_cutover_bytes, 1.0)
    candidate.predicted_seconds = fixed + workload.nbytes / rate * occupancy
    candidate.note = f"{effective} effective core(s), splice + fold per pass"
    return candidate


def price_parallel(
    workload: Workload,
    machine: Machine,
    store: Optional[CalibrationStore],
    workers: int,
) -> Candidate:
    """The shared-memory process pool (``repro.parallel``)."""
    candidate = Candidate("parallel", params={"workers": workers})
    effective = max(1, min(workers, machine.cpu_count))
    scale = 1.0 + (effective - 1) * PARALLEL_EFFICIENCY
    # The process pool keeps the pass-per-order layout (its workers
    # scan order-1 chunks), so it is priced at the full order even
    # where the host kernels would fuse.
    modeled = _anchored_base(workload, store) * scale / (
        workload.order * PROCESS_TRAFFIC_FACTOR
    )
    rate = _throughput(candidate, workload, store, modeled)
    occupancy = ramp(workload.nbytes, machine.parallel_cutover_bytes, 1.0)
    candidate.predicted_seconds = (
        T_POOL_SECONDS + workload.nbytes / rate * occupancy
    )
    candidate.note = "process pool over shared memory (copy-in/copy-out)"
    return candidate


def price_sharded(
    workload: Workload,
    machine: Machine,
    store: Optional[CalibrationStore],
    shards: int,
    workers: int,
) -> Candidate:
    """The sharded out-of-core driver: concurrent shard scans + splice."""
    candidate = Candidate(
        "sharded", params={"shards": shards, "workers": workers}
    )
    effective = max(1, min(workers, machine.cpu_count))
    scale = 1.0 + (effective - 1) * PARALLEL_EFFICIENCY
    # With one effective worker every shard is primed (single pass, no
    # fold); with more, roughly (P-1)/P of the bytes see a fold pass.
    fold_traffic = 1.0 + (effective - 1) / effective
    modeled = _anchored_base(workload, store) * scale / (
        workload.scan_passes * fold_traffic
    )
    rate = _throughput(candidate, workload, store, modeled)
    fixed = T_FILE_SECONDS + T_SHARD_SECONDS * shards * workload.scan_passes
    occupancy = ramp(
        workload.nbytes, max(machine.parallel_cutover_bytes, 1), 1.0
    )
    candidate.predicted_seconds = fixed + workload.nbytes / rate * occupancy
    candidate.note = f"{shards} shard(s) on {workers} worker(s), carry splice"
    return candidate
