"""The planner's empirical memory: measured strategy throughput.

The analytic cost model (:mod:`repro.plan.cost`) ranks strategies from
first principles; this store corrects it with what actually happened
on this machine.  Every planned dispatch reports its observed
bytes-per-second back through :meth:`CalibrationStore.observe`, which
folds it into an exponential moving average keyed by
:meth:`repro.plan.Workload.calibration_key` — strategy, source, dtype,
op, order, tuple size, and a power-of-two size bucket — and persists
the table next to the kernel-tuning cache.  Repeated workloads
therefore converge on measured numbers, exactly like the install-time
tuner the paper adopts from StreamScan, but continuously instead of
once.

Robustness contract (tested):

* a *missing* store is a cache miss, not an error — the analytic model
  serves alone until observations arrive;
* a *corrupt* store (truncated JSON, wrong version, garbage entries)
  is silently treated as empty and overwritten on the next
  observation — calibration is an optimization, never a failure mode;
* an *unwritable* store degrades to per-process memory;
* *concurrent writers* (several planned processes on one machine)
  merge instead of clobbering: each persist re-reads the file under an
  ``fcntl`` file lock and keeps, per bucket, whichever entry has seen
  more samples — so two processes warming different buckets both land,
  and the better-warmed EWMA survives a race on the same bucket.  On
  platforms without ``fcntl`` (or an unlockable directory) this
  degrades to the plain last-writer-wins write;
* ``REPRO_TUNE_DISABLE=1`` disables reads and writes entirely — the
  planner then runs on the static heuristics alone.

``REPRO_PLAN_CACHE=path`` overrides the file location (the tests use
it to isolate themselves from the developer's real calibration).
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
from typing import Dict, Optional

#: EWMA weight of a new observation: heavy enough that a handful of
#: runs converge, light enough that one noisy run cannot flip a plan.
EWMA_ALPHA = 0.3

#: Relative EWMA movement below which an observation updates process
#: memory but skips the disk write.  Converged buckets then cost no
#: I/O per scan (the write is milliseconds — measurable against small
#: jobs), while new buckets and real drift still persist immediately.
PERSIST_REL_DELTA = 0.02

_STORE_VERSION = 1

_STORE_LOCK = threading.Lock()
_STORE_MEMO: Dict[str, "CalibrationStore"] = {}


def calibration_path() -> str:
    """Where the calibration table lives: ``REPRO_PLAN_CACHE`` if set,
    else ``planner_calibration.json`` next to the kernel-tuning cache."""
    override = os.environ.get("REPRO_PLAN_CACHE")
    if override:
        return override
    from repro.core.tuning import tuning_cache_dir

    return os.path.join(tuning_cache_dir(), "planner_calibration.json")


def _disabled() -> bool:
    return bool(os.environ.get("REPRO_TUNE_DISABLE"))


@contextlib.contextmanager
def _interprocess_lock(path: str):
    """Exclusive advisory lock on ``path`` (created if missing).

    Yields ``True`` while the lock is held.  Anywhere the lock cannot
    be taken — no ``fcntl`` on this platform, unwritable directory —
    it yields ``False`` and the caller proceeds unlocked (the
    pre-lock, last-writer-wins behavior).
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        yield False
        return
    try:
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    except OSError:
        yield False
        return
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - fs without flock
            yield False
            return
        yield True
    finally:
        os.close(fd)  # closing the fd releases the flock


def _parse_entries(data) -> Dict[str, dict]:
    """Validate a loaded store document into an entries dict (empty on
    any structural problem — corruption is never an error)."""
    entries: Dict[str, dict] = {}
    if isinstance(data, dict) and data.get("version") == _STORE_VERSION:
        raw = data.get("entries")
        if isinstance(raw, dict):
            for key, entry in raw.items():
                try:
                    entries[str(key)] = {
                        "bytes_per_second": float(entry["bytes_per_second"]),
                        "samples": int(entry["samples"]),
                    }
                except (KeyError, TypeError, ValueError):
                    continue  # one bad row never poisons the rest
    return entries


class CalibrationStore:
    """Measured bytes-per-second per (strategy, workload bucket)."""

    def __init__(self, path: Optional[str] = None):
        self.path = path if path is not None else calibration_path()
        self._entries: Optional[Dict[str, dict]] = None
        self._lock = threading.Lock()

    # -- persistence ------------------------------------------------------

    def _read_disk(self) -> Dict[str, dict]:
        """Parse the on-disk table without touching process memory."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = None
        return _parse_entries(data)

    def _load(self) -> Dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries = {} if _disabled() else self._read_disk()
        self._entries = entries
        return entries

    def _merge_from_disk(self) -> None:
        """Fold concurrent writers' entries into process memory: per
        bucket, whichever side has seen more samples wins (a tie keeps
        ours — it includes the observation being persisted)."""
        mine = self._entries if self._entries is not None else {}
        for key, theirs in self._read_disk().items():
            ours = mine.get(key)
            if ours is None or theirs["samples"] > ours["samples"]:
                mine[key] = theirs
        self._entries = mine

    def _persist(self) -> None:
        """Best effort: an unwritable cache degrades to process memory.

        Holds the interprocess lock across re-read + merge + replace,
        so concurrent planned processes compose their tables instead of
        the last writer erasing everyone else's warm buckets.
        """
        try:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        except OSError:
            return
        with _interprocess_lock(f"{self.path}.lock") as locked:
            if locked:
                self._merge_from_disk()
            payload = {"version": _STORE_VERSION, "entries": self._entries or {}}
            try:
                tmp = f"{self.path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                os.replace(tmp, self.path)
            except OSError:
                pass

    # -- the planner-facing API ------------------------------------------

    def throughput(self, key: str) -> Optional[float]:
        """Measured bytes/second for a calibration key, or ``None``
        (cache miss, or calibration disabled)."""
        if _disabled():
            return None
        with self._lock:
            entry = self._load().get(key)
        if entry is None or entry["bytes_per_second"] <= 0:
            return None
        return entry["bytes_per_second"]

    def samples(self, key: str) -> int:
        if _disabled():
            return 0
        with self._lock:
            entry = self._load().get(key)
        return 0 if entry is None else entry["samples"]

    def observe(self, key: str, bytes_per_second: float) -> bool:
        """Fold one observed throughput into the bucket's EWMA and
        persist; returns whether the observation was recorded."""
        if _disabled():
            return False
        if not (bytes_per_second > 0.0):  # rejects NaN too
            return False
        with self._lock:
            entries = self._load()
            entry = entries.get(key)
            if entry is None:
                entries[key] = {
                    "bytes_per_second": float(bytes_per_second),
                    "samples": 1,
                }
                self._persist()
            else:
                old = entry["bytes_per_second"]
                new = old + EWMA_ALPHA * (float(bytes_per_second) - old)
                entry["bytes_per_second"] = new
                entry["samples"] += 1
                if abs(new - old) > PERSIST_REL_DELTA * old:
                    self._persist()
        return True


def get_store(path: Optional[str] = None) -> CalibrationStore:
    """The memoized process-wide store for ``path`` (default location
    when omitted — re-resolved per call so tests can repoint
    ``REPRO_PLAN_CACHE`` between cases)."""
    resolved = path if path is not None else calibration_path()
    with _STORE_LOCK:
        store = _STORE_MEMO.get(resolved)
        if store is None:
            store = CalibrationStore(resolved)
            _STORE_MEMO[resolved] = store
        return store


def _reset_store_memo() -> None:
    """Test hook: forget cached stores (the cache path changed)."""
    with _STORE_LOCK:
        _STORE_MEMO.clear()
