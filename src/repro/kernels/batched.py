"""Batched multi-stream lane scans: B carry continuations, one dispatch.

The serving workload (:mod:`repro.serve`) is thousands of small
concurrent streams, not one giant array.  Feeding each stream through
its own :class:`~repro.kernels.LaneKernel` costs a full Python/numpy
dispatch per chunk — tens of microseconds of interpreter overhead to
scan a kilobyte.  This module coalesces ``B`` *compatible* pending
feeds (same operator, dtype, and tuple size) into **one** lane-block
accumulate per dispatch, so the per-feed overhead is paid once per
batch instead of once per stream.

The identity-padding trick
--------------------------

Stream ``i``'s chunk (length ``n_i``, first element at global stream
position ``pos_i``) is laid into row-major block ``i`` of a staged
``(B, M, s)`` buffer, where ``M = ceil(max_i n_i / s)``; the unused
tail of each block is filled with the operator's identity.  One
``op.accumulate(axis=1)`` then scans *all* ``B`` lane blocks — every
lane of every stream — in a single ufunc call, and one broadcast
``op(carry, x)`` over the staged buffer folds all ``B`` phase-order
carry rows at once.  Identity padding is what makes unequal chunk
lengths free:

* scanned values at padded positions repeat the lane's last real value
  (``op(x, e) == x``), so the **final staged row is exactly the
  per-lane running totals** — the new carries — for every touched
  lane, with no per-stream tail handling;
* a lane the stream has not reached yet (``lane >= pos_i`` while
  ``pos_i < s``) gets the identity in its carry slot, and folding the
  identity is a no-op.

Both properties need ``op(e, x) == x == op(x, e)`` to hold *exactly*,
which is why the batched path is restricted to the truly associative
fixed-width integer dtypes (wraparound included) with real-ufunc
operators: there it is **bit-identical** to feeding each stream's
:class:`LaneKernel` individually.  Floats are only pseudo-associative
and keep the per-stream exact prepend path (the streaming session's
float mode); looped operators have no batched accumulate to win from.

:class:`BatchedLaneKernel` owns a grow-only staging buffer (batches
re-use the allocation) and two occupancy counters, ``dispatches`` and
``streams_fed``, from which the service derives its batch-occupancy
gauge (``streams_fed / dispatches``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.kernels.lane import LaneKernel, fused_deltas, fused_supported
from repro.ops import AssociativeOp, get_op


def batchable_op_dtype(op: AssociativeOp, dtype) -> bool:
    """Whether ``(op, dtype)`` may take the batched dispatch path.

    True exactly when the identity-padding argument above is bit-exact:
    a real-ufunc operator over a fixed-width integer dtype.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        return False
    return op.ufunc is not None and resolved.kind in "iu"


class BatchedLaneKernel:
    """One kernel dispatch servicing ``B`` independent scan streams.

    Parameters
    ----------
    op / dtype / tuple_size:
        The batch compatibility key: every stream fed through this
        kernel must share all three (the server groups pending feeds by
        exactly this key).  ``dtype`` must be a fixed-width integer and
        ``op`` a real-ufunc operator — see the module docs for why the
        batched path cannot cover floats or looped operators.

    :meth:`stage_scan` is the primitive (one inclusive continuation
    pass over B chunks, carries updated in place); :meth:`feed_many`
    is the drop-in replacement for ``[k.feed(c) for k, c in ...]``
    over in-place integer :class:`LaneKernel` instances.
    """

    def __init__(self, op, dtype, tuple_size: int = 1):
        self.op = get_op(op)
        self.dtype = self.op.check_dtype(dtype)
        if not batchable_op_dtype(self.op, self.dtype):
            raise TypeError(
                f"batched dispatch requires a fixed-width integer dtype and "
                f"a ufunc operator; got op={self.op.name!r}, "
                f"dtype={self.dtype.name}"
            )
        self.s = int(tuple_size)
        if self.s < 1:
            raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
        #: Kernel dispatches issued (each services a whole batch).
        self.dispatches = 0
        #: Stream feeds serviced across all dispatches; the occupancy
        #: gauge is ``streams_fed / dispatches``.
        self.streams_fed = 0
        self._staged: Optional[np.ndarray] = None

    def occupancy(self) -> float:
        """Mean streams serviced per dispatch (0.0 before any feed)."""
        return self.streams_fed / self.dispatches if self.dispatches else 0.0

    def _staging(self, size: int) -> np.ndarray:
        if self._staged is None or self._staged.size < size:
            self._staged = np.empty(size, dtype=self.dtype)
        return self._staged[:size]

    # -- the batched primitive -------------------------------------------

    def stage_scan(
        self,
        chunks: Sequence[np.ndarray],
        carries: np.ndarray,
        positions: Sequence[int],
    ) -> List[np.ndarray]:
        """One batched inclusive lane-scan pass continuing ``B`` streams.

        Parameters
        ----------
        chunks:
            ``B`` non-empty 1-D arrays of the kernel's dtype; chunk
            ``i``'s first element sits at global stream index
            ``positions[i]``.
        carries:
            ``(B, s)`` matrix of per-stream carry rows in **lane
            order**, updated in place.  Lane ``l`` of stream ``i`` is
            live iff ``l < positions[i]``; dead lanes must hold the
            identity (both :class:`LaneKernel` and the streaming
            session maintain exactly that invariant).
        positions:
            Global stream offsets; **not** advanced (an order-``q``
            feed runs ``q`` passes at the same offset, the caller
            advances once).

        Returns the ``B`` scanned chunks as fresh arrays, bit-identical
        to ``lane_scan`` + carry fold per stream.
        """
        B = len(chunks)
        if B == 0:
            return []
        if carries.shape != (B, self.s):
            raise ValueError(
                f"carries must have shape {(B, self.s)}, got {carries.shape}"
            )
        op, s = self.op, self.s
        ns = [int(c.size) for c in chunks]
        if min(ns) == 0:
            raise ValueError("batched chunks must be non-empty")
        rows = -(-max(ns) // s)  # ceil
        span = rows * s
        identity = op.identity(self.dtype)
        flat = self._staging(B * span)
        staged = flat.reshape(B, rows, s)
        uniform = all(n == span for n in ns)
        for i, chunk in enumerate(chunks):
            base = i * span
            flat[base : base + ns[i]] = chunk
            if not uniform and ns[i] < span:
                flat[base + ns[i] : base + span] = identity
        with np.errstate(over="ignore"):
            op.accumulate(staged, axis=1, out=staged)

        pos = np.asarray(positions, dtype=np.int64).reshape(B, 1)
        # perms[i, p] = global lane of stream i's chunk phase p.
        perms = (pos + np.arange(s)) % s
        live = perms < pos
        if live.any():
            carry_phase = np.take_along_axis(carries, perms, axis=1)
            if not live.all():
                carry_phase[~live] = identity
            op.apply_into(carry_phase[:, None, :], staged, out=staged)

        # New carries: the final staged row *is* the per-lane running
        # totals (identity padding keeps each lane constant past its
        # last real element).  Only phases the chunk touched (p < n_i)
        # are written back, so dead lanes keep their identity.
        finals = staged[:, -1, :]
        touched = np.arange(s) < np.minimum(np.asarray(ns), s).reshape(B, 1)
        flat_lanes = (perms + np.arange(B).reshape(B, 1) * s)[touched]
        carries.reshape(-1)[flat_lanes] = finals[touched]

        outs = [
            flat[i * span : i * span + ns[i]].copy() for i in range(B)
        ]
        self.dispatches += 1
        self.streams_fed += B
        return outs

    # -- the fused order-q primitive -------------------------------------

    def stage_scan_fused(
        self,
        chunks: Sequence[np.ndarray],
        carries: np.ndarray,
        positions: Sequence[int],
        order: int,
    ) -> List[np.ndarray]:
        """One batched **fused** order-``q`` continuation pass.

        The order-``q`` analogue of :meth:`stage_scan`: stages the
        ``B`` chunks once, injects each stream's binomial carry deltas
        (:func:`repro.kernels.fused_deltas`) into its first ``q``
        staged rows, runs ``q`` batched ``axis=1`` accumulates, and
        harvests every order's new running totals at each lane's last
        *real* row — identity padding keeps lanes constant only through
        the first accumulate, so for ``q >= 2`` the final staged row is
        not the totals and the harvest indexes ``(n_i - 1 - c) // s``
        per column instead.

        ``carries`` is the ``(B, q, s)`` stack of per-stream order-total
        matrices in **lane order** (row ``j-1`` = ``T_j``), updated in
        place.  Every chunk must have ``n_i >= q * s`` elements (so the
        injected delta rows are fully real and every harvest row sits
        past the delta turbulence); the caller gates on that, on
        :func:`repro.kernels.fused_supported`, and falls back to ``q``
        :meth:`stage_scan` passes otherwise.  Bit-identical to the
        pass-per-order dispatches for every fixed-width integer dtype.
        """
        B = len(chunks)
        if B == 0:
            return []
        op, s, q = self.op, self.s, int(order)
        if carries.shape != (B, q, s):
            raise ValueError(
                f"carries must have shape {(B, q, s)}, got {carries.shape}"
            )
        if not fused_supported(op, self.dtype, q, s):
            raise ValueError(
                f"(op={op.name!r}, dtype={self.dtype.name}, order={q}, "
                f"s={s}) is outside the fused gate"
            )
        ns = [int(c.size) for c in chunks]
        if min(ns) < q * s:
            raise ValueError(
                f"fused batched chunks need >= order * tuple_size = {q * s} "
                f"elements, got {min(ns)}"
            )
        rows = -(-max(ns) // s)
        span = rows * s
        identity = op.identity(self.dtype)
        flat = self._staging(B * span)
        staged = flat.reshape(B, rows, s)
        uniform = all(n == span for n in ns)
        for i, chunk in enumerate(chunks):
            base = i * span
            flat[base : base + ns[i]] = chunk
            if not uniform and ns[i] < span:
                flat[base + ns[i] : base + span] = identity

        pos = np.asarray(positions, dtype=np.int64).reshape(B, 1)
        perms = (pos + np.arange(s)) % s  # (B, s): phase p -> global lane
        # Phase-order carry stacks: fused_deltas is shape-agnostic past
        # its leading order axis, so one call covers the whole batch.
        carry_phase = np.take_along_axis(carries, perms[:, None, :], axis=2)
        with np.errstate(over="ignore"):
            deltas = fused_deltas(
                np.ascontiguousarray(carry_phase.transpose(1, 0, 2))
            )
            staged[:, :q, :] += deltas.transpose(1, 0, 2)
            # Last real row of each lane column: every n_i >= q*s, so
            # all s columns are touched and every index is >= q - 1.
            harvest = (
                (np.asarray(ns).reshape(B, 1) - 1 - np.arange(s)) // s
            )[:, None, :]
            for j in range(q):
                op.accumulate(staged, axis=1, out=staged)
                carry_phase[:, j, :] = np.take_along_axis(
                    staged, harvest, axis=1
                )[:, 0, :]
        np.put_along_axis(carries, perms[:, None, :], carry_phase, axis=2)

        outs = [
            flat[i * span : i * span + ns[i]].copy() for i in range(B)
        ]
        self.dispatches += 1
        self.streams_fed += B
        return outs

    # -- LaneKernel batch adapter ----------------------------------------

    def feed_many(
        self, kernels: Sequence[LaneKernel], chunks: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """Batched ``[k.feed(c) for k, c in zip(kernels, chunks)]``.

        Every kernel must be a distinct in-place (``exact=False``)
        integer :class:`LaneKernel` matching this batch key; outputs,
        carry rows, activity masks, and positions end up bit-identical
        to the sequential feeds.  Empty chunks are passed through like
        ``feed`` does (a scan no-op).
        """
        if len(kernels) != len(chunks):
            raise ValueError(
                f"{len(kernels)} kernels but {len(chunks)} chunks"
            )
        if len(set(map(id, kernels))) != len(kernels):
            raise ValueError("a kernel may appear at most once per batch")
        for kernel in kernels:
            if kernel.exact:
                raise ValueError(
                    "batched dispatch requires in-place (exact=False) kernels"
                )
            if (
                kernel.op.name != self.op.name
                or kernel.dtype != self.dtype
                or kernel.s != self.s
            ):
                raise ValueError(
                    f"kernel (op={kernel.op.name!r}, dtype={kernel.dtype.name}, "
                    f"s={kernel.s}) does not match batch key "
                    f"(op={self.op.name!r}, dtype={self.dtype.name}, s={self.s})"
                )
        outs: List[Optional[np.ndarray]] = [None] * len(kernels)
        live = []
        arrays = []
        for i, chunk in enumerate(chunks):
            arr = np.asarray(chunk)
            if arr.size == 0:
                outs[i] = kernels[i].feed(arr)
            else:
                live.append(i)
                arrays.append(arr.astype(self.dtype, copy=False))
        if live:
            carries = np.stack([kernels[i].carry for i in live])
            positions = [kernels[i].pos for i in live]
            scanned = self.stage_scan(arrays, carries, positions)
            for j, i in enumerate(live):
                kernel = kernels[i]
                kernel.carry[:] = carries[j]
                n = arrays[j].size
                t = min(n, kernel.s)
                lanes = (kernel.pos + np.arange(t)) % kernel.s
                kernel.active[lanes] = True
                kernel.pos += n
                outs[i] = scanned[j]
        return outs
