"""Compensated float lane scans: deterministic parallelism for floats.

Every parallel path in this repo — the threaded slab kernel, the
sharded driver, the batched serve kernel — regroups the scan's
reduction, which is exact for fixed-width integers and *wrong by one
rounding per regroup* for floats.  The exact float path therefore had
to stay sequential (the prepend-carry kernel), locking floats out of
every speedup since PR 1.

This module unlocks them with error-free transformations
(:mod:`repro.ops.eft`).  The compensated scan is defined per lane as:

1. **Segments.**  Each lane's element stream is cut into *segments* of
   :data:`SEGMENT_ROWS` elements.  Segment boundaries are a pure
   function of the global element index (every ``SEGMENT_ROWS * s``
   elements) — never of the thread count, shard count, or chunk split,
   which is what makes the result bit-identical across all of them.
2. **Local naive scan.**  Within a segment, the lane is scanned by the
   plain sequential left fold ``L_j = fl(L_{j-1} + x_j)`` (one
   vectorized ``accumulate`` — exactly the fast integer inner loop).
3. **Exact error recovery.**  Each step's discarded rounding error is
   recovered *exactly* with :func:`repro.ops.two_sum_err` (branch-free,
   vectorized) and accumulated into a running local compensation
   ``E_j`` (its own naive scan — errors of errors are second order).
4. **The double-double chain.**  Segment totals ``(T, F) = (L_B, E_B)``
   feed a sequential double-double carry chain
   ``(H, G) <- dd_add(H, G, T, F)`` — tiny (one step per segment), so
   the host replays it identically no matter how segments were
   distributed over threads or shards.
5. **Render.**  The emitted value is
   ``out_j = fl(fl(fl(E_j + G) + H) + L_j)`` — local value plus the
   compensated carry, small terms first.

The carry state is four floats per lane — ``(H, G)`` plus the
in-segment partials ``(L, E)`` — all canonically zeroed to ``-0.0``
(the true float-add identity, see :mod:`repro.ops.eft`), which makes a
zero carry a bitwise no-op: for inputs shorter than one segment the
compensated scan *is* the naive scan, ``-0.0`` outputs included.

Accuracy: intra-segment errors are recovered exactly and re-injected
per element; inter-segment errors live in the double-double chain.
The worst-case error is a couple of ulps of the running prefix —
versus the naive serial fold's O(n)-growth — so compensated results
are *more* accurate than the exact-sequential path's on
cancellation-heavy inputs, while still being deterministic.
Non-finite inputs poison the error chain: outputs at and after the
first ``inf``/``NaN`` are non-finite (in general NaN, because
``inf - inf`` appears in the recovered error), deterministically.

Only ``add`` compensates — two-sum is an additive identity.  Float
``max``/``min`` are exactly associative and never needed this; float
``mul`` keeps the exact sequential path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.kernels.lane import phase_perm, phase_totals
from repro.ops import get_op
from repro.ops.eft import NEG_ZERO, canonicalize_errors, dd_add, two_sum_err

#: Per-lane elements per segment.  A segment of one float64 lane is
#: 32 KiB — cache-resident for the whole recover/compensate pipeline —
#: and the double-double chain gets one step per segment.  Fixed (not
#: tuned): the segment grid is part of the compensated result's
#: definition, so it must not vary with the machine.
SEGMENT_ROWS = 4096

#: Row indices of the ``(4, s)`` compensated carry state.
HI, LO, VPART, EPART = 0, 1, 2, 3

#: The three float handling modes of every scan surface.
FLOAT_MODES = ("exact", "compensated", "regrouped")


def compensated_supported(op, dtype) -> bool:
    """Whether ``(op, dtype)`` can take the compensated path: float
    dtype under the real-ufunc ``add`` (two-sum is addition-specific)."""
    try:
        op = get_op(op)
        resolved = np.dtype(dtype)
    except (TypeError, ValueError):
        return False
    return op.name == "add" and op.ufunc is not None and resolved.kind == "f"


def check_compensated(op, dtype):
    """Validate ``(op, dtype)`` for the compensated path (raises
    ``TypeError``); returns the resolved ``(op, dtype)``."""
    op = get_op(op)
    resolved = np.dtype(dtype)
    if not compensated_supported(op, resolved):
        raise TypeError(
            f"compensated float mode requires the ufunc 'add' operator on a "
            f"float dtype (two-sum recovers *addition* errors); got "
            f"op={op.name!r}, dtype={resolved.name}"
        )
    return op, resolved


def resolve_float_mode(dtype, float_mode=None, exact=None, default="exact"):
    """Resolve the float-mode parameter pair of a scan surface.

    Returns one of :data:`FLOAT_MODES` for float dtypes, ``None`` for
    integers (integer regrouping is exact; the modes do not apply).
    ``float_mode`` wins when given; otherwise the legacy ``exact``
    tri-state maps ``True -> "exact"``, ``False -> "regrouped"``,
    ``None -> default`` (the surface's historical float behaviour).
    """
    if np.dtype(dtype).kind in "iu":
        return None
    if float_mode is not None:
        if float_mode not in FLOAT_MODES:
            raise ValueError(
                f"float_mode must be one of {FLOAT_MODES}, got {float_mode!r}"
            )
        return float_mode
    if exact is None:
        return default
    return "exact" if exact else "regrouped"


def fresh_state(dtype, tuple_size: int) -> np.ndarray:
    """A new ``(4, s)`` compensated carry state, canonically zeroed."""
    return np.full((4, int(tuple_size)), NEG_ZERO, dtype=np.dtype(dtype))


def segment_span(tuple_size: int) -> int:
    """Global elements per segment (all ``s`` lanes advance together)."""
    return SEGMENT_ROWS * int(tuple_size)


def cross_segment(state: np.ndarray) -> None:
    """Fold the finished segment's ``(T, F)`` partials into the
    double-double chain and reset them (in place)."""
    hi, lo = dd_add(state[HI], state[LO], state[VPART], state[EPART])
    state[HI] = hi
    state[LO] = lo
    state[VPART] = NEG_ZERO
    state[EPART] = NEG_ZERO


# -- one piece (never crosses a segment boundary) --------------------------


def _piece_naive(piece, s, state, pos):
    """Continue the naive value scan and the error chain over one piece.

    Returns ``(L, E)`` — the naive per-lane continuation and the
    running local compensation, both fresh buffers aligned with
    ``piece`` — and updates ``state``'s partial rows in place.  The
    piece must not cross a segment boundary (the caller splits).
    """
    k = piece.size
    dtype = piece.dtype
    if s == 1:
        buf = np.empty(k + 1, dtype)
        buf[0] = state[VPART, 0]
        buf[1:] = piece
        np.add.accumulate(buf, out=buf)
        L = buf[1:]
        e = two_sum_err(buf[:k], piece, L)
        canonicalize_errors(e)
        ebuf = np.empty(k + 1, dtype)
        ebuf[0] = state[EPART, 0]
        ebuf[1:] = e
        np.add.accumulate(ebuf, out=ebuf)
        E = ebuf[1:]
        state[VPART, 0] = L[-1]
        state[EPART, 0] = E[-1]
        return L, E
    perm = phase_perm(pos, s)
    m, r = divmod(k, s)
    buf = np.empty(k + s, dtype)
    buf[:s] = state[VPART][perm]
    buf[s:] = piece
    body = (m + 1) * s
    b2 = buf[:body].reshape(m + 1, s)
    np.add.accumulate(b2, axis=0, out=b2)
    if r:
        np.add(buf[body - s : body - s + r], piece[m * s :], out=buf[body:])
    L = buf[s:]
    e = two_sum_err(buf[:k], piece, L)
    canonicalize_errors(e)
    ebuf = np.empty(k + s, dtype)
    ebuf[:s] = state[EPART][perm]
    ebuf[s:] = e
    eb2 = ebuf[:body].reshape(m + 1, s)
    np.add.accumulate(eb2, axis=0, out=eb2)
    if r:
        np.add(ebuf[body - s : body - s + r], e[m * s :], out=ebuf[body:])
    E = ebuf[s:]
    tL = phase_totals(L, s)
    tE = phase_totals(E, s)
    lanes = (pos + np.arange(tL.size)) % s
    state[VPART][lanes] = tL
    state[EPART][lanes] = tE
    return L, E


def _dd_render(L, E, hi, lo, out):
    """``out ~= H + L + E + G`` with one effective rounding.

    ``H`` dominates, so the pair ``(H, L)`` is split exactly with
    two-sum and the small terms fold into its error before the single
    final add — folding them into ``H`` first would round them away at
    the running total's magnitude.  The combined small term is
    canonicalized (exact zero -> ``-0.0``) so a dormant carry stays a
    bitwise no-op and ``-0.0`` outputs survive.  ``hi``/``lo``
    broadcast; ``out`` may alias ``L`` (it is written after every read).
    """
    S = hi + L
    r = two_sum_err(hi, L, S)
    with np.errstate(invalid="ignore"):  # poisoned chains render as NaN
        t = r + (E + lo)
        t[t == 0] = NEG_ZERO
        return np.add(S, t, out=out)


def _render_piece(L, E, state, pos, s, out):
    """Render one piece with the chain rows in phase order (``out``
    may alias ``L``)."""
    k = out.size
    if s == 1:
        return _dd_render(L, E, state[HI, 0], state[LO, 0], out)
    perm = phase_perm(pos, s)
    hi_row = state[HI][perm]
    lo_row = state[LO][perm]
    m, r = divmod(k, s)
    body = m * s
    if m:
        _dd_render(
            L[:body].reshape(m, s),
            E[:body].reshape(m, s),
            hi_row,
            lo_row,
            out[:body].reshape(m, s),
        )
    if r:
        _dd_render(L[body:], E[body:], hi_row[:r], lo_row[:r], out[body:])
    return out


def _scan_serial(chunk, s, state, pos, out):
    """Sequential compensated scan of ``chunk`` into ``out``; advances
    ``state`` (crossing segments as reached) and returns ``out``."""
    n = chunk.size
    span = segment_span(s)
    i = 0
    while i < n:
        seg_end = (pos // span + 1) * span
        take = min(n - i, seg_end - pos)
        L, E = _piece_naive(chunk[i : i + take], s, state, pos)
        _render_piece(L, E, state, pos, s, out[i : i + take])
        pos += take
        i += take
        if pos == seg_end:
            cross_segment(state)
    return out


# -- whole aligned segments, slab-parallel ---------------------------------


def _segment_pass1(src, out, err, s, k0, k1, tv, te):
    """Per-segment local work (thread-safe: segments are disjoint):
    naive scan into ``out``, exact error recovery + local compensation
    into ``err``, totals into ``tv``/``te``."""
    span = SEGMENT_ROWS * s
    for k in range(k0, k1):
        sl = slice(k * span, (k + 1) * span)
        x = src[sl].reshape(SEGMENT_ROWS, s)
        L = out[sl].reshape(SEGMENT_ROWS, s)
        # Copy-then-in-place accumulate (numpy's out-of-place axis-0
        # accumulate takes the slower buffered loop).
        L[...] = x
        np.add.accumulate(L, axis=0, out=L)
        e = err[sl].reshape(SEGMENT_ROWS, s)
        e[0] = NEG_ZERO  # first add of a fresh segment is exact
        e[1:] = two_sum_err(L[:-1], x[1:], L[1:])
        canonicalize_errors(e[1:])
        np.add.accumulate(e, axis=0, out=e)
        tv[k] = L[-1]
        te[k] = e[-1]


def _segment_render(out, err, s, k0, k1, chain_hi, chain_lo):
    """Per-segment render with the spliced chain (in place over
    ``out``, consuming ``err``)."""
    span = SEGMENT_ROWS * s
    for k in range(k0, k1):
        sl = slice(k * span, (k + 1) * span)
        L = out[sl].reshape(SEGMENT_ROWS, s)
        e = err[sl].reshape(SEGMENT_ROWS, s)
        _dd_render(L, e, chain_hi[k], chain_lo[k], L)


def chain_segments(state_hi, state_lo, tv, te):
    """Replay the double-double chain over ``K`` segment totals.

    Returns ``(chain_hi, chain_lo, hi, lo)``: the per-segment chain
    state *at each segment's start* plus the final state.  This is the
    compensated splice — sequential by definition (``dd_add`` is not
    associative), but only one step per segment.
    """
    K = len(tv)
    s = state_hi.shape[-1]
    chain_hi = np.empty((K, s), dtype=state_hi.dtype)
    chain_lo = np.empty((K, s), dtype=state_hi.dtype)
    hi = state_hi.copy()
    lo = state_lo.copy()
    for k in range(K):
        chain_hi[k] = hi
        chain_lo[k] = lo
        hi, lo = dd_add(hi, lo, tv[k], te[k])
    return chain_hi, chain_lo, hi, lo


def _scan_segments_parallel(src, out, s, state, threads):
    """Scan ``K`` whole aligned segments slab-parallel.

    Precondition: ``src.size`` is a multiple of the segment span and
    ``state``'s partial rows are canonical zero (the caller is at a
    segment boundary).  Segments are self-contained, so only the tiny
    per-segment chain is sequential; results are bit-identical to the
    serial path for any ``threads``.
    """
    from repro.kernels.threaded import _slab_bounds, get_pool

    span = SEGMENT_ROWS * s
    K = src.size // span
    dtype = src.dtype
    err = np.empty(src.size, dtype)
    tv = np.empty((K, s), dtype)
    te = np.empty((K, s), dtype)
    pool = get_pool(threads)
    bounds = _slab_bounds(K, threads)
    for f in [
        pool.submit(_segment_pass1, src, out, err, s, k0, k1, tv, te)
        for k0, k1 in bounds
    ]:
        f.result()
    chain_hi, chain_lo, hi, lo = chain_segments(state[HI], state[LO], tv, te)
    state[HI] = hi
    state[LO] = lo
    for f in [
        pool.submit(_segment_render, out, err, s, k0, k1, chain_hi, chain_lo)
        for k0, k1 in bounds
    ]:
        f.result()
    return out


# -- public kernel entry points --------------------------------------------


def lane_scan_compensated(
    chunk: np.ndarray,
    op,
    tuple_size: int,
    state: np.ndarray,
    pos: int = 0,
    *,
    out: Optional[np.ndarray] = None,
    threads=None,
    cutover_bytes: Optional[int] = None,
) -> np.ndarray:
    """One compensated continuation pass of ``chunk``; returns a fresh
    scanned array (``chunk`` is never modified) and advances ``state``
    (a :func:`fresh_state` array) in place.

    ``pos`` is the global index of ``chunk[0]``; outputs are
    bit-identical to the one-shot compensated scan for *any* chunk
    split.  ``threads`` routes whole aligned segments through the
    shared slab pool (:mod:`repro.kernels.threaded`) — bit-identical
    for any thread count, because the segment grid is fixed.
    """
    op, _ = check_compensated(op, np.asarray(chunk).dtype)
    chunk = np.asarray(chunk)
    s = int(tuple_size)
    n = chunk.size
    if out is None:
        out = np.empty_like(chunk)
    if n == 0:
        return out
    pos = int(pos)
    if threads in (None, 1):
        return _scan_serial(chunk, s, state, pos, out)

    from repro.kernels.threaded import _tuned_cutover, resolve_threads

    n_bytes = n * chunk.dtype.itemsize
    resolved = resolve_threads(threads, n_bytes)
    if cutover_bytes is None:
        cutover_bytes = _tuned_cutover(chunk.dtype)
    span = segment_span(s)
    head = min((span - pos % span) % span, n)
    K = (n - head) // span
    if resolved <= 1 or K < 2 or n_bytes < cutover_bytes:
        return _scan_serial(chunk, s, state, pos, out)
    if out is chunk:
        chunk = chunk.copy()  # the parallel path reads src after writing out
    if head:
        _scan_serial(chunk[:head], s, state, pos, out[:head])
        pos += head
    mid = head + K * span
    _scan_segments_parallel(chunk[head:mid], out[head:mid], s, state, resolved)
    pos += K * span
    if mid < n:
        _scan_serial(chunk[mid:], s, state, pos, out[mid:])
    return out


def compensated_scan_into(
    src: np.ndarray,
    out: np.ndarray,
    op,
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    threads=None,
    cutover_bytes: Optional[int] = None,
) -> np.ndarray:
    """Order-``q`` one-shot compensated scan (the compensated sibling
    of :func:`repro.kernels.scan_into` / ``threaded_scan_into``)."""
    from repro.kernels.lane import exclusive_shift

    op, _ = check_compensated(op, np.asarray(src).dtype)
    s = int(tuple_size)
    current = np.asarray(src)
    for _ in range(int(order)):
        if current is out:
            # Later passes rescan the output; the segment-parallel path
            # reads the source after writing, so give it its own copy.
            current = out.copy()
        state = fresh_state(out.dtype, s)
        lane_scan_compensated(
            current, op, s, state, 0,
            out=out, threads=threads, cutover_bytes=cutover_bytes,
        )
        current = out
    if inclusive:
        return out
    heads = np.full(s, op.identity(out.dtype), dtype=out.dtype)
    return exclusive_shift(out, heads)


# -- sharded-driver kernels -------------------------------------------------


class CompensatedCollectKernel:
    """Shard scan-pass kernel: naive continuation plus totals collection.

    The sharded driver cannot render during its scan pass — the render
    needs the *global* double-double chain, which exists only after
    every earlier shard reports its segment totals.  So the scan pass
    writes the naive per-lane continuation ``L`` (bit-identical to the
    serial naive chain, because shards start on segment boundaries) and
    collects each finished segment's ``(T, F)`` totals; the splice
    chains them and the fold pass renders.  ``feed`` returns a fresh
    buffer per chunk (the raw chunk is re-read by the fold pass, so it
    is never mutated).
    """

    def __init__(self, op, dtype, tuple_size: int = 1, start: int = 0):
        self.op, self.dtype = check_compensated(op, dtype)
        self.s = int(tuple_size)
        self.pos = int(start)
        if self.pos % segment_span(self.s):
            raise ValueError(
                f"compensated shards must start on a segment boundary "
                f"(multiples of {segment_span(self.s)}), got start={start}"
            )
        self.state = fresh_state(self.dtype, self.s)
        self._totals: List[np.ndarray] = []

    @property
    def delegated_stage_scans(self) -> int:
        return 0

    def feed(self, chunk: np.ndarray) -> np.ndarray:
        chunk = np.asarray(chunk)
        n = chunk.size
        if n == 0:
            return chunk
        out = np.empty_like(chunk)
        s = self.s
        span = segment_span(s)
        pos = self.pos
        i = 0
        while i < n:
            seg_end = (pos // span + 1) * span
            take = min(n - i, seg_end - pos)
            L, _ = _piece_naive(chunk[i : i + take], s, self.state, pos)
            out[i : i + take] = L
            pos += take
            i += take
            if pos == seg_end:
                self._totals.append(
                    np.stack([self.state[VPART].copy(), self.state[EPART].copy()])
                )
                self.state[VPART] = NEG_ZERO
                self.state[EPART] = NEG_ZERO
        self.pos = pos
        return out

    def segment_totals(self) -> np.ndarray:
        """The shard's ``(K, 2, s)`` per-segment ``(T, F)`` totals — its
        aggregate for the compensated splice.  A trailing partial
        segment (final shard only) contributes its partials."""
        totals = list(self._totals)
        if self.pos % segment_span(self.s):
            totals.append(
                np.stack([self.state[VPART].copy(), self.state[EPART].copy()])
            )
        if not totals:
            return np.empty((0, 2, self.s), dtype=self.dtype)
        return np.stack(totals)


class CompensatedFoldKernel:
    """Shard fold-pass kernel: recompute the error chain, render.

    Walks the shard sequentially with the spliced per-segment chain
    (``chain``: a ``(K, 2, s)`` array of ``(H, G)`` at each of the
    shard's segment starts).  ``fold(L_chunk, x_chunk)`` re-derives the
    per-element errors from the naive scan and the raw values (no
    re-accumulation of ``L`` needed — it is read back from the scan
    pass's output), rebuilds the local compensation, and renders in
    place into ``L_chunk``.
    """

    def __init__(self, dtype, tuple_size: int, start: int, chain: np.ndarray):
        self.dtype = np.dtype(dtype)
        self.s = int(tuple_size)
        self.pos = int(start)
        if self.pos % segment_span(self.s):
            raise ValueError(
                f"compensated shards must start on a segment boundary "
                f"(multiples of {segment_span(self.s)}), got start={start}"
            )
        self.chain = chain
        self.seg = 0
        self.state = fresh_state(self.dtype, self.s)
        if len(chain):
            self.state[HI] = chain[0, 0]
            self.state[LO] = chain[0, 1]

    def fold(self, L_chunk: np.ndarray, x_chunk: np.ndarray) -> np.ndarray:
        """Render ``L_chunk`` in place (returns it)."""
        n = L_chunk.size
        if n == 0:
            return L_chunk
        s = self.s
        span = segment_span(s)
        pos = self.pos
        state = self.state
        i = 0
        while i < n:
            seg_end = (pos // span + 1) * span
            take = min(n - i, seg_end - pos)
            L = L_chunk[i : i + take]
            x = x_chunk[i : i + take]
            self._fold_piece(L, x, pos)
            pos += take
            i += take
            if pos == seg_end:
                self.seg += 1
                if self.seg < len(self.chain):
                    state[HI] = self.chain[self.seg, 0]
                    state[LO] = self.chain[self.seg, 1]
                state[VPART] = NEG_ZERO
                state[EPART] = NEG_ZERO
        self.pos = pos
        return L_chunk

    def _fold_piece(self, L, x, pos):
        """One piece: previous-L row from the carried partial, exact
        error recovery, local compensation continuation, render."""
        k = L.size
        s = self.s
        state = self.state
        dtype = self.dtype
        if s == 1:
            prev = np.empty(k, dtype)
            prev[0] = state[VPART, 0]
            prev[1:] = L[:-1]
            state[VPART, 0] = L[-1]
            e = two_sum_err(prev, x, L)
            canonicalize_errors(e)
            ebuf = np.empty(k + 1, dtype)
            ebuf[0] = state[EPART, 0]
            ebuf[1:] = e
            np.add.accumulate(ebuf, out=ebuf)
            E = ebuf[1:]
            state[EPART, 0] = E[-1]
            _render_piece(L, E, state, pos, 1, L)
            return
        perm = phase_perm(pos, s)
        prev = np.empty(k + s, dtype)
        prev[:s] = state[VPART][perm]
        prev[s:] = L
        tL = phase_totals(L, s)
        lanes = (pos + np.arange(tL.size)) % s
        state[VPART][lanes] = tL
        e = two_sum_err(prev[:k], x, L)
        canonicalize_errors(e)
        ebuf = np.empty(k + s, dtype)
        ebuf[:s] = state[EPART][perm]
        ebuf[s:] = e
        m, r = divmod(k, s)
        body = (m + 1) * s
        eb2 = ebuf[:body].reshape(m + 1, s)
        np.add.accumulate(eb2, axis=0, out=eb2)
        if r:
            np.add(ebuf[body - s : body - s + r], e[m * s :], out=ebuf[body:])
        E = ebuf[s:]
        tE = phase_totals(E, s)
        state[EPART][lanes] = tE
        _render_piece(L, E, state, pos, s, L)


# -- batched multi-stream compensated dispatch ------------------------------


class BatchedCompensatedKernel:
    """One dispatch servicing ``B`` compensated float scan streams.

    The float sibling of :class:`repro.kernels.BatchedLaneKernel`:
    ``B`` compatible streams (same float dtype and tuple size, ``add``)
    are staged into one ``(B, M+1, s)`` buffer — row 0 the per-stream
    naive partials, the tail padded with ``-0.0``, the *true* float-add
    identity — so one 3-D ``accumulate`` continues every stream's naive
    chain, one vectorized ``two_sum_err`` recovers every error, a
    second 3-D ``accumulate`` continues every compensation chain, and
    one broadcast renders with the per-stream ``(H, G)``.  Bit-identical
    to feeding each stream's compensated kernel individually.

    Constraint: a staged chunk must not cross its stream's segment
    boundary (the chain step is per-stream sequential); the caller
    checks :meth:`crosses_segment` and feeds those chunks individually.
    """

    def __init__(self, op, dtype, tuple_size: int = 1):
        self.op, self.dtype = check_compensated(op, dtype)
        self.s = int(tuple_size)
        if self.s < 1:
            raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
        self.dispatches = 0
        self.streams_fed = 0
        self._staged: Optional[np.ndarray] = None
        self._raw: Optional[np.ndarray] = None
        self._err: Optional[np.ndarray] = None

    def occupancy(self) -> float:
        return self.streams_fed / self.dispatches if self.dispatches else 0.0

    def crosses_segment(self, position: int, n: int) -> bool:
        """Whether a chunk of ``n`` elements at stream offset
        ``position`` would cross a segment boundary."""
        span = segment_span(self.s)
        return position // span != (position + n - 1) // span

    def _buffers(self, B: int, rows: int):
        span = (rows + 1) * self.s
        need = B * span
        if self._staged is None or self._staged.size < need:
            self._staged = np.empty(need, dtype=self.dtype)
            self._err = np.empty(need, dtype=self.dtype)
        raw_need = B * rows * self.s
        if self._raw is None or self._raw.size < raw_need:
            self._raw = np.empty(raw_need, dtype=self.dtype)
        return (
            self._staged[:need].reshape(B, rows + 1, self.s),
            self._err[:need].reshape(B, rows + 1, self.s),
            self._raw[:raw_need].reshape(B, rows, self.s),
        )

    def stage_scan(
        self,
        chunks: Sequence[np.ndarray],
        states: Sequence[np.ndarray],
        positions: Sequence[int],
    ) -> List[np.ndarray]:
        """One batched compensated continuation pass over ``B`` streams.

        ``states`` are the per-stream ``(4, s)`` compensated carries
        (updated in place); ``positions`` the stream offsets (not
        advanced).  Returns the ``B`` rendered chunks as fresh arrays.
        """
        B = len(chunks)
        if B == 0:
            return []
        s = self.s
        ns = [int(c.size) for c in chunks]
        if min(ns) == 0:
            raise ValueError("batched chunks must be non-empty")
        for n, position in zip(ns, positions):
            if self.crosses_segment(int(position), n):
                raise ValueError(
                    "a batched compensated chunk must not cross a segment "
                    "boundary (feed it individually)"
                )
        rows = -(-max(ns) // s)  # ceil
        span = rows * s
        staged, ebuf, raw = self._buffers(B, rows)
        pos = np.asarray(positions, dtype=np.int64).reshape(B, 1)
        perms = (pos + np.arange(s)) % s

        vparts = np.stack([st[VPART] for st in states])
        eparts = np.stack([st[EPART] for st in states])
        staged[:, 0, :] = np.take_along_axis(vparts, perms, axis=1)
        flat = staged.reshape(B, -1)
        rflat = raw.reshape(B, -1)
        uniform = all(n == span for n in ns)
        for i, chunk in enumerate(chunks):
            flat[i, s : s + ns[i]] = chunk
            rflat[i, : ns[i]] = chunk
            if not uniform and ns[i] < span:
                flat[i, s + ns[i] :] = NEG_ZERO
                rflat[i, ns[i] :] = NEG_ZERO
        np.add.accumulate(staged, axis=1, out=staged)
        prevL = staged[:, :-1, :]
        L = staged[:, 1:, :]

        e = ebuf[:, 1:, :]
        e[...] = two_sum_err(prevL, raw, L)
        canonicalize_errors(e)
        ebuf[:, 0, :] = np.take_along_axis(eparts, perms, axis=1)
        np.add.accumulate(ebuf, axis=1, out=ebuf)
        E = ebuf[:, 1:, :]

        # Partials advance to the final row (identity padding keeps a
        # lane constant past its last real element) — only the phases
        # the chunk touched write back.
        touched = np.arange(s) < np.minimum(np.asarray(ns), s).reshape(B, 1)
        tv = L[:, -1, :]
        tE = E[:, -1, :]
        for i in range(B):
            lanes = perms[i][touched[i]]
            states[i][VPART][lanes] = tv[i][touched[i]]
            states[i][EPART][lanes] = tE[i][touched[i]]

        his = np.stack([st[HI] for st in states])
        los = np.stack([st[LO] for st in states])
        hi_rows = np.take_along_axis(his, perms, axis=1)[:, None, :]
        lo_rows = np.take_along_axis(los, perms, axis=1)[:, None, :]
        _dd_render(L, E, hi_rows, lo_rows, E)

        out_flat = ebuf.reshape(B, -1)
        outs = [out_flat[i, s : s + ns[i]].copy() for i in range(B)]
        self.dispatches += 1
        self.streams_fed += B
        return outs
