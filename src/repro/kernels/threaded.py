"""Threaded in-memory lane kernel: multicore intra-chunk scans.

PR 5 left every engine scanning each chunk on one core.  This module
applies the sharded driver's phase structure *in memory*: the
``(m, s)`` lane-block matrix is split into ``P`` contiguous row-slabs,
each slab is scanned locally by :func:`repro.kernels.lane_scan` on a
persistent :class:`~concurrent.futures.ThreadPoolExecutor` worker, the
tiny ``P × s`` matrix of slab totals is exclusive-scanned on the host
(the carry splice), and the resulting carries are folded into the
slabs in parallel.  This is the scan→splice→fold decomposition of
LightScan (Liu & Aluru) and of Zhang, Wang & Ross's SIMD prefix sums:
once the inner loop is a vectorized accumulate, multicore throughput
comes from slab-parallelism plus a single splice.

Threads — not processes — give real parallelism here because numpy's
ufunc inner loops release the GIL: slab scans and carry folds run
concurrently with zero serialization or IPC cost, unlike
:mod:`repro.parallel`'s shared-memory process pool.  Looped (non-ufunc)
operators hold the GIL, so they always take the serial kernel.

Determinism and exactness
-------------------------

The slab partition is a pure function of ``(n, s, threads)`` — never of
pool scheduling — so results are identical under oversubscription (more
slabs than cores, or a smaller pool than requested).  For fixed-width
integers the splice regroups a truly associative reduction and the
result is **bit-identical** to the serial kernel.  For floats,
regrouping changes rounding, so float inputs keep bit-exactness by
default: :class:`ThreadedLaneKernel` with ``float_mode="exact"`` (the
float default) scans through the serial prepend-carry kernel — a slab
chain would be sequential in the carry anyway, so there is nothing to
overlap.  ``float_mode="compensated"`` runs the error-free-carry
segment decomposition of :mod:`repro.kernels.compensated` — fully
parallel, bit-identical for *any* thread count, and more accurate than
the naive fold.  ``float_mode="regrouped"`` (legacy ``exact=False``)
opts into the fast regrouped fold (deterministic for a fixed thread
count, but not bit-identical to serial).

Cutover
-------

Thread dispatch costs microseconds; accumulating a small chunk costs
less.  Chunks below the tuned per-dtype parallel cutover
(:func:`repro.core.tuning.kernel_tuning`, override with
``REPRO_PARALLEL_CUTOVER_BYTES``) run on the serial kernel.  Callers
that must force threading (tests, the fuzzer) pass ``cutover_bytes=0``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.kernels.compensated import resolve_float_mode
from repro.kernels.lane import (
    LaneKernel,
    _fused_block_bytes,
    exclusive_shift,
    fold_lanes,
    fused_combine,
    fused_lane_scan,
    fused_supported,
    fused_weights,
    lane_scan,
    phase_perm,
)
from repro.ops import ADD, AssociativeOp, get_op

#: Fallback parallel cutover (bytes) when the tuner is unavailable:
#: chunks smaller than this are scanned serially.
PARALLEL_CUTOVER_BYTES = 4 << 20

#: Auto thread resolution gives each worker at least this many bytes of
#: slab — below it, another thread adds dispatch cost, not bandwidth.
MIN_SLAB_BYTES = 1 << 20

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def get_pool(threads: int) -> ThreadPoolExecutor:
    """The module's persistent worker pool, grown to ``>= threads``.

    One pool is shared by every threaded kernel in the process (warm
    threads, no per-scan spawn cost).  Growing recreates the executor;
    the old one drains its queue in the background.  The pool size
    never influences results — the slab partition is fixed by the
    *requested* thread count, and queued slabs just wait for a worker.
    """
    global _POOL, _POOL_WORKERS
    threads = max(1, int(threads))
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < threads:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-lane"
            )
            _POOL_WORKERS = threads
        return _POOL


def resolve_threads(threads=None, n_bytes: Optional[int] = None) -> int:
    """Resolve a ``threads=`` parameter to a concrete worker count.

    ``None``/``0``/``"auto"`` means min(cpu count, slab-size heuristic):
    enough workers that each still gets :data:`MIN_SLAB_BYTES` of slab,
    never more than the machine has cores.  Explicit counts are taken
    as given (useful for tests and for the sharded driver's combined
    oversubscription budget).
    """
    if threads in (None, 0, "auto"):
        cpus = os.cpu_count() or 1
        if n_bytes is None:
            return cpus
        return max(1, min(cpus, int(n_bytes) // MIN_SLAB_BYTES))
    t = int(threads)
    if t < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return t


def _tuned_cutover(dtype: np.dtype) -> int:
    try:
        from repro.core.tuning import kernel_tuning

        return kernel_tuning(dtype).parallel_cutover_bytes
    except Exception:  # pragma: no cover - tuner must never break scans
        return PARALLEL_CUTOVER_BYTES


def _slab_bounds(m: int, parts: int):
    """Split ``m`` full rows into ``parts`` balanced row ranges.

    Pure function of its arguments — this is what makes threaded
    results deterministic regardless of pool scheduling.
    """
    p = max(1, min(int(parts), m))
    base, extra = divmod(m, p)
    bounds = []
    lo = 0
    for i in range(p):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def threaded_lane_scan(
    src: np.ndarray,
    op: AssociativeOp,
    tuple_size: int = 1,
    *,
    out: Optional[np.ndarray] = None,
    carry: Optional[np.ndarray] = None,
    threads=None,
    cutover_bytes: Optional[int] = None,
) -> np.ndarray:
    """One inclusive lane scan pass, slab-parallel with a carry splice.

    Same contract as :func:`repro.kernels.lane_scan` (``out`` may alias
    ``src``; ``carry`` is a phase-order continuation row) plus
    ``threads`` and ``cutover_bytes``.  Small chunks, ``threads=1``,
    non-ufunc operators, and non-contiguous buffers fall back to the
    serial kernel.

    For integer dtypes the result is bit-identical to the serial kernel
    (integer regrouping is exact).  For floats the splice regroups the
    per-lane fold — deterministic for a fixed thread count, but not
    bit-identical to serial; exact float continuation lives in
    :func:`repro.kernels.lane_scan_exact` / :class:`ThreadedLaneKernel`.
    """
    src = np.asarray(src)
    s = int(tuple_size)
    if out is None:
        out = np.empty_like(src)
    n = src.size
    if n == 0:
        return out
    n_bytes = n * src.dtype.itemsize
    threads = resolve_threads(threads, n_bytes)
    if cutover_bytes is None:
        cutover_bytes = _tuned_cutover(src.dtype)
    m = n // s
    if (
        threads <= 1
        or op.ufunc is None
        or m < 2
        or n_bytes < cutover_bytes
        or not (src.flags.c_contiguous and out.flags.c_contiguous)
    ):
        return lane_scan(src, op, s, out=out, carry=carry)
    if out is not src:
        # One streaming copy up front; slabs then scan in place (the
        # same copy-then-in-place trick as the serial kernel).
        out[...] = src
    bounds = _slab_bounds(m, threads)
    if len(bounds) <= 1:
        return lane_scan(out, op, s, out=out, carry=carry)
    pool = get_pool(threads)
    body = m * s
    out2 = out[:body].reshape(m, s)

    def _scan_slab(lo, hi):
        blk = out[lo * s : hi * s]
        lane_scan(blk, op, s, out=blk)

    for f in [pool.submit(_scan_slab, lo, hi) for lo, hi in bounds]:
        f.result()

    # Host splice: exclusive scan of the P×s slab-total matrix.  Each
    # slab's local total is its (already scanned) last full row; the
    # running fold of those rows is the carry the next slab still owes.
    carries = []
    running = None if carry is None else np.asarray(carry)
    for lo, hi in bounds:
        carries.append(running)
        total = out2[hi - 1]
        running = total.copy() if running is None else op.apply(running, total)

    def _fold_slab(lo, hi, row):
        blk = out2[lo:hi]
        op.apply_into(row, blk, out=blk)

    for f in [
        pool.submit(_fold_slab, lo, hi, row)
        for (lo, hi), row in zip(bounds, carries)
        if row is not None
    ]:
        f.result()

    r = n - body
    if r:
        # Tail phases continue from the last full row (already spliced);
        # out[body:] still holds the raw source values.
        op.apply_into(out[body - s : body - s + r], out[body:], out=out[body:])
    return out


def _fused_fold_rows(out2, lo: int, hi: int, order: int, T, tile_rows: int):
    """Fold an incoming ``(q, s)`` carry matrix into locally order-q
    scanned rows ``out2[lo:hi]`` (local depth 0 at row ``lo``): row
    ``d`` gains ``sum_j C(d + q - j, q - j) * T_j``, applied tile by
    tile through the binomial weight columns."""
    q = int(order)
    dtype = out2.dtype
    with np.errstate(over="ignore"):
        for i in range(lo, hi, tile_rows):
            blk = out2[i : min(i + tile_rows, hi)]
            W = fused_weights(blk.shape[0], q, dtype, d0=i - lo)
            for k in range(q):
                blk += W[:, k : k + 1] * T[q - 1 - k]


def threaded_fused_lane_scan(
    buf: np.ndarray,
    op: AssociativeOp,
    tuple_size: int,
    order: int,
    carry: np.ndarray,
    *,
    threads=None,
    cutover_bytes: Optional[int] = None,
) -> np.ndarray:
    """Slab-parallel fused single-pass order-``q`` scan (in place).

    Same contract as :func:`repro.kernels.lane.fused_lane_scan`
    (``carry`` is the phase-order ``(q, s)`` running-total matrix,
    updated in place) with the threaded scan→splice→fold decomposition:
    every slab fused-scans its rows locally from a zero carry, the host
    splices the per-slab ``(q, s)`` aggregate matrices with one
    :func:`fused_combine` chain, and slabs with a non-trivial incoming
    matrix fold it in parallel via the binomial weight columns.  The
    slab partition is the same pure function as the order-1 path, and
    integer regrouping is exact, so results are bit-identical to the
    serial fused kernel for any thread count.
    """
    s = int(tuple_size)
    q = int(order)
    n = buf.size
    if n == 0:
        return buf
    n_bytes = n * buf.dtype.itemsize
    threads = resolve_threads(threads, n_bytes)
    if cutover_bytes is None:
        cutover_bytes = _tuned_cutover(buf.dtype)
    m = n // s
    if (
        threads <= 1
        or m < 2
        or n_bytes < cutover_bytes
        or not buf.flags.c_contiguous
    ):
        return fused_lane_scan(buf, op, s, q, carry)
    bounds = _slab_bounds(m, threads)
    if len(bounds) <= 1:
        return fused_lane_scan(buf, op, s, q, carry)
    pool = get_pool(threads)
    body = m * s
    out2 = buf[:body].reshape(m, s)
    dtype = buf.dtype
    locals_ = [None] * len(bounds)

    def _scan_slab(i, lo, hi):
        local = np.zeros((q, s), dtype=dtype)
        fused_lane_scan(buf[lo * s : hi * s], op, s, q, local)
        locals_[i] = local

    for f in [
        pool.submit(_scan_slab, i, lo, hi)
        for i, (lo, hi) in enumerate(bounds)
    ]:
        f.result()

    # Host splice: chain the (q, s) slab aggregates; incoming[i] is the
    # absolute order-total matrix slab i still owes.
    incoming = []
    running = carry.copy()
    for (lo, hi), local in zip(bounds, locals_):
        incoming.append(running)
        running = fused_combine(running, local, hi - lo)
    carry[...] = running

    tile_rows = max(q, _fused_block_bytes() // (s * dtype.itemsize))

    def _fold_slab(lo, hi, T):
        _fused_fold_rows(out2, lo, hi, q, T, tile_rows)

    for f in [
        pool.submit(_fold_slab, lo, hi, T)
        for (lo, hi), T in zip(bounds, incoming)
        if T.any()
    ]:
        f.result()

    r = n - body
    if r:
        # Tail: one-row partial tile continuing from the spliced matrix.
        tail = buf[body:]
        raw = tail.copy()
        with np.errstate(over="ignore"):
            part = np.add.accumulate(carry[:, :r], axis=0)
            tail[...] = raw + part[q - 1]
            carry[:, :r] = raw + part
    return buf


def threaded_fold_lanes(
    buf: np.ndarray,
    op: AssociativeOp,
    carry: np.ndarray,
    pos: int = 0,
    tuple_size: int = 1,
    seen: Optional[np.ndarray] = None,
    threads=None,
    cutover_bytes: Optional[int] = None,
) -> np.ndarray:
    """Slab-parallel :func:`repro.kernels.fold_lanes` (same contract).

    The all-lanes-seen broadcast fold is embarrassingly parallel over
    row slabs; mixed seen/unseen masks (only possible while ``pos < s``)
    and small buffers take the serial fold.
    """
    buf = np.asarray(buf)
    n = buf.size
    s = int(tuple_size)
    if n == 0:
        return buf
    n_bytes = n * buf.dtype.itemsize
    threads = resolve_threads(threads, n_bytes)
    if cutover_bytes is None:
        cutover_bytes = _tuned_cutover(buf.dtype)
    m = n // s
    if (
        threads <= 1
        or op.ufunc is None
        or m < 2
        or n_bytes < cutover_bytes
        or not buf.flags.c_contiguous
        or (seen is not None and not seen.all())
    ):
        return fold_lanes(buf, op, carry, pos, s, seen=seen)
    row = carry[phase_perm(pos, s)]  # fancy indexing: a contiguous copy
    body = m * s
    b2 = buf[:body].reshape(m, s)
    pool = get_pool(threads)

    def _fold(lo, hi):
        blk = b2[lo:hi]
        op.apply_into(row, blk, out=blk)

    for f in [pool.submit(_fold, lo, hi) for lo, hi in _slab_bounds(m, threads)]:
        f.result()
    r = n - body
    if r:
        op.apply_into(row[:r], buf[body:], out=buf[body:])
    return buf


def threaded_scan_into(
    src: np.ndarray,
    out: np.ndarray,
    op,
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    threads=None,
    exact: Optional[bool] = None,
    cutover_bytes: Optional[int] = None,
    float_mode: Optional[str] = None,
) -> np.ndarray:
    """Order-``q`` threaded lane scan — ``q`` slab-parallel passes.

    The threaded sibling of :func:`repro.kernels.scan_into`: pass 1
    scans ``src`` into ``out``, later passes rescan ``out`` in place,
    the exclusive shift happens once at the end.  Float handling
    follows ``float_mode`` (falling back to the legacy ``exact``
    tri-state): ``"exact"`` (the default) runs the serial passes — a
    regrouped splice would change rounding; ``"compensated"`` runs the
    segment-parallel error-free passes (bit-identical for any thread
    count, more accurate than the naive fold); ``"regrouped"``
    (``exact=False``) lets floats regroup through the slab splice.
    Integers always get the full slab parallelism.
    """
    op = get_op(op)
    src = np.asarray(src)
    mode = resolve_float_mode(src.dtype, float_mode, exact)
    if mode == "exact":
        from repro.kernels.lane import scan_into

        return scan_into(src, out, op, order, tuple_size, inclusive)
    if mode == "compensated":
        from repro.kernels.compensated import compensated_scan_into

        return compensated_scan_into(
            src, out, op, order, tuple_size, inclusive,
            threads=threads, cutover_bytes=cutover_bytes,
        )
    q = int(order)
    s = int(tuple_size)
    if (
        q >= 2
        and fused_supported(op, out.dtype, q, s)
        and out.ndim == 1
        and out.flags.c_contiguous
    ):
        if out is not src:
            out[...] = src
        carry = np.zeros((q, s), dtype=out.dtype)
        threaded_fused_lane_scan(
            out, op, s, q, carry,
            threads=threads, cutover_bytes=cutover_bytes,
        )
    else:
        current = src
        for _ in range(q):
            threaded_lane_scan(
                current,
                op,
                tuple_size,
                out=out,
                threads=threads,
                cutover_bytes=cutover_bytes,
            )
            current = out
    if inclusive:
        return out
    heads = np.full(s, op.identity(out.dtype), dtype=out.dtype)
    return exclusive_shift(out, heads)


class ThreadedLaneKernel(LaneKernel):
    """:class:`~repro.kernels.LaneKernel` with slab-parallel hot paths.

    Same carry-continuation ``feed(chunk)`` contract and state machine
    (inherited — only the three scan/fold hooks are overridden), plus:

    ``threads``
        Worker count for the slab partition; ``None``/``"auto"``
        resolves per chunk via :func:`resolve_threads`.  The partition
        depends only on this number, so results are deterministic under
        any pool size.
    ``cutover_bytes``
        Serial/parallel crossover; ``None`` uses the tuned per-dtype
        value, ``0`` forces threading for any chunk with ≥ 2 full rows.

    Exactness matches the base class: ``exact=None`` picks the in-place
    threaded path for integers (bit-identical — integer regrouping is
    exact) and the bit-exact serial prepend mode for floats.  Float
    ``float_mode="compensated"`` runs the segment-parallel error-free
    path (bit-identical for any thread count);
    ``float_mode="regrouped"`` / ``exact=False`` opts into the threaded
    regrouped fold.
    """

    def __init__(
        self,
        op,
        dtype,
        tuple_size=1,
        start=0,
        prime=None,
        exact=None,
        threads=None,
        cutover_bytes=None,
        float_mode=None,
        order=1,
    ):
        super().__init__(
            op, dtype, tuple_size, start=start, prime=prime, exact=exact,
            float_mode=float_mode, order=order,
        )
        self.threads = None if threads in (None, 0, "auto") else int(threads)
        self.cutover_bytes = cutover_bytes

    def _scan(self, chunk, carry_row=None):
        return threaded_lane_scan(
            chunk,
            self.op,
            self.s,
            out=chunk,
            carry=carry_row,
            threads=self.threads,
            cutover_bytes=self.cutover_bytes,
        )

    # _scan_exact stays the serial prepend-carry kernel (inherited):
    # bit-exactness forbids regrouping the float fold, and a slab chain
    # is sequential in the carry, so threads would add dispatch cost
    # with nothing to overlap.

    def _scan_compensated(self, chunk):
        from repro.kernels.compensated import lane_scan_compensated

        return lane_scan_compensated(
            chunk,
            self.op,
            self.s,
            self._comp,
            self.pos,
            threads=self.threads or "auto",
            cutover_bytes=self.cutover_bytes,
        )

    def _fold(self, out):
        threaded_fold_lanes(
            out,
            self.op,
            self.carry,
            self.pos,
            self.s,
            seen=self.active,
            threads=self.threads,
            cutover_bytes=self.cutover_bytes,
        )

    def _fused_scan(self, chunk, carry):
        return threaded_fused_lane_scan(
            chunk,
            self.op,
            self.s,
            self.order,
            carry,
            threads=self.threads,
            cutover_bytes=self.cutover_bytes,
        )


class ThreadedResult:
    """Result wrapper for :class:`ThreadedScan` (``.values`` contract)."""

    def __init__(self, values: np.ndarray, threads: int):
        self.values = values
        self.threads = threads


class ThreadedScan:
    """The ``engine="threaded"`` adapter: one-shot scans through
    :func:`threaded_scan_into`.

    Same ``run(values, order=, tuple_size=, op=, inclusive=)`` contract
    as every other engine; bit-identical to the host path for all
    dtypes by default (floats take the exact serial passes unless
    ``float_mode``/``exact`` says otherwise).
    """

    def __init__(self, threads=None, exact=None, cutover_bytes=None, float_mode=None):
        self.threads = threads
        self.exact = exact
        self.float_mode = float_mode
        self.cutover_bytes = cutover_bytes

    def run(
        self,
        values,
        order: int = 1,
        tuple_size: int = 1,
        op=ADD,
        inclusive: bool = True,
    ) -> ThreadedResult:
        op = get_op(op)
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D input, got shape {array.shape}")
        if order < 1 or tuple_size < 1:
            raise ValueError("order and tuple_size must be >= 1")
        dtype = op.check_dtype(array.dtype)
        array = np.ascontiguousarray(array, dtype=dtype)
        if array.size == 0:
            return ThreadedResult(array.copy(), 0)
        threads = resolve_threads(self.threads, array.size * array.dtype.itemsize)
        out = threaded_scan_into(
            array,
            np.empty_like(array),
            op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            threads=threads,
            exact=self.exact,
            cutover_bytes=self.cutover_bytes,
            float_mode=self.float_mode,
        )
        return ThreadedResult(out, threads)
