"""Lane-aware scan kernels: the one tuned hot path every engine calls.

The paper's cost claim (Section 3) is that the tuple and higher-order
generalizations are *free* in memory traffic — ``2n`` data movement
regardless of ``s`` and ``q``.  This module is the host-side embodiment
of that claim: a single, zero-copy kernel layer that the fast host
engine (:mod:`repro.core.host`), the streaming session
(:mod:`repro.stream.session`), the sharded out-of-core driver
(:mod:`repro.stream.sharded`), and the multicore workers
(:mod:`repro.parallel.worker`) all share, instead of each hand-rolling
a Python loop over ``s`` strided lane slices with per-lane temporaries.

Layout and the 2-D lane-block trick
-----------------------------------

A chunk whose first element sits at global index ``pos`` stores the
element of chunk position ``i`` in global tuple lane ``(pos + i) % s``.
Chunk positions ``p, p + s, p + 2s, ...`` therefore form one lane — we
call ``p`` the chunk *phase*; :func:`phase_perm` maps phases to global
lanes.  Because lanes are interleaved with stride ``s``, the first
``(n // s) * s`` elements of a contiguous chunk reshape — *as a view, no
copy* — to an ``(n // s, s)`` matrix whose columns are the lanes.  One
``ufunc.accumulate(axis=0)`` then scans **all s lanes in a single
call**, replacing the Python-level lane loop; the ``n % s`` tail
elements are finished with one vectorized fold from the last full row.

Column-order accumulate walks the matrix row by row, so for wide
strides (``s * itemsize`` beyond a cache line) each column touch is a
new cache line and the naive call becomes memory-bound.  For the truly
associative dtypes (fixed-width integers, wraparound included) the
kernel therefore processes *row blocks* that fit in cache
(:data:`BLOCK_BYTES`) and splices them with an in-cache carry fold —
measurably faster at large ``s`` and bit-identical, because integer
regrouping is exact.  Floats keep the plain single-call form: it
performs the exact per-lane left fold, so results stay bit-identical
to the serial reference.

Exactness modes
---------------

* :func:`lane_scan` continues a scan by folding a carry row *after*
  accumulating — one extra vectorized pass, no prepend copies.  The
  fold regroups the reduction, which is exact for integers; it is the
  sharded driver's ``exact=False`` float mode.
* :func:`lane_scan_exact` continues by *prepending* the carry row to
  the chunk (one ``n + s`` buffer) so the ufunc accumulate reproduces
  the one-shot scan's exact sequence of partial results — float
  rounding included.  This is the streaming session's bit-exact float
  path, vectorized across lanes instead of looping per lane.

:class:`LaneKernel` wraps either mode behind the carry-continuation
``feed(chunk)`` API that the sharded driver introduced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ops import AssociativeOp, get_op

#: Row-block byte budget for the cache-blocked wide-stride path.  One
#: block of ``BLOCK_BYTES // (s * itemsize)`` rows is accumulated while
#: it is cache-resident, then spliced to the next block with a single
#: vectorized carry fold.  This constant is the *fallback*: the actual
#: budget is measured per dtype at first use by the empirical tuner
#: (:func:`repro.core.tuning.kernel_tuning`) and can be pinned with
#: ``REPRO_BLOCK_BYTES``.
BLOCK_BYTES = 128 << 10

#: Lane strides at least this wide (bytes) take the cache-blocked path.
#: Below it, the plain single-call accumulate already enjoys cache-line
#: reuse across columns and the per-block Python overhead would lose.
#: Fallback like :data:`BLOCK_BYTES`; tuned per dtype, pinned with
#: ``REPRO_BLOCKED_MIN_STRIDE_BYTES``.
BLOCKED_MIN_STRIDE_BYTES = 64

#: Memoized per-dtype geometry from the empirical tuner, keyed by
#: (dtype.kind, itemsize).  Lazily filled: importing the tuner at
#: module load would cycle (`repro.core` imports this module).
_GEOMETRY_MEMO: dict = {}


def _blocked_geometry(dtype: np.dtype):
    """``(block_bytes, min_stride_bytes)`` for ``dtype``, tuned."""
    key = (dtype.kind, dtype.itemsize)
    geometry = _GEOMETRY_MEMO.get(key)
    if geometry is None:
        geometry = (BLOCK_BYTES, BLOCKED_MIN_STRIDE_BYTES)
        try:
            from repro.core.tuning import kernel_tuning

            tuned = kernel_tuning(dtype)
            geometry = (tuned.block_bytes, tuned.min_stride_bytes)
        except Exception:  # pragma: no cover - tuner must never break scans
            pass
        _GEOMETRY_MEMO[key] = geometry
    return geometry


def phase_perm(pos: int, tuple_size: int) -> np.ndarray:
    """Global tuple lane of each chunk phase: ``perm[p] = (pos + p) % s``.

    A bijection on ``range(s)`` — indexing a lane-order row with it
    yields the phase-order row, and assigning through it inverts that.
    """
    return (int(pos) + np.arange(tuple_size)) % int(tuple_size)


def _is_blocked_dtype(dtype: np.dtype) -> bool:
    # Regrouping the fold is exact only for truly associative
    # arithmetic; fixed-width integers qualify (wraparound included),
    # floats do not.
    return dtype.kind in "iu"


def _lane_scan_strided(src, op, s, out, carry):
    """Lane scan over non-contiguous 1-D views.

    Any 1-D view is uniformly strided, so when the operator is a real
    ufunc the ``(m, s)`` lane-block matrix still exists — not as a
    reshape (that would copy) but as a strided view with row stride
    ``s * stride`` and column stride ``stride``.  One
    ``accumulate(axis=0)`` over that view scans all ``s`` lanes in a
    single call, exactly like the contiguous fast path; only looped
    (non-ufunc) operators fall back to the per-lane slice loop.
    """
    n = src.size
    m = n // s
    if (
        op.ufunc is not None
        and m > 0
        and src.ndim == 1
        and out.ndim == 1
    ):
        from numpy.lib.stride_tricks import as_strided

        if out is not src:
            # Same copy-then-in-place trick as the contiguous path:
            # numpy's out-of-place axis-0 accumulate takes the slower
            # buffered loop, and the strided copy is one vectorized
            # assignment.
            out[...] = src
        (st,) = out.strides
        out2 = as_strided(out, shape=(m, s), strides=(s * st, st))
        op.accumulate(out2, axis=0, out=out2)
        if carry is not None:
            op.apply_into(carry, out2, out=out2)
        body = m * s
        r = n - body
        if r:
            # Tail phases continue from the last full row (already
            # folded); out[body:] still holds the raw source values.
            op.apply_into(
                out[body - s : body - s + r], out[body:], out=out[body:]
            )
        return out
    for phase in range(min(n, s)):
        lane_out = out[phase::s]
        op.accumulate(src[phase::s], out=lane_out)
        if carry is not None:
            op.apply_into(carry[phase], lane_out, out=lane_out)
    return out


def lane_scan(
    src: np.ndarray,
    op: AssociativeOp,
    tuple_size: int = 1,
    *,
    out: Optional[np.ndarray] = None,
    carry: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One inclusive lane scan pass of ``src`` into ``out``.

    Parameters
    ----------
    src:
        The chunk (1-D).  Never modified unless ``out`` aliases it —
        ``out=src`` is the supported zero-copy in-place form
        (accumulate is a left fold, so aliasing is safe).
    out:
        Destination, same length as ``src``; allocated when ``None``.
    carry:
        Optional continuation row in **chunk-phase order** (length
        ``tuple_size``): entry ``p`` is folded as ``op(carry[p], x)``
        into every element of phase ``p`` after the local accumulate.
        Exact for integer dtypes; for floats this is the regrouping
        (non-bit-exact) mode — use :func:`lane_scan_exact` when bit
        identity with the one-shot scan is required.

    Returns ``out``.  Without a carry the result is bit-identical to
    the serial reference's lane scan for every dtype, floats included:
    each lane is still one sequential left fold.
    """
    src = np.asarray(src)
    s = int(tuple_size)
    if out is None:
        out = np.empty_like(src)
    n = src.size
    if n == 0:
        return out
    if s == 1:
        op.accumulate(src, out=out)
        if carry is not None:
            op.apply_into(carry[0], out, out=out)
        return out
    m, r = divmod(n, s)
    if m == 0:
        # Every phase has at most one element: the scan is the input.
        if out is not src:
            out[...] = src
        if carry is not None:
            op.apply_into(carry[:n], out, out=out)
        return out
    if not (src.flags.c_contiguous and out.flags.c_contiguous):
        return _lane_scan_strided(src, op, s, out, carry)
    if out is not src:
        # Axis-0 accumulate into a *distinct* buffer takes numpy's
        # buffered inner loop and is measurably slower than the
        # in-place specialization — one streaming copy first, then
        # accumulating in place, wins despite the extra pass.
        out[...] = src
        src = out
    body = m * s
    src2 = src[:body].reshape(m, s)
    out2 = out[:body].reshape(m, s)
    stride_bytes = s * src.dtype.itemsize
    block_bytes, min_stride_bytes = _blocked_geometry(src.dtype)
    if _is_blocked_dtype(src.dtype) and stride_bytes >= min_stride_bytes:
        rows = max(1, block_bytes // stride_bytes)
        prev = carry
        for i in range(0, m, rows):
            blk = out2[i : i + rows]
            op.accumulate(src2[i : i + rows], axis=0, out=blk)
            if prev is not None:
                op.apply_into(prev, blk, out=blk)
            prev = blk[-1]
    else:
        op.accumulate(src2, axis=0, out=out2)
        if carry is not None:
            op.apply_into(carry, out2, out=out2)
    if r:
        # Tail phases continue from the last full row (already folded).
        op.apply_into(out[body - s : body - s + r], src[body:], out=out[body:])
    return out


def _lane_scan_exact_strided(chunk, op, s, carry, seen, pos, out):
    """Mixed seen/unseen lanes (only possible while ``pos < s``)."""
    for phase in range(min(chunk.size, s)):
        lane = (pos + phase) % s
        sl = slice(phase, None, s)
        vals = chunk[sl]
        if seen[lane]:
            ext = np.empty(vals.size + 1, dtype=chunk.dtype)
            ext[0] = carry[lane]
            ext[1:] = vals
            out[sl] = op.accumulate(ext, out=ext)[1:]
        else:
            op.accumulate(vals, out=out[sl])
    return out


def lane_scan_exact(
    chunk: np.ndarray,
    op: AssociativeOp,
    tuple_size: int,
    carry: np.ndarray,
    seen: np.ndarray,
    pos: int = 0,
) -> np.ndarray:
    """Bit-exact continuation scan: prepend the carry, then accumulate.

    ``carry`` and ``seen`` are in **lane order** (length ``tuple_size``);
    ``pos`` is the global index of ``chunk[0]``.  Lanes whose ``seen``
    flag is unset are scanned without a prepend, so non-identities in
    floating point (``0.0 + (-0.0)``) cannot leak in.  The chunk is
    never modified; a fresh array is returned.

    The prepend happens for all lanes at once: one ``n + s`` buffer
    whose first row is the carry permuted into phase order, accumulated
    as an ``(m + 1, s)`` matrix — per lane this is exactly the
    ``accumulate([carry, x0, x1, ...])[1:]`` left fold of the one-shot
    scan, so float rounding is reproduced bit for bit.
    """
    chunk = np.asarray(chunk)
    n = chunk.size
    s = int(tuple_size)
    out = np.empty_like(chunk)
    if n == 0:
        return out
    if s == 1:
        if seen[0]:
            buf = np.empty(n + 1, dtype=chunk.dtype)
            buf[0] = carry[0]
            buf[1:] = chunk
            op.accumulate(buf, out=buf)
            out[...] = buf[1:]
        else:
            op.accumulate(chunk, out=out)
        return out
    perm = phase_perm(pos, s)
    relevant = seen[perm[: min(n, s)]]
    if not relevant.any():
        return lane_scan(chunk, op, s, out=out)
    if not relevant.all():
        return _lane_scan_exact_strided(chunk, op, s, carry, seen, pos, out)
    m, r = divmod(n, s)
    buf = np.empty(n + s, dtype=chunk.dtype)
    buf[:s] = carry[perm]
    buf[s:] = chunk
    body = (m + 1) * s
    b2 = buf[:body].reshape(m + 1, s)
    op.accumulate(b2, axis=0, out=b2)
    if r:
        op.apply_into(buf[body - s : body - s + r], chunk[m * s :], out=buf[body:])
    out[...] = buf[s:]
    return out


def phase_totals(scanned: np.ndarray, tuple_size: int) -> np.ndarray:
    """Last scanned element of each chunk phase, in phase order.

    Returns an array of length ``min(n, tuple_size)`` — exactly the
    phases that have at least one element; the caller maps phases to
    lanes with :func:`phase_perm`.
    """
    scanned = np.asarray(scanned)
    n = scanned.size
    s = int(tuple_size)
    if s == 1:
        return scanned[n - 1 : n].copy()
    m, r = divmod(n, s)
    if m == 0:
        return scanned.copy()
    totals = scanned[n - r - s : n - r].copy()
    if r:
        totals[:r] = scanned[n - r :]
    return totals


def lane_totals(
    scanned: np.ndarray, op: AssociativeOp, tuple_size: int, pos: int = 0
) -> np.ndarray:
    """Per-lane totals in **lane order**; identity for absent lanes."""
    scanned = np.asarray(scanned)
    s = int(tuple_size)
    totals = np.full(s, op.identity(scanned.dtype), dtype=scanned.dtype)
    t = phase_totals(scanned, s)
    if t.size:
        totals[(int(pos) + np.arange(t.size)) % s] = t
    return totals


def _fold_lanes_strided(buf, op, carry, pos, s, seen):
    for phase in range(min(buf.size, s)):
        lane = (pos + phase) % s
        if seen is not None and not seen[lane]:
            continue
        sl = buf[phase::s]
        op.apply_into(carry[lane], sl, out=sl)


def fold_lanes(
    buf: np.ndarray,
    op: AssociativeOp,
    carry: np.ndarray,
    pos: int = 0,
    tuple_size: int = 1,
    seen: Optional[np.ndarray] = None,
) -> np.ndarray:
    """In-place ``op(carry[lane], x)`` over a chunk ("Add Resulting
    Carry i to all Values of Chunk i", Figure 1).

    ``carry`` (and the optional ``seen`` restriction mask) are in lane
    order; ``pos`` is the global index of ``buf[0]``.  When every lane
    participates the fold is two vectorized calls — a broadcast over
    the ``(m, s)`` body view and one over the tail — instead of ``s``
    strided passes.
    """
    buf = np.asarray(buf)
    n = buf.size
    s = int(tuple_size)
    if n == 0:
        return buf
    if seen is not None and not seen.all():
        if seen.any():
            _fold_lanes_strided(buf, op, carry, int(pos), s, seen)
        return buf
    if s == 1:
        op.apply_into(carry[0], buf, out=buf)
        return buf
    row = carry[phase_perm(pos, s)]  # fancy indexing: a contiguous copy
    m, r = divmod(n, s)
    if m == 0:
        op.apply_into(row[:n], buf, out=buf)
    elif buf.flags.c_contiguous:
        body = m * s
        b2 = buf[:body].reshape(m, s)
        op.apply_into(row, b2, out=b2)
        if r:
            op.apply_into(row[:r], buf[body:], out=buf[body:])
    else:
        _fold_lanes_strided(buf, op, carry, int(pos), s, None)
    return buf


def exclusive_shift(
    incl: np.ndarray, heads: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Lane-shift an inclusive chunk right by one stride.

    ``out[i] = incl[i - s]`` for ``i >= s``; the first ``s`` positions
    take ``heads`` — the pre-chunk running totals in **chunk-phase
    order** (identity at the start of a stream).  One whole-array slice
    copy instead of a per-lane shift loop.  ``out`` must not alias
    ``incl``.
    """
    incl = np.asarray(incl)
    n = incl.size
    s = len(heads)
    if out is None:
        out = np.empty_like(incl)
    k = min(s, n)
    out[:k] = heads[:k]
    if n > s:
        out[s:] = incl[:-s]
    return out


def scan_into(
    src: np.ndarray,
    out: np.ndarray,
    op,
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
) -> np.ndarray:
    """Order-``q`` lane scan of ``src`` using ``out`` as the only buffer.

    Pass 1 scans ``src`` into ``out``; passes 2..q re-scan ``out`` in
    place (no ping-pong buffer needed — each pass is a left fold).  The
    exclusive shift, applied on the final pass only, is the one step
    that cannot alias and allocates the returned array.
    """
    op = get_op(op)
    current = src
    for _ in range(int(order)):
        lane_scan(current, op, tuple_size, out=out)
        current = out
    if inclusive:
        return out
    heads = np.full(int(tuple_size), op.identity(out.dtype), dtype=out.dtype)
    return exclusive_shift(out, heads)


class LaneKernel:
    """Carry-continuation scan kernel: ``feed(chunk)`` one chunk at a time.

    The generalization of the sharded driver's private ``_LaneKernel``
    to any op/dtype, with an explicit exactness switch:

    * ``exact=False`` — the zero-copy mode: chunks are accumulated *in
      place* (the passed chunk is mutated and returned) and the running
      carry is folded in afterwards.  Bit-exact for fixed-width
      integers; for floats this regroups the fold (the sharded
      ``exact=False`` semantics).
    * ``exact=True`` — the prepend mode: bit-identical to the one-shot
      scan for every dtype, floats included; chunks are not modified
      and a fresh output is returned per feed.

    ``exact=None`` picks ``False`` for integers, ``True`` otherwise.

    For float dtypes a third mode exists: ``float_mode="compensated"``
    (:mod:`repro.kernels.compensated`) carries an error-free
    ``(value, err)`` state so results are bit-identical for any chunk
    split *and* any thread/shard count, and more accurate than the
    naive fold.  ``float_mode`` (``"exact"`` | ``"compensated"`` |
    ``"regrouped"``) wins over the legacy ``exact`` tri-state when both
    are given; integers ignore it (integer regrouping is already
    exact).

    ``start`` is the global index of the first element that will be
    fed; ``prime`` preloads an absolute carry row (lane order) so the
    kernel's output is final as written — lanes with no element before
    ``start`` are marked unseen, exactly like a stream that has
    consumed ``start`` elements.
    """

    def __init__(
        self, op, dtype, tuple_size=1, start=0, prime=None, exact=None,
        float_mode=None,
    ):
        from repro.kernels.compensated import (
            check_compensated,
            fresh_state,
            resolve_float_mode,
        )

        self.op = get_op(op)
        self.dtype = self.op.check_dtype(dtype)
        self.s = int(tuple_size)
        self.pos = int(start)
        identity = self.op.identity(self.dtype)
        self.carry = np.full(self.s, identity, dtype=self.dtype)
        self.float_mode = resolve_float_mode(self.dtype, float_mode, exact)
        self._comp = None
        if self.float_mode == "compensated":
            check_compensated(self.op, self.dtype)
            if prime is not None:
                raise ValueError(
                    "prime is not supported in compensated float mode (an "
                    "absolute carry has no error decomposition)"
                )
            if self.pos != 0:
                raise ValueError(
                    "compensated LaneKernel streams must start at 0 (use the "
                    "sharded driver's collect/fold kernels for offsets)"
                )
            self._comp = fresh_state(self.dtype, self.s)
            self.exact = False
        elif self.float_mode is not None:
            self.exact = self.float_mode == "exact"
        else:
            if exact is None:
                exact = self.dtype.kind not in "iu"
            self.exact = bool(exact)
        if prime is not None:
            self.carry[:] = prime
            self.active = np.arange(self.s) < self.pos
        else:
            self.active = np.zeros(self.s, dtype=bool)

    @property
    def delegated_stage_scans(self) -> int:
        """Engine-delegation counter (always 0: this kernel is local)."""
        return 0

    # Overridable scan/fold hooks: the threaded kernel subclasses these
    # three (slab-parallel versions) while feed()'s carry state machine
    # stays single-sourced here.

    def _scan(self, chunk, carry_row=None):
        """In-place lane scan of ``chunk`` with an optional phase-order
        carry row folded in."""
        return lane_scan(chunk, self.op, self.s, out=chunk, carry=carry_row)

    def _scan_exact(self, chunk):
        """Bit-exact prepend-carry continuation scan (fresh output)."""
        return lane_scan_exact(
            chunk, self.op, self.s, self.carry, self.active, self.pos
        )

    def _scan_compensated(self, chunk):
        """Compensated continuation scan (fresh output); the threaded
        subclass routes whole segments through the slab pool."""
        from repro.kernels.compensated import lane_scan_compensated

        return lane_scan_compensated(chunk, self.op, self.s, self._comp, self.pos)

    def _fold(self, out):
        """Fold the seen lanes of the running carry into ``out``."""
        fold_lanes(out, self.op, self.carry, self.pos, self.s, seen=self.active)

    def feed(self, chunk: np.ndarray) -> np.ndarray:
        """Scan the next chunk as a continuation; returns the scanned
        values (the mutated ``chunk`` itself in the in-place mode)."""
        chunk = np.asarray(chunk)
        n = chunk.size
        if n == 0:
            return chunk
        s = self.s
        if self._comp is not None:
            out = self._scan_compensated(chunk)
        elif self.exact:
            out = self._scan_exact(chunk)
        elif self.active.all():
            row = self.carry[phase_perm(self.pos, s)] if s > 1 else self.carry
            out = self._scan(chunk, row)
        elif self.active.any():
            # Mixed seen/unseen lanes (only while pos < s): scan, then
            # fold the seen lanes only — unseen lanes must not even see
            # an identity fold in the float mode.
            out = self._scan(chunk)
            self._fold(out)
        else:
            out = self._scan(chunk)
        t = phase_totals(out, s)
        if t.size:
            touched = (self.pos + np.arange(t.size)) % s
            self.carry[touched] = t
            self.active[touched] = True
        self.pos += n
        return out
