"""Lane-aware scan kernels: the one tuned hot path every engine calls.

The paper's cost claim (Section 3) is that the tuple and higher-order
generalizations are *free* in memory traffic — ``2n`` data movement
regardless of ``s`` and ``q``.  This module is the host-side embodiment
of that claim: a single, zero-copy kernel layer that the fast host
engine (:mod:`repro.core.host`), the streaming session
(:mod:`repro.stream.session`), the sharded out-of-core driver
(:mod:`repro.stream.sharded`), and the multicore workers
(:mod:`repro.parallel.worker`) all share, instead of each hand-rolling
a Python loop over ``s`` strided lane slices with per-lane temporaries.

Layout and the 2-D lane-block trick
-----------------------------------

A chunk whose first element sits at global index ``pos`` stores the
element of chunk position ``i`` in global tuple lane ``(pos + i) % s``.
Chunk positions ``p, p + s, p + 2s, ...`` therefore form one lane — we
call ``p`` the chunk *phase*; :func:`phase_perm` maps phases to global
lanes.  Because lanes are interleaved with stride ``s``, the first
``(n // s) * s`` elements of a contiguous chunk reshape — *as a view, no
copy* — to an ``(n // s, s)`` matrix whose columns are the lanes.  One
``ufunc.accumulate(axis=0)`` then scans **all s lanes in a single
call**, replacing the Python-level lane loop; the ``n % s`` tail
elements are finished with one vectorized fold from the last full row.

Column-order accumulate walks the matrix row by row, so for wide
strides (``s * itemsize`` beyond a cache line) each column touch is a
new cache line and the naive call becomes memory-bound.  For the truly
associative dtypes (fixed-width integers, wraparound included) the
kernel therefore processes *row blocks* that fit in cache
(:data:`BLOCK_BYTES`) and splices them with an in-cache carry fold —
measurably faster at large ``s`` and bit-identical, because integer
regrouping is exact.  Floats keep the plain single-call form: it
performs the exact per-lane left fold, so results stay bit-identical
to the serial reference.

Exactness modes
---------------

* :func:`lane_scan` continues a scan by folding a carry row *after*
  accumulating — one extra vectorized pass, no prepend copies.  The
  fold regroups the reduction, which is exact for integers; it is the
  sharded driver's ``exact=False`` float mode.
* :func:`lane_scan_exact` continues by *prepending* the carry row to
  the chunk (one ``n + s`` buffer) so the ufunc accumulate reproduces
  the one-shot scan's exact sequence of partial results — float
  rounding included.  This is the streaming session's bit-exact float
  path, vectorized across lanes instead of looping per lane.

:class:`LaneKernel` wraps either mode behind the carry-continuation
``feed(chunk)`` API that the sharded driver introduced.
"""

from __future__ import annotations

import math
import os
from typing import Optional

import numpy as np

from repro.ops import AssociativeOp, get_op

#: Row-block byte budget for the cache-blocked wide-stride path.  One
#: block of ``BLOCK_BYTES // (s * itemsize)`` rows is accumulated while
#: it is cache-resident, then spliced to the next block with a single
#: vectorized carry fold.  This constant is the *fallback*: the actual
#: budget is measured per dtype at first use by the empirical tuner
#: (:func:`repro.core.tuning.kernel_tuning`) and can be pinned with
#: ``REPRO_BLOCK_BYTES``.
BLOCK_BYTES = 128 << 10

#: Lane strides at least this wide (bytes) take the cache-blocked path.
#: Below it, the plain single-call accumulate already enjoys cache-line
#: reuse across columns and the per-block Python overhead would lose.
#: Fallback like :data:`BLOCK_BYTES`; tuned per dtype, pinned with
#: ``REPRO_BLOCKED_MIN_STRIDE_BYTES``.
BLOCKED_MIN_STRIDE_BYTES = 64

#: Tile byte budget for the fused single-pass order-q path.  Fused
#: tiles are revisited ``q`` times while cache-resident, so the sweet
#: spot is larger than :data:`BLOCK_BYTES` (fewer per-tile Python
#: dispatches amortized over ``q`` accumulates; measured best around
#: 0.5–1 MiB).  Pinned with ``REPRO_FUSED_BLOCK_BYTES``.
FUSED_BLOCK_BYTES = 1 << 20

#: Minimum tuple size for the fused order-q path to engage.  At
#: ``s == 1`` the chunk is one contiguous prefetch-friendly stream, the
#: per-pass accumulate is not strided, and the measured fused path
#: loses to pass-per-order — same engagement-heuristic role as
#: :data:`BLOCKED_MIN_STRIDE_BYTES` plays for the blocked order-1 path.
FUSED_MIN_TUPLE = 2

#: Memoized per-dtype geometry from the empirical tuner, keyed by
#: (dtype.kind, itemsize).  Lazily filled: importing the tuner at
#: module load would cycle (`repro.core` imports this module).
_GEOMETRY_MEMO: dict = {}


def _fused_block_bytes() -> int:
    pinned = os.environ.get("REPRO_FUSED_BLOCK_BYTES")
    if pinned:
        try:
            return max(1, int(pinned))
        except ValueError:
            pass
    return FUSED_BLOCK_BYTES


def _blocked_geometry(dtype: np.dtype):
    """``(block_bytes, min_stride_bytes)`` for ``dtype``, tuned."""
    key = (dtype.kind, dtype.itemsize)
    geometry = _GEOMETRY_MEMO.get(key)
    if geometry is None:
        geometry = (BLOCK_BYTES, BLOCKED_MIN_STRIDE_BYTES)
        try:
            from repro.core.tuning import kernel_tuning

            tuned = kernel_tuning(dtype)
            geometry = (tuned.block_bytes, tuned.min_stride_bytes)
        except Exception:  # pragma: no cover - tuner must never break scans
            pass
        _GEOMETRY_MEMO[key] = geometry
    return geometry


def phase_perm(pos: int, tuple_size: int) -> np.ndarray:
    """Global tuple lane of each chunk phase: ``perm[p] = (pos + p) % s``.

    A bijection on ``range(s)`` — indexing a lane-order row with it
    yields the phase-order row, and assigning through it inverts that.
    """
    return (int(pos) + np.arange(tuple_size)) % int(tuple_size)


def _is_blocked_dtype(dtype: np.dtype) -> bool:
    # Regrouping the fold is exact only for truly associative
    # arithmetic; fixed-width integers qualify (wraparound included),
    # floats do not.
    return dtype.kind in "iu"


def _lane_scan_strided(src, op, s, out, carry):
    """Lane scan over non-contiguous 1-D views.

    Any 1-D view is uniformly strided, so when the operator is a real
    ufunc the ``(m, s)`` lane-block matrix still exists — not as a
    reshape (that would copy) but as a strided view with row stride
    ``s * stride`` and column stride ``stride``.  One
    ``accumulate(axis=0)`` over that view scans all ``s`` lanes in a
    single call, exactly like the contiguous fast path; only looped
    (non-ufunc) operators fall back to the per-lane slice loop.
    """
    n = src.size
    m = n // s
    if (
        op.ufunc is not None
        and m > 0
        and src.ndim == 1
        and out.ndim == 1
    ):
        from numpy.lib.stride_tricks import as_strided

        if out is not src:
            # Same copy-then-in-place trick as the contiguous path:
            # numpy's out-of-place axis-0 accumulate takes the slower
            # buffered loop, and the strided copy is one vectorized
            # assignment.
            out[...] = src
        (st,) = out.strides
        out2 = as_strided(out, shape=(m, s), strides=(s * st, st))
        op.accumulate(out2, axis=0, out=out2)
        if carry is not None:
            op.apply_into(carry, out2, out=out2)
        body = m * s
        r = n - body
        if r:
            # Tail phases continue from the last full row (already
            # folded); out[body:] still holds the raw source values.
            op.apply_into(
                out[body - s : body - s + r], out[body:], out=out[body:]
            )
        return out
    for phase in range(min(n, s)):
        lane_out = out[phase::s]
        op.accumulate(src[phase::s], out=lane_out)
        if carry is not None:
            op.apply_into(carry[phase], lane_out, out=lane_out)
    return out


def lane_scan(
    src: np.ndarray,
    op: AssociativeOp,
    tuple_size: int = 1,
    *,
    out: Optional[np.ndarray] = None,
    carry: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One inclusive lane scan pass of ``src`` into ``out``.

    Parameters
    ----------
    src:
        The chunk (1-D).  Never modified unless ``out`` aliases it —
        ``out=src`` is the supported zero-copy in-place form
        (accumulate is a left fold, so aliasing is safe).
    out:
        Destination, same length as ``src``; allocated when ``None``.
    carry:
        Optional continuation row in **chunk-phase order** (length
        ``tuple_size``): entry ``p`` is folded as ``op(carry[p], x)``
        into every element of phase ``p`` after the local accumulate.
        Exact for integer dtypes; for floats this is the regrouping
        (non-bit-exact) mode — use :func:`lane_scan_exact` when bit
        identity with the one-shot scan is required.

    Returns ``out``.  Without a carry the result is bit-identical to
    the serial reference's lane scan for every dtype, floats included:
    each lane is still one sequential left fold.
    """
    src = np.asarray(src)
    s = int(tuple_size)
    if out is None:
        out = np.empty_like(src)
    n = src.size
    if n == 0:
        return out
    if s == 1:
        op.accumulate(src, out=out)
        if carry is not None:
            op.apply_into(carry[0], out, out=out)
        return out
    m, r = divmod(n, s)
    if m == 0:
        # Every phase has at most one element: the scan is the input.
        if out is not src:
            out[...] = src
        if carry is not None:
            op.apply_into(carry[:n], out, out=out)
        return out
    if not (src.flags.c_contiguous and out.flags.c_contiguous):
        return _lane_scan_strided(src, op, s, out, carry)
    if out is not src:
        # Axis-0 accumulate into a *distinct* buffer takes numpy's
        # buffered inner loop and is measurably slower than the
        # in-place specialization — one streaming copy first, then
        # accumulating in place, wins despite the extra pass.
        out[...] = src
        src = out
    body = m * s
    src2 = src[:body].reshape(m, s)
    out2 = out[:body].reshape(m, s)
    stride_bytes = s * src.dtype.itemsize
    block_bytes, min_stride_bytes = _blocked_geometry(src.dtype)
    if _is_blocked_dtype(src.dtype) and stride_bytes >= min_stride_bytes:
        rows = max(1, block_bytes // stride_bytes)
        prev = carry
        for i in range(0, m, rows):
            blk = out2[i : i + rows]
            op.accumulate(src2[i : i + rows], axis=0, out=blk)
            if prev is not None:
                op.apply_into(prev, blk, out=blk)
            prev = blk[-1]
    else:
        op.accumulate(src2, axis=0, out=out2)
        if carry is not None:
            op.apply_into(carry, out2, out=out2)
    if r:
        # Tail phases continue from the last full row (already folded).
        op.apply_into(out[body - s : body - s + r], src[body:], out=out[body:])
    return out


def _lane_scan_exact_strided(chunk, op, s, carry, seen, pos, out):
    """Mixed seen/unseen lanes (only possible while ``pos < s``)."""
    for phase in range(min(chunk.size, s)):
        lane = (pos + phase) % s
        sl = slice(phase, None, s)
        vals = chunk[sl]
        if seen[lane]:
            ext = np.empty(vals.size + 1, dtype=chunk.dtype)
            ext[0] = carry[lane]
            ext[1:] = vals
            out[sl] = op.accumulate(ext, out=ext)[1:]
        else:
            op.accumulate(vals, out=out[sl])
    return out


def lane_scan_exact(
    chunk: np.ndarray,
    op: AssociativeOp,
    tuple_size: int,
    carry: np.ndarray,
    seen: np.ndarray,
    pos: int = 0,
) -> np.ndarray:
    """Bit-exact continuation scan: prepend the carry, then accumulate.

    ``carry`` and ``seen`` are in **lane order** (length ``tuple_size``);
    ``pos`` is the global index of ``chunk[0]``.  Lanes whose ``seen``
    flag is unset are scanned without a prepend, so non-identities in
    floating point (``0.0 + (-0.0)``) cannot leak in.  The chunk is
    never modified; a fresh array is returned.

    The prepend happens for all lanes at once: one ``n + s`` buffer
    whose first row is the carry permuted into phase order, accumulated
    as an ``(m + 1, s)`` matrix — per lane this is exactly the
    ``accumulate([carry, x0, x1, ...])[1:]`` left fold of the one-shot
    scan, so float rounding is reproduced bit for bit.
    """
    chunk = np.asarray(chunk)
    n = chunk.size
    s = int(tuple_size)
    out = np.empty_like(chunk)
    if n == 0:
        return out
    if s == 1:
        if seen[0]:
            buf = np.empty(n + 1, dtype=chunk.dtype)
            buf[0] = carry[0]
            buf[1:] = chunk
            op.accumulate(buf, out=buf)
            out[...] = buf[1:]
        else:
            op.accumulate(chunk, out=out)
        return out
    perm = phase_perm(pos, s)
    relevant = seen[perm[: min(n, s)]]
    if not relevant.any():
        return lane_scan(chunk, op, s, out=out)
    if not relevant.all():
        return _lane_scan_exact_strided(chunk, op, s, carry, seen, pos, out)
    m, r = divmod(n, s)
    buf = np.empty(n + s, dtype=chunk.dtype)
    buf[:s] = carry[perm]
    buf[s:] = chunk
    body = (m + 1) * s
    b2 = buf[:body].reshape(m + 1, s)
    op.accumulate(b2, axis=0, out=b2)
    if r:
        op.apply_into(buf[body - s : body - s + r], chunk[m * s :], out=buf[body:])
    out[...] = buf[s:]
    return out


def phase_totals(scanned: np.ndarray, tuple_size: int) -> np.ndarray:
    """Last scanned element of each chunk phase, in phase order.

    Returns an array of length ``min(n, tuple_size)`` — exactly the
    phases that have at least one element; the caller maps phases to
    lanes with :func:`phase_perm`.
    """
    scanned = np.asarray(scanned)
    n = scanned.size
    s = int(tuple_size)
    if s == 1:
        return scanned[n - 1 : n].copy()
    m, r = divmod(n, s)
    if m == 0:
        return scanned.copy()
    totals = scanned[n - r - s : n - r].copy()
    if r:
        totals[:r] = scanned[n - r :]
    return totals


def lane_totals(
    scanned: np.ndarray, op: AssociativeOp, tuple_size: int, pos: int = 0
) -> np.ndarray:
    """Per-lane totals in **lane order**; identity for absent lanes."""
    scanned = np.asarray(scanned)
    s = int(tuple_size)
    totals = np.full(s, op.identity(scanned.dtype), dtype=scanned.dtype)
    t = phase_totals(scanned, s)
    if t.size:
        totals[(int(pos) + np.arange(t.size)) % s] = t
    return totals


def _fold_lanes_strided(buf, op, carry, pos, s, seen):
    for phase in range(min(buf.size, s)):
        lane = (pos + phase) % s
        if seen is not None and not seen[lane]:
            continue
        sl = buf[phase::s]
        op.apply_into(carry[lane], sl, out=sl)


def fold_lanes(
    buf: np.ndarray,
    op: AssociativeOp,
    carry: np.ndarray,
    pos: int = 0,
    tuple_size: int = 1,
    seen: Optional[np.ndarray] = None,
) -> np.ndarray:
    """In-place ``op(carry[lane], x)`` over a chunk ("Add Resulting
    Carry i to all Values of Chunk i", Figure 1).

    ``carry`` (and the optional ``seen`` restriction mask) are in lane
    order; ``pos`` is the global index of ``buf[0]``.  When every lane
    participates the fold is two vectorized calls — a broadcast over
    the ``(m, s)`` body view and one over the tail — instead of ``s``
    strided passes.
    """
    buf = np.asarray(buf)
    n = buf.size
    s = int(tuple_size)
    if n == 0:
        return buf
    if seen is not None and not seen.all():
        if seen.any():
            _fold_lanes_strided(buf, op, carry, int(pos), s, seen)
        return buf
    if s == 1:
        op.apply_into(carry[0], buf, out=buf)
        return buf
    row = carry[phase_perm(pos, s)]  # fancy indexing: a contiguous copy
    m, r = divmod(n, s)
    if m == 0:
        op.apply_into(row[:n], buf, out=buf)
    elif buf.flags.c_contiguous:
        body = m * s
        b2 = buf[:body].reshape(m, s)
        op.apply_into(row, b2, out=b2)
        if r:
            op.apply_into(row[:r], buf[body:], out=buf[body:])
    else:
        _fold_lanes_strided(buf, op, carry, int(pos), s, None)
    return buf


def exclusive_shift(
    incl: np.ndarray, heads: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Lane-shift an inclusive chunk right by one stride.

    ``out[i] = incl[i - s]`` for ``i >= s``; the first ``s`` positions
    take ``heads`` — the pre-chunk running totals in **chunk-phase
    order** (identity at the start of a stream).  One whole-array slice
    copy instead of a per-lane shift loop.  ``out`` must not alias
    ``incl``.
    """
    incl = np.asarray(incl)
    n = incl.size
    s = len(heads)
    if out is None:
        out = np.empty_like(incl)
    k = min(s, n)
    out[:k] = heads[:k]
    if n > s:
        out[s:] = incl[:-s]
    return out


def fused_supported(op, dtype, order, tuple_size=None) -> bool:
    """Whether the fused single-pass order-``q`` path may engage.

    The exactness gate: the binomial carry identity regroups the
    reduction, which is exact only under truly associative arithmetic —
    modular ADD over fixed-width integers (wraparound included, signed
    or unsigned).  Floats and non-ADD operators keep the pass-per-order
    path, mirroring the compensated-mode gating.  ``tuple_size`` (when
    given) additionally applies the :data:`FUSED_MIN_TUPLE` engagement
    heuristic: ``s == 1`` streams are contiguous and gain nothing from
    fusing.
    """
    op = get_op(op)
    if int(order) < 2 or op.ufunc is not np.add:
        return False
    if np.dtype(dtype).kind not in "iu":
        return False
    return tuple_size is None or int(tuple_size) >= FUSED_MIN_TUPLE


def _binom_wrap(n: int, k: int, dtype: np.dtype):
    """``C(n, k) mod 2**w`` as a ``dtype`` scalar (``n >= k >= 0``)."""
    dtype = np.dtype(dtype)
    bits = dtype.itemsize * 8
    val = math.comb(n, k) & ((1 << bits) - 1)
    unsigned = np.dtype(f"u{dtype.itemsize}")
    return np.array(val, dtype=unsigned).view(dtype)[()]


def fused_weights(rows: int, order: int, dtype, d0: int = 0) -> np.ndarray:
    """Binomial weight columns ``W[d, k] = C(d0 + d + k, k) mod 2**w``.

    Column ``k`` is the order-``k`` carry-application weight at local
    depth ``d``: a carry ``T_j`` entering a region contributes
    ``C(d + q - j, q - j) * T_j`` to the order-``q`` value at depth
    ``d``.  Built by the additive Pascal recurrence
    ``W[d, k] = W[d-1, k] + W[d, k-1]`` — additions only, so every
    entry is exact under modular arithmetic for signed and unsigned
    fixed-width integers alike.
    """
    dtype = np.dtype(dtype)
    q = int(order)
    W = np.empty((int(rows), q), dtype=dtype)
    W[:, 0] = 1
    with np.errstate(over="ignore"):
        for k in range(1, q):
            W[0, k] = _binom_wrap(int(d0) + k, k, dtype)
            if rows > 1:
                W[1:, k] = W[1:, k - 1]
                np.add.accumulate(W[:, k], out=W[:, k])
    return W


def fused_deltas(carry: np.ndarray) -> np.ndarray:
    """Carry-injection rows for the fused tile scan.

    Given the running order totals ``carry[j-1] = T_j`` (shape
    ``(q, s)``), returns ``q`` rows ``delta_p = sum_{i>p} (-1)^p *
    C(i-1, p) * T_i`` — the coefficients of ``sum_i T_i (1-z)^(i-1)``.
    Adding ``delta_p`` to row ``p`` of a tile before its ``q``
    accumulates makes the order-``q`` output the exact continuation at
    *every* row, and makes the last row after the ``j``-th accumulate
    the exact running order-``j`` total once the tile has at least
    ``q`` rows — no weight fold and no combine in the hot loop.
    """
    q = carry.shape[0]
    dtype = carry.dtype
    deltas = np.zeros_like(carry)
    with np.errstate(over="ignore"):
        for p in range(q):
            for i in range(p + 1, q + 1):
                term = carry[i - 1] * _binom_wrap(i - 1, p, dtype)
                if p % 2:
                    deltas[p] -= term
                else:
                    deltas[p] += term
    return deltas


def fused_combine(
    prev: np.ndarray, local: np.ndarray, counts
) -> np.ndarray:
    """Splice two adjacent regions' order-total matrices.

    ``prev[j-1]`` holds the running order-``j`` totals entering a
    region; ``local[j-1]`` the region's own totals scanned from zero
    carry; ``counts`` the per-lane element count in the region (scalar
    or ``(s,)``).  Returns the absolute totals after the region::

        new_j = local_j + sum_{k=0..j-1} C(counts - 1 + k, k) * prev_{j-k}

    Lanes with ``counts == 0`` pass ``prev`` through unchanged.  This
    is the host-side splice used across threaded slabs and shard
    aggregates; all coefficients are exact mod ``2**w``.
    """
    q, s = prev.shape
    dtype = prev.dtype
    counts = np.broadcast_to(np.asarray(counts, dtype=np.int64), (s,))
    new = local.copy()
    with np.errstate(over="ignore"):
        for cnt in np.unique(counts):
            mask = counts == cnt
            if cnt == 0:
                new[:, mask] = prev[:, mask]
                continue
            for j in range(1, q + 1):
                for k in range(j):
                    c = _binom_wrap(int(cnt) - 1 + k, k, dtype)
                    new[j - 1, mask] += c * prev[j - k - 1, mask]
    return new


def fused_lane_scan(
    buf: np.ndarray,
    op,
    tuple_size: int,
    order: int,
    carry: np.ndarray,
    *,
    rows_per_tile: Optional[int] = None,
) -> np.ndarray:
    """Single-pass in-place fused order-``q`` lane scan of ``buf``.

    ``buf`` (1-D, C-contiguous) is read and written exactly once: each
    cache-resident tile of full lane rows is scanned to all ``q``
    orders while hot, with the ``(q, s)`` running-total matrix
    ``carry`` (in **chunk-phase order**; updated in place) advanced
    across tile boundaries via delta injection (:func:`fused_deltas`).
    Tiles shorter than ``q`` rows and the ``n % s`` tail instead take
    the explicit binomial weight fold — both exact.  Only valid inside
    the :func:`fused_supported` gate; bit-identical to ``q`` separate
    :func:`lane_scan` passes for every integer dtype, wraparound
    included.
    """
    op = get_op(op)
    s = int(tuple_size)
    q = int(order)
    n = buf.size
    if n == 0:
        return buf
    dtype = buf.dtype
    if rows_per_tile is None:
        rows_per_tile = max(q, _fused_block_bytes() // (s * dtype.itemsize))
    m = n // s
    body = m * s
    out2 = buf[:body].reshape(m, s)
    local = np.empty((q, s), dtype=dtype)
    with np.errstate(over="ignore"):
        for i in range(0, m, rows_per_tile):
            blk = out2[i : i + rows_per_tile]
            rc = blk.shape[0]
            if rc >= q:
                blk[:q] += fused_deltas(carry)
                for j in range(q):
                    np.add.accumulate(blk, axis=0, out=blk)
                    local[j] = blk[-1]
                carry[...] = local
            else:
                # Runt tile (fewer rows than orders): the injected
                # deltas would not have settled by the last row, so
                # scan locally and fold the binomial weights instead.
                for j in range(q):
                    np.add.accumulate(blk, axis=0, out=blk)
                    local[j] = blk[-1]
                W = fused_weights(rc, q, dtype)
                for k in range(q):
                    blk += W[:, k : k + 1] * carry[q - 1 - k]
                carry[...] = fused_combine(carry, local, rc)
        r = n - body
        if r:
            # The tail is a one-row partial tile at depth 0: the
            # order-q value is x + sum_j T_j, and the touched phases'
            # new order-j totals are x + (T_1 + ... + T_j).
            tail = buf[body:]
            raw = tail.copy()
            part = np.add.accumulate(carry[:, :r], axis=0)
            tail[...] = raw + part[q - 1]
            carry[:, :r] = raw + part
    return buf


def scan_into(
    src: np.ndarray,
    out: np.ndarray,
    op,
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
) -> np.ndarray:
    """Order-``q`` lane scan of ``src`` using ``out`` as the only buffer.

    Inside the :func:`fused_supported` gate (integer ADD, ``q >= 2``,
    ``s >= 2``) the scan is single-pass over memory: one streaming copy
    into ``out``, then :func:`fused_lane_scan` visits each cache-sized
    tile once for all ``q`` orders.  Outside the gate, pass 1 scans
    ``src`` into ``out`` and passes 2..q re-scan ``out`` in place (no
    ping-pong buffer needed — each pass is a left fold).  The exclusive
    shift, applied on the final pass only, is the one step that cannot
    alias and allocates the returned array.
    """
    op = get_op(op)
    q = int(order)
    s = int(tuple_size)
    if (
        q >= 2
        and fused_supported(op, out.dtype, q, s)
        and out.ndim == 1
        and out.flags.c_contiguous
    ):
        if out is not src:
            out[...] = src
        carry = np.zeros((q, s), dtype=out.dtype)
        fused_lane_scan(out, op, s, q, carry)
    else:
        current = src
        for _ in range(q):
            lane_scan(current, op, tuple_size, out=out)
            current = out
    if inclusive:
        return out
    heads = np.full(s, op.identity(out.dtype), dtype=out.dtype)
    return exclusive_shift(out, heads)


class LaneKernel:
    """Carry-continuation scan kernel: ``feed(chunk)`` one chunk at a time.

    The generalization of the sharded driver's private ``_LaneKernel``
    to any op/dtype, with an explicit exactness switch:

    * ``exact=False`` — the zero-copy mode: chunks are accumulated *in
      place* (the passed chunk is mutated and returned) and the running
      carry is folded in afterwards.  Bit-exact for fixed-width
      integers; for floats this regroups the fold (the sharded
      ``exact=False`` semantics).
    * ``exact=True`` — the prepend mode: bit-identical to the one-shot
      scan for every dtype, floats included; chunks are not modified
      and a fresh output is returned per feed.

    ``exact=None`` picks ``False`` for integers, ``True`` otherwise.

    For float dtypes a third mode exists: ``float_mode="compensated"``
    (:mod:`repro.kernels.compensated`) carries an error-free
    ``(value, err)`` state so results are bit-identical for any chunk
    split *and* any thread/shard count, and more accurate than the
    naive fold.  ``float_mode`` (``"exact"`` | ``"compensated"`` |
    ``"regrouped"``) wins over the legacy ``exact`` tri-state when both
    are given; integers ignore it (integer regrouping is already
    exact).

    ``start`` is the global index of the first element that will be
    fed; ``prime`` preloads an absolute carry row (lane order) so the
    kernel's output is final as written — lanes with no element before
    ``start`` are marked unseen, exactly like a stream that has
    consumed ``start`` elements.

    ``order >= 2`` turns the kernel into an order-``q`` continuation
    stream: the carry becomes the ``(q, s)`` running order-total matrix
    (lane order; ``prime`` must match that shape) and each ``feed``
    produces final order-``q`` values.  Inside the
    :func:`fused_supported` gate chunks take the single-pass fused tile
    path; otherwise (``s == 1``, non-ADD integer ops) each chunk is
    re-scanned pass-per-order with one carry row per order — both
    maintain the identical carry matrix, bit for bit.  Higher order
    requires the integer in-place mode (``exact=False``); float streams
    keep using :class:`repro.stream.session.ScanSession`.
    """

    def __init__(
        self, op, dtype, tuple_size=1, start=0, prime=None, exact=None,
        float_mode=None, order=1,
    ):
        from repro.kernels.compensated import (
            check_compensated,
            fresh_state,
            resolve_float_mode,
        )

        self.op = get_op(op)
        self.dtype = self.op.check_dtype(dtype)
        self.s = int(tuple_size)
        self.pos = int(start)
        identity = self.op.identity(self.dtype)
        self.carry = np.full(self.s, identity, dtype=self.dtype)
        self.float_mode = resolve_float_mode(self.dtype, float_mode, exact)
        self._comp = None
        if self.float_mode == "compensated":
            check_compensated(self.op, self.dtype)
            if prime is not None:
                raise ValueError(
                    "prime is not supported in compensated float mode (an "
                    "absolute carry has no error decomposition)"
                )
            if self.pos != 0:
                raise ValueError(
                    "compensated LaneKernel streams must start at 0 (use the "
                    "sharded driver's collect/fold kernels for offsets)"
                )
            self._comp = fresh_state(self.dtype, self.s)
            self.exact = False
        elif self.float_mode is not None:
            self.exact = self.float_mode == "exact"
        else:
            if exact is None:
                exact = self.dtype.kind not in "iu"
            self.exact = bool(exact)
        self.order = int(order)
        self._fused = False
        if self.order > 1:
            if (
                self.dtype.kind not in "iu"
                or self.exact
                or self._comp is not None
            ):
                raise ValueError(
                    "order-q LaneKernel streams require the integer "
                    "in-place mode (exact=False); use ScanSession or "
                    "scan_into for generic order-q scans"
                )
            self._fused = fused_supported(self.op, self.dtype, self.order, self.s)
            self.carry = np.full(
                (self.order, self.s), identity, dtype=self.dtype
            )
        if prime is not None:
            self.carry[...] = prime
            self.active = np.arange(self.s) < self.pos
        else:
            self.active = np.zeros(self.s, dtype=bool)

    @property
    def delegated_stage_scans(self) -> int:
        """Engine-delegation counter (always 0: this kernel is local)."""
        return 0

    # Overridable scan/fold hooks: the threaded kernel subclasses these
    # three (slab-parallel versions) while feed()'s carry state machine
    # stays single-sourced here.

    def _scan(self, chunk, carry_row=None):
        """In-place lane scan of ``chunk`` with an optional phase-order
        carry row folded in."""
        return lane_scan(chunk, self.op, self.s, out=chunk, carry=carry_row)

    def _scan_exact(self, chunk):
        """Bit-exact prepend-carry continuation scan (fresh output)."""
        return lane_scan_exact(
            chunk, self.op, self.s, self.carry, self.active, self.pos
        )

    def _scan_compensated(self, chunk):
        """Compensated continuation scan (fresh output); the threaded
        subclass routes whole segments through the slab pool."""
        from repro.kernels.compensated import lane_scan_compensated

        return lane_scan_compensated(chunk, self.op, self.s, self._comp, self.pos)

    def _fold(self, out):
        """Fold the seen lanes of the running carry into ``out``."""
        fold_lanes(out, self.op, self.carry, self.pos, self.s, seen=self.active)

    def _fused_scan(self, chunk, carry):
        """In-place fused order-q scan with a phase-order ``(q, s)``
        carry matrix (updated in place); the threaded subclass replaces
        this with the slab-parallel version."""
        return fused_lane_scan(chunk, self.op, self.s, self.order, carry)

    def _feed_order(self, chunk: np.ndarray) -> np.ndarray:
        """Order-q continuation feed: fused single-pass inside the gate,
        pass-per-order with one carry row per order outside it.  Both
        advance the identical ``(q, s)`` carry matrix."""
        n = chunk.size
        s = self.s
        if self._fused and chunk.flags.c_contiguous and chunk.ndim == 1:
            perm = phase_perm(self.pos, s)
            permuted = np.ascontiguousarray(self.carry[:, perm])
            self._fused_scan(chunk, permuted)
            self.carry[:, perm] = permuted
            out = chunk
        else:
            out = chunk
            full = self.active.all()
            some = self.active.any()
            for j in range(self.order):
                row = self.carry[j]
                if full:
                    prow = row[phase_perm(self.pos, s)] if s > 1 else row
                    out = self._scan(out, prow)
                else:
                    out = self._scan(out)
                    if some:
                        fold_lanes(
                            out, self.op, row, self.pos, s, seen=self.active
                        )
                t = phase_totals(out, s)
                if t.size:
                    row[(self.pos + np.arange(t.size)) % s] = t
        touched = (self.pos + np.arange(min(n, s))) % s
        self.active[touched] = True
        self.pos += n
        return out

    def feed(self, chunk: np.ndarray) -> np.ndarray:
        """Scan the next chunk as a continuation; returns the scanned
        values (the mutated ``chunk`` itself in the in-place mode)."""
        chunk = np.asarray(chunk)
        n = chunk.size
        if n == 0:
            return chunk
        s = self.s
        if self.order > 1:
            return self._feed_order(chunk)
        if self._comp is not None:
            out = self._scan_compensated(chunk)
        elif self.exact:
            out = self._scan_exact(chunk)
        elif self.active.all():
            row = self.carry[phase_perm(self.pos, s)] if s > 1 else self.carry
            out = self._scan(chunk, row)
        elif self.active.any():
            # Mixed seen/unseen lanes (only while pos < s): scan, then
            # fold the seen lanes only — unseen lanes must not even see
            # an identity fold in the float mode.
            out = self._scan(chunk)
            self._fold(out)
        else:
            out = self._scan(chunk)
        t = phase_totals(out, s)
        if t.size:
            touched = (self.pos + np.arange(t.size)) % s
            self.carry[touched] = t
            self.active[touched] = True
        self.pos += n
        return out
