"""``repro.kernels`` — the shared lane-aware scan kernel layer.

One tuned, zero-copy kernel family used by every engine's host-side
hot path: the fast host functions, the streaming session, the sharded
out-of-core driver, and the multicore workers.  See
:mod:`repro.kernels.lane` for the algorithmic notes (the 2-D
lane-block trick, the cache-blocked integer path, and the exact-float
prepend mode) and :mod:`repro.kernels.compensated` for the
deterministic parallel float mode built on error-free carries.
"""

from repro.kernels.batched import (
    BatchedLaneKernel,
    batchable_op_dtype,
)
from repro.kernels.compensated import (
    FLOAT_MODES,
    SEGMENT_ROWS,
    BatchedCompensatedKernel,
    CompensatedCollectKernel,
    CompensatedFoldKernel,
    chain_segments,
    compensated_scan_into,
    compensated_supported,
    fresh_state,
    lane_scan_compensated,
    resolve_float_mode,
    segment_span,
)
from repro.kernels.lane import (
    BLOCK_BYTES,
    BLOCKED_MIN_STRIDE_BYTES,
    FUSED_BLOCK_BYTES,
    FUSED_MIN_TUPLE,
    LaneKernel,
    exclusive_shift,
    fold_lanes,
    fused_combine,
    fused_deltas,
    fused_lane_scan,
    fused_supported,
    fused_weights,
    lane_scan,
    lane_scan_exact,
    lane_totals,
    phase_perm,
    phase_totals,
    scan_into,
)
from repro.kernels.threaded import (
    MIN_SLAB_BYTES,
    PARALLEL_CUTOVER_BYTES,
    ThreadedLaneKernel,
    ThreadedScan,
    get_pool,
    resolve_threads,
    threaded_fold_lanes,
    threaded_fused_lane_scan,
    threaded_lane_scan,
    threaded_scan_into,
)

__all__ = [
    "BLOCK_BYTES",
    "BLOCKED_MIN_STRIDE_BYTES",
    "FLOAT_MODES",
    "FUSED_BLOCK_BYTES",
    "FUSED_MIN_TUPLE",
    "MIN_SLAB_BYTES",
    "PARALLEL_CUTOVER_BYTES",
    "SEGMENT_ROWS",
    "BatchedCompensatedKernel",
    "BatchedLaneKernel",
    "CompensatedCollectKernel",
    "CompensatedFoldKernel",
    "LaneKernel",
    "ThreadedLaneKernel",
    "ThreadedScan",
    "batchable_op_dtype",
    "chain_segments",
    "compensated_scan_into",
    "compensated_supported",
    "exclusive_shift",
    "fold_lanes",
    "fresh_state",
    "fused_combine",
    "fused_deltas",
    "fused_lane_scan",
    "fused_supported",
    "fused_weights",
    "get_pool",
    "lane_scan",
    "lane_scan_compensated",
    "lane_scan_exact",
    "lane_totals",
    "phase_perm",
    "phase_totals",
    "resolve_float_mode",
    "resolve_threads",
    "scan_into",
    "threaded_fold_lanes",
    "threaded_fused_lane_scan",
    "threaded_lane_scan",
    "threaded_scan_into",
]
