"""The top-level user API.

Thin, validated wrappers over the fast host engine
(:mod:`repro.core.host`).  Every scan-shaped function accepts an
optional ``engine`` — either a name from :data:`ENGINE_NAMES`
(``"parallel"`` runs the shared-memory multicore engine,
``"sam"``/``"lookback"``/... run the simulated-GPU engines,
``"host"`` forces the serial-equivalent fast path) or any object with
``run(values, order=..., tuple_size=..., op=..., inclusive=...)`` such
as :class:`repro.core.SamScan`, :class:`repro.parallel.ParallelSamScan`
or a baseline.  All engines are bit-identical; they differ in what
else they give you (measured traffic, real parallel speedup, ...).

Inputs that do not fit one call go through :mod:`repro.stream`:
:func:`open_session` returns a :class:`~repro.stream.ScanSession` that
accepts input in chunks (engines are wrapped, not added — any engine
can scan the chunks), and :func:`scan_file` runs a whole
larger-than-memory file out of core with durable, resumable
checkpoints.
"""

from __future__ import annotations

import numpy as np

from repro.core.host import (
    host_delta_decode,
    host_delta_encode,
    host_prefix_sum,
    host_scan,
)
from repro.ops import ADD, get_op

#: Engine names accepted by :func:`resolve_engine` (and therefore by the
#: ``engine=`` parameter of every scan-shaped API function).
ENGINE_NAMES = (
    "host",
    "threaded",
    "parallel",
    "parallel_chained",
    "sam",
    "sam_chained",
    "lookback",
    "reduce_scan",
    "three_phase",
    "streamscan",
)


def resolve_engine(engine):
    """Map an engine name to a constructed engine (lazily imported).

    ``None`` and ``"host"`` resolve to ``None`` — the callers' fast
    host path.  Already-constructed engine objects pass through
    unchanged, so callers can keep handing in configured instances.
    """
    if engine is None or not isinstance(engine, str):
        return engine
    name = engine.lower()
    if name == "host":
        return None
    if name == "threaded":
        from repro.kernels import ThreadedScan

        return ThreadedScan()
    if name in ("parallel", "parallel_chained"):
        from repro.parallel import ParallelSamScan

        scheme = "chained" if name == "parallel_chained" else "decoupled"
        return ParallelSamScan(carry_scheme=scheme)
    if name in ("sam", "sam_chained"):
        from repro.core import SamScan

        scheme = "chained" if name == "sam_chained" else "decoupled"
        return SamScan(carry_scheme=scheme)
    if name == "lookback":
        from repro.baselines import DecoupledLookbackScan

        return DecoupledLookbackScan()
    if name == "reduce_scan":
        from repro.baselines import ReduceThenScan

        return ReduceThenScan()
    if name == "three_phase":
        from repro.baselines import ThreePhaseScan

        return ThreePhaseScan()
    if name == "streamscan":
        from repro.baselines import StreamScan

        return StreamScan()
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {', '.join(ENGINE_NAMES)} "
        f"or an engine object"
    )


def prefix_sum(
    values,
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
) -> np.ndarray:
    """Generalized prefix sum (order-``q``, tuple-``s``).

    ``order=1, tuple_size=1`` is the conventional prefix sum; higher
    orders decode higher-order difference sequences; tuple sizes > 1
    compute ``s`` interleaved independent prefix sums.

    >>> import numpy as np
    >>> prefix_sum(np.array([1, 1, 1, 1], dtype=np.int32)).tolist()
    [1, 2, 3, 4]
    >>> prefix_sum(np.array([1, 1, 1, 1], dtype=np.int32), order=2).tolist()
    [1, 3, 6, 10]
    >>> prefix_sum(np.array([1, 10, 1, 10], dtype=np.int32), tuple_size=2).tolist()
    [1, 10, 2, 20]
    """
    engine = resolve_engine(engine)
    if engine is not None:
        return engine.run(
            values, order=order, tuple_size=tuple_size, op=ADD, inclusive=inclusive
        ).values
    return host_prefix_sum(
        values, order=order, tuple_size=tuple_size, op=ADD, inclusive=inclusive
    )


def scan(
    values,
    op="add",
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
) -> np.ndarray:
    """Generalized prefix scan with an arbitrary associative operator.

    ``op`` is a built-in name (``add``, ``max``, ``min``, ``xor``,
    ``and``, ``or``, ``mul``) or a :class:`repro.ops.AssociativeOp`.

    >>> import numpy as np
    >>> scan(np.array([3, 1, 4, 1, 5], dtype=np.int32), op="max").tolist()
    [3, 3, 4, 4, 5]
    """
    engine = resolve_engine(engine)
    if engine is not None:
        return engine.run(
            values, tuple_size=tuple_size, op=get_op(op), inclusive=inclusive
        ).values
    return host_scan(values, op=op, tuple_size=tuple_size, inclusive=inclusive)


def delta_encode(values, order: int = 1, tuple_size: int = 1) -> np.ndarray:
    """Order-``q``, tuple-``s`` delta encoding (difference sequence).

    The paper's motivating data model: replaces each value with its
    difference from the lane predecessor, ``order`` times.  Exactly
    inverted by :func:`delta_decode` under wraparound arithmetic.
    (Encoding is embarrassingly parallel — there is nothing for a scan
    engine to do, so no ``engine`` parameter here.)
    """
    return host_delta_encode(values, order=order, tuple_size=tuple_size)


def delta_decode(deltas, order: int = 1, tuple_size: int = 1, engine=None) -> np.ndarray:
    """Decode a difference sequence — i.e. the generalized prefix sum."""
    engine = resolve_engine(engine)
    if engine is not None:
        return engine.run(deltas, order=order, tuple_size=tuple_size).values
    return host_delta_decode(deltas, order=order, tuple_size=tuple_size)


def open_session(
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    dtype=None,
    engine=None,
    threads=None,
):
    """Open a streaming scan session (chunked input, persistent carry).

    Returns a :class:`repro.stream.ScanSession`: call
    ``session.feed(chunk)`` repeatedly; the concatenated outputs are
    bit-identical to the one-shot scan of the concatenated inputs, for
    arbitrary chunk boundaries.  ``engine`` selects the inner engine
    the chunks are scanned on (same names/objects as everywhere else);
    ``threads`` (an int or ``"auto"``) additionally runs integer
    host-path chunk scans on the slab-parallel in-memory kernel —
    results are unchanged.

    >>> import numpy as np
    >>> session = open_session(order=2)
    >>> session.feed(np.array([1, 1], dtype=np.int32)).tolist()
    [1, 3]
    >>> session.feed(np.array([1, 1], dtype=np.int32)).tolist()
    [6, 10]
    """
    from repro.stream import ScanSession

    return ScanSession(
        op=op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        dtype=dtype,
        engine=engine,
        threads=threads,
    )


def scan_file(
    input_path,
    output_path,
    *,
    dtype="int32",
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    chunk_bytes: int = None,
    checkpoint=None,
    checkpoint_every: int = None,
    resume: bool = False,
    shards: int = None,
    workers: int = None,
    exact: bool = True,
    threads=None,
    adaptive_chunks: bool = None,
):
    """Scan a raw binary file out of core (see :mod:`repro.stream`).

    Memory-maps ``input_path``, pipelines double-buffered chunks of
    ``chunk_bytes`` through a session on ``engine``, and writes the
    scanned stream to ``output_path`` — bit-identical to a one-shot
    scan but with peak memory bounded by a few chunks.  With
    ``checkpoint=path`` progress is persisted atomically every
    ``checkpoint_every`` chunks and an interrupted job continues under
    ``resume=True``.  Returns a :class:`repro.stream.StreamResult`.

    With ``shards=N`` (N > 1) the job runs on the sharded driver
    instead (:func:`repro.stream.scan_file_sharded`): the input is cut
    into N contiguous shards scanned concurrently by up to ``workers``
    threads, spliced, and folded; ``checkpoint`` then names a per-shard
    manifest and resume re-runs only unfinished shards.  Float inputs
    stay on the sequential exact path unless ``exact=False``.  Returns
    a :class:`repro.stream.ShardedResult`.

    ``threads`` opts chunk scans into the slab-parallel in-memory
    kernel (per session, or per shard task with the combined
    oversubscription guard — see :mod:`repro.kernels.threaded`);
    ``adaptive_chunks`` toggles measured-phase-seconds chunk sizing
    (default: on for sharded jobs, off for single-session jobs).
    """
    from repro import stream

    if shards is not None and shards > 1:
        kwargs = {}
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        if adaptive_chunks is not None:
            kwargs["adaptive_chunks"] = adaptive_chunks
        return stream.scan_file_sharded(
            input_path,
            output_path,
            dtype=dtype,
            op=op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            engine=engine,
            shards=shards,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            exact=exact,
            threads=threads,
            **kwargs,
        )

    kwargs = {}
    if chunk_bytes is not None:
        kwargs["chunk_bytes"] = chunk_bytes
    if checkpoint_every is not None:
        kwargs["checkpoint_every"] = checkpoint_every
    if adaptive_chunks is not None:
        kwargs["adaptive_chunks"] = adaptive_chunks
    return stream.scan_file(
        input_path,
        output_path,
        dtype=dtype,
        op=op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        engine=engine,
        checkpoint=checkpoint,
        resume=resume,
        threads=threads,
        **kwargs,
    )


def connect(address, **kwargs):
    """Connect to a running scan server (``python -m repro serve``).

    ``address`` is ``"host:port"``, ``"unix:/path"``, or a unix socket
    path.  Returns a :class:`repro.serve.ScanClient` — the served
    counterpart of :func:`open_session`: ``client.open(name, ...)``
    then ``client.feed(name, chunk)``; concatenated outputs are
    bit-identical to the one-shot scan, and survive server restarts
    when the server checkpoints.

    >>> client = connect("127.0.0.1:7777")   # doctest: +SKIP
    >>> client.open("ticks", op="add", dtype="int64")  # doctest: +SKIP
    """
    from repro.serve import ScanClient

    return ScanClient(address, **kwargs)
