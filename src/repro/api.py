"""The top-level user API.

Thin, validated wrappers over the fast host engine
(:mod:`repro.core.host`).  Every scan-shaped function accepts an
optional ``engine`` — either a name from :data:`ENGINE_NAMES`
(``"parallel"`` runs the shared-memory multicore engine,
``"sam"``/``"lookback"``/... run the simulated-GPU engines,
``"host"`` forces the serial-equivalent fast path) or any object with
``run(values, order=..., tuple_size=..., op=..., inclusive=...)`` such
as :class:`repro.core.SamScan`, :class:`repro.parallel.ParallelSamScan`
or a baseline.  All engines are bit-identical; they differ in what
else they give you (measured traffic, real parallel speedup, ...).

Inputs that do not fit one call go through :mod:`repro.stream`:
:func:`open_session` returns a :class:`~repro.stream.ScanSession` that
accepts input in chunks (engines are wrapped, not added — any engine
can scan the chunks), and :func:`scan_file` runs a whole
larger-than-memory file out of core with durable, resumable
checkpoints.

When the caller pins nothing — ``repro.scan(x)``,
``repro.prefix_sum(x)``, ``repro.scan_file(in, out)`` with no
``engine``/``threads``/``shards``/``chunk_bytes`` — the execution
strategy is chosen by :mod:`repro.plan` from the workload and the
machine (``engine="auto"`` names the planner explicitly; every other
explicit flag always wins).  :func:`explain` prints the planner's
candidate table without running anything.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.host import (
    host_delta_decode,
    host_delta_encode,
    host_prefix_sum,
    host_scan,
)
from repro.ops import ADD, get_op

#: Engine names accepted by :func:`resolve_engine` (and therefore by the
#: ``engine=`` parameter of every scan-shaped API function).
ENGINE_NAMES = (
    "auto",
    "host",
    "threaded",
    "parallel",
    "parallel_chained",
    "sam",
    "sam_chained",
    "lookback",
    "reduce_scan",
    "three_phase",
    "streamscan",
)


def _wants_planner(engine) -> bool:
    """Whether an ``engine=`` value asks for the planner: unset, or the
    explicit name ``"auto"``."""
    return engine is None or (
        isinstance(engine, str) and engine.lower() == "auto"
    )


def resolve_engine(engine, float_mode=None):
    """Map an engine name to a constructed engine (lazily imported).

    ``None`` and ``"host"`` resolve to ``None`` — the callers' fast
    host path.  So does ``"auto"``: the planner is consulted by the
    API entry points that own a whole workload (:func:`scan`,
    :func:`prefix_sum`, :func:`scan_file`); in engine-object positions
    that only see one chunk at a time there is nothing to plan over,
    and the host path is the planner's serial strategy.
    Already-constructed engine objects pass through unchanged, so
    callers can keep handing in configured instances.

    ``float_mode`` threads the float contract into the engines that
    implement it (``"threaded"``; the host path and the planner handle
    it at their own entry points).  The simulated-GPU engines and the
    process-pool engine implement only the exact contract, so a
    non-exact mode on those names is an error rather than a silent
    downgrade.
    """
    if engine is None or not isinstance(engine, str):
        return engine
    name = engine.lower()
    if name in ("host", "auto"):
        return None
    if name == "threaded":
        from repro.kernels import ThreadedScan

        return ThreadedScan(float_mode=float_mode)
    if float_mode not in (None, "exact"):
        raise ValueError(
            f"engine {engine!r} implements only the exact float contract; "
            f"float_mode={float_mode!r} needs engine='threaded', the host "
            f"path, or the planner (engine='auto')"
        )
    if name in ("parallel", "parallel_chained"):
        from repro.parallel import ParallelSamScan

        scheme = "chained" if name == "parallel_chained" else "decoupled"
        return ParallelSamScan(carry_scheme=scheme)
    if name in ("sam", "sam_chained"):
        from repro.core import SamScan

        scheme = "chained" if name == "sam_chained" else "decoupled"
        return SamScan(carry_scheme=scheme)
    if name == "lookback":
        from repro.baselines import DecoupledLookbackScan

        return DecoupledLookbackScan()
    if name == "reduce_scan":
        from repro.baselines import ReduceThenScan

        return ReduceThenScan()
    if name == "three_phase":
        from repro.baselines import ThreePhaseScan

        return ThreePhaseScan()
    if name == "streamscan":
        from repro.baselines import StreamScan

        return StreamScan()
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {', '.join(ENGINE_NAMES)} "
        f"or an engine object"
    )


def _host_compensated(values, op, order, tuple_size, inclusive) -> np.ndarray:
    """The host path's compensated-float branch: the error-free-carry
    serial scan (:func:`repro.kernels.compensated_scan_into`) — the
    reference every parallel compensated strategy is bit-identical to."""
    from repro.kernels import compensated_scan_into
    from repro.kernels.compensated import check_compensated

    resolved = get_op(op)
    array = np.ascontiguousarray(values)
    check_compensated(resolved, array.dtype)
    return compensated_scan_into(
        array,
        np.empty_like(array),
        resolved,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
    )


def prefix_sum(
    values,
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    float_mode=None,
) -> np.ndarray:
    """Generalized prefix sum (order-``q``, tuple-``s``).

    ``order=1, tuple_size=1`` is the conventional prefix sum; higher
    orders decode higher-order difference sequences; tuple sizes > 1
    compute ``s`` interleaved independent prefix sums.

    ``float_mode`` picks the float contract for float dtypes:
    ``"exact"`` (default) reproduces the sequential left fold bit for
    bit, ``"compensated"`` runs the error-free-carry scan — more
    accurate than the naive fold and deterministically parallelizable —
    and ``"regrouped"`` allows carry-fold rounding differences.
    Integer inputs ignore it.

    >>> import numpy as np
    >>> prefix_sum(np.array([1, 1, 1, 1], dtype=np.int32)).tolist()
    [1, 2, 3, 4]
    >>> prefix_sum(np.array([1, 1, 1, 1], dtype=np.int32), order=2).tolist()
    [1, 3, 6, 10]
    >>> prefix_sum(np.array([1, 10, 1, 10], dtype=np.int32), tuple_size=2).tolist()
    [1, 10, 2, 20]
    """
    if _wants_planner(engine):
        from repro.plan import auto_scan

        return auto_scan(
            values, op=ADD, order=order, tuple_size=tuple_size,
            inclusive=inclusive, float_mode=float_mode,
        )
    engine = resolve_engine(engine, float_mode=float_mode)
    if engine is not None:
        return engine.run(
            values, order=order, tuple_size=tuple_size, op=ADD, inclusive=inclusive
        ).values
    if float_mode == "compensated" and np.asarray(values).dtype.kind == "f":
        return _host_compensated(values, ADD, order, tuple_size, inclusive)
    return host_prefix_sum(
        values, order=order, tuple_size=tuple_size, op=ADD, inclusive=inclusive
    )


def scan(
    values,
    op="add",
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    float_mode=None,
) -> np.ndarray:
    """Generalized prefix scan with an arbitrary associative operator.

    ``op`` is a built-in name (``add``, ``max``, ``min``, ``xor``,
    ``and``, ``or``, ``mul``) or a :class:`repro.ops.AssociativeOp`.
    ``float_mode`` works as in :func:`prefix_sum` (compensated mode
    supports float ``add`` only).

    >>> import numpy as np
    >>> scan(np.array([3, 1, 4, 1, 5], dtype=np.int32), op="max").tolist()
    [3, 3, 4, 4, 5]
    """
    if _wants_planner(engine):
        from repro.plan import auto_scan

        return auto_scan(
            values, op=op, order=1, tuple_size=tuple_size,
            inclusive=inclusive, float_mode=float_mode,
        )
    engine = resolve_engine(engine, float_mode=float_mode)
    if engine is not None:
        return engine.run(
            values, tuple_size=tuple_size, op=get_op(op), inclusive=inclusive
        ).values
    if float_mode == "compensated" and np.asarray(values).dtype.kind == "f":
        return _host_compensated(values, op, 1, tuple_size, inclusive)
    return host_scan(values, op=op, tuple_size=tuple_size, inclusive=inclusive)


def delta_encode(values, order: int = 1, tuple_size: int = 1) -> np.ndarray:
    """Order-``q``, tuple-``s`` delta encoding (difference sequence).

    The paper's motivating data model: replaces each value with its
    difference from the lane predecessor, ``order`` times.  Exactly
    inverted by :func:`delta_decode` under wraparound arithmetic.
    (Encoding is embarrassingly parallel — there is nothing for a scan
    engine to do, so no ``engine`` parameter here.)
    """
    return host_delta_encode(values, order=order, tuple_size=tuple_size)


def delta_decode(deltas, order: int = 1, tuple_size: int = 1, engine=None) -> np.ndarray:
    """Decode a difference sequence — i.e. the generalized prefix sum."""
    engine = resolve_engine(engine)
    if engine is not None:
        return engine.run(deltas, order=order, tuple_size=tuple_size).values
    return host_delta_decode(deltas, order=order, tuple_size=tuple_size)


def open_session(
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    dtype=None,
    engine=None,
    threads=None,
    float_mode=None,
):
    """Open a streaming scan session (chunked input, persistent carry).

    Returns a :class:`repro.stream.ScanSession`: call
    ``session.feed(chunk)`` repeatedly; the concatenated outputs are
    bit-identical to the one-shot scan of the concatenated inputs, for
    arbitrary chunk boundaries.  ``engine`` selects the inner engine
    the chunks are scanned on (same names/objects as everywhere else);
    ``threads`` (an int or ``"auto"``) additionally runs integer
    host-path chunk scans on the slab-parallel in-memory kernel —
    results are unchanged.  ``float_mode`` picks the session's float
    contract (``"exact"`` default, ``"compensated"``, ``"regrouped"``
    — see :class:`repro.stream.ScanSession`).

    >>> import numpy as np
    >>> session = open_session(order=2)
    >>> session.feed(np.array([1, 1], dtype=np.int32)).tolist()
    [1, 3]
    >>> session.feed(np.array([1, 1], dtype=np.int32)).tolist()
    [6, 10]
    """
    from repro.stream import ScanSession

    return ScanSession(
        op=op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        dtype=dtype,
        engine=engine,
        threads=threads,
        float_mode=float_mode,
    )


def scan_file(
    input_path,
    output_path,
    *,
    dtype="int32",
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    chunk_bytes: int = None,
    checkpoint=None,
    checkpoint_every: int = None,
    resume: bool = False,
    shards: int = None,
    workers: int = None,
    exact: bool = True,
    float_mode: str = None,
    threads=None,
    adaptive_chunks: bool = None,
    input_format: str = "auto",
    output_format: str = "raw",
    output_block_elements: int = None,
    output_codec_order: int = None,
):
    """Scan a binary file out of core (see :mod:`repro.stream`).

    Memory-maps ``input_path``, pipelines double-buffered chunks of
    ``chunk_bytes`` through a session on ``engine``, and writes the
    scanned stream to ``output_path`` — bit-identical to a one-shot
    scan but with peak memory bounded by a few chunks.  With
    ``checkpoint=path`` progress is persisted atomically every
    ``checkpoint_every`` chunks and an interrupted job continues under
    ``resume=True``.  Returns a :class:`repro.stream.StreamResult`.

    With ``shards=N`` (N > 1) the job runs on the sharded driver
    instead (:func:`repro.stream.scan_file_sharded`): the input is cut
    into N contiguous shards scanned concurrently by up to ``workers``
    threads, spliced, and folded; ``checkpoint`` then names a per-shard
    manifest and resume re-runs only unfinished shards.  Float inputs
    stay on the sequential exact path unless ``float_mode`` says
    otherwise: ``"compensated"`` shards floats deterministically
    through error-free carries (bit-identical for any shard count),
    ``"regrouped"`` (the legacy ``exact=False``) shards with carry-fold
    rounding.  Returns a :class:`repro.stream.ShardedResult`.

    ``threads`` opts chunk scans into the slab-parallel in-memory
    kernel (per session, or per shard task with the combined
    oversubscription guard — see :mod:`repro.kernels.threaded`);
    ``adaptive_chunks`` toggles measured-phase-seconds chunk sizing
    (default: on for sharded jobs, off for single-session jobs).

    ``input_format`` / ``output_format`` fuse compression into the
    pipeline: ``input_format="auto"`` (the default) sniffs blocked
    ``.samb`` containers — their dtype and count come from the
    container header — and ``output_format="blocked"`` writes the
    scanned stream back out compressed (single-session driver only;
    the sharded fold rewrites output in place, so ``shards > 1`` with
    blocked output is an error).  ``output_block_elements`` /
    ``output_codec_order`` tune the written container.

    With *none* of ``engine``/``shards``/``workers``/``chunk_bytes``/
    ``threads`` pinned (or ``engine="auto"``), the single-session vs
    sharded choice, the shard/worker counts, and the slab thread count
    are made by :mod:`repro.plan` from the file size, dtype, and
    machine; the decision lands in the result's
    ``counters.planner_*`` fields and the observed throughput is fed
    back into the planner's calibration store.  A job resumed from an
    existing checkpoint keeps the driver family the checkpoint was
    written by, whatever the planner would pick today.
    """
    from repro import stream

    if output_format not in ("raw", "blocked"):
        raise ValueError(
            f"output_format must be 'raw' or 'blocked', got {output_format!r}"
        )
    if output_format == "blocked" and shards is not None and shards > 1:
        raise ValueError(
            "blocked output is a single-session feature: the sharded fold "
            "rewrites the output in place, which a compressed container "
            "cannot support (drop shards= or output_format='blocked')"
        )
    format_kwargs = {"input_format": input_format}
    out_kwargs = dict(format_kwargs, output_format=output_format)
    if output_block_elements is not None:
        out_kwargs["output_block_elements"] = output_block_elements
    if output_codec_order is not None:
        out_kwargs["output_codec_order"] = output_codec_order

    if (
        _wants_planner(engine)
        and output_format == "raw"
        and not any(
            knob is not None
            for knob in (shards, workers, chunk_bytes, threads)
        )
    ):
        return _scan_file_planned(
            input_path,
            output_path,
            dtype=dtype,
            op=op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
            exact=exact,
            float_mode=float_mode,
            adaptive_chunks=adaptive_chunks,
            input_format=input_format,
        )
    if _wants_planner(engine):
        engine = None  # pinned knobs win; "auto" degrades to the host path

    if shards is not None and shards > 1:
        kwargs = {}
        if chunk_bytes is not None:
            kwargs["chunk_bytes"] = chunk_bytes
        if adaptive_chunks is not None:
            kwargs["adaptive_chunks"] = adaptive_chunks
        return stream.scan_file_sharded(
            input_path,
            output_path,
            dtype=dtype,
            op=op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            engine=engine,
            shards=shards,
            workers=workers,
            checkpoint=checkpoint,
            resume=resume,
            exact=exact,
            float_mode=float_mode,
            threads=threads,
            **format_kwargs,
            **kwargs,
        )

    kwargs = {}
    if chunk_bytes is not None:
        kwargs["chunk_bytes"] = chunk_bytes
    if checkpoint_every is not None:
        kwargs["checkpoint_every"] = checkpoint_every
    if adaptive_chunks is not None:
        kwargs["adaptive_chunks"] = adaptive_chunks
    return stream.scan_file(
        input_path,
        output_path,
        dtype=dtype,
        op=op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        engine=engine,
        checkpoint=checkpoint,
        resume=resume,
        threads=threads,
        float_mode=float_mode,
        **out_kwargs,
        **kwargs,
    )


def _scan_file_planned(
    input_path,
    output_path,
    *,
    dtype,
    op,
    order,
    tuple_size,
    inclusive,
    checkpoint,
    checkpoint_every,
    resume,
    exact,
    float_mode=None,
    adaptive_chunks=None,
    input_format="auto",
):
    """Flag-less :func:`scan_file`: plan the driver, dispatch, feed back.

    Resume pinning: a checkpoint written by a previous run fixes the
    driver *family* (single-session checkpoint vs per-shard manifest),
    because the planner's answer may legitimately change between runs
    — feedback arrives, machines differ — while a half-finished job
    must finish on the structure that started it.
    """
    from repro import stream
    from repro.plan import plan_file_scan

    if resume and checkpoint is not None and os.path.exists(checkpoint):
        pinned = _pinned_resume_strategy(checkpoint)
        if pinned is not None:
            kind, shard_count = pinned
            if kind == "sharded":
                return stream.scan_file_sharded(
                    input_path, output_path, dtype=dtype, op=op, order=order,
                    tuple_size=tuple_size, inclusive=inclusive,
                    shards=shard_count, checkpoint=checkpoint, resume=True,
                    exact=exact, float_mode=float_mode,
                    input_format=input_format,
                )
            kwargs = {}
            if checkpoint_every is not None:
                kwargs["checkpoint_every"] = checkpoint_every
            return stream.scan_file(
                input_path, output_path, dtype=dtype, op=op, order=order,
                tuple_size=tuple_size, inclusive=inclusive,
                checkpoint=checkpoint, resume=True, float_mode=float_mode,
                input_format=input_format, **kwargs,
            )

    plan = plan_file_scan(
        input_path,
        dtype,
        op=op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        input_format=input_format,
        float_mode=float_mode,
    )
    chosen = plan.chosen
    common = dict(
        dtype=dtype, op=op, order=order, tuple_size=tuple_size,
        inclusive=inclusive, checkpoint=checkpoint, resume=resume,
        input_format=input_format,
    )
    t0 = time.perf_counter()
    if chosen.strategy == "sharded":
        kwargs = dict(common)
        if adaptive_chunks is not None:
            kwargs["adaptive_chunks"] = adaptive_chunks
        result = stream.scan_file_sharded(
            input_path, output_path,
            shards=chosen.params.get("shards"),
            workers=chosen.params.get("workers"),
            exact=exact,
            float_mode=float_mode,
            **kwargs,
        )
    else:
        kwargs = dict(common)
        if checkpoint_every is not None:
            kwargs["checkpoint_every"] = checkpoint_every
        if adaptive_chunks is not None:
            kwargs["adaptive_chunks"] = adaptive_chunks
        if chosen.params.get("chunk_bytes"):
            kwargs["chunk_bytes"] = chosen.params["chunk_bytes"]
        result = stream.scan_file(
            input_path, output_path,
            threads=(
                chosen.params.get("threads")
                if chosen.strategy == "stream_threaded"
                else None
            ),
            float_mode=float_mode,
            **kwargs,
        )
    observed = plan.observe(time.perf_counter() - t0)
    counters = result.counters
    counters.planner_strategy = chosen.label
    if plan.cache_hit:
        counters.planner_cache_hits += 1
    else:
        counters.planner_cache_misses += 1
    if observed:
        counters.planner_feedback_updates += 1
    return result


def _pinned_resume_strategy(checkpoint):
    """Which driver family an existing checkpoint file belongs to:
    ``("stream", None)``, ``("sharded", num_shards)``, or ``None`` when
    the file is unreadable (the drivers then report the real error)."""
    import json

    from repro.stream.checkpoint import CHECKPOINT_KIND, MANIFEST_KIND

    try:
        with open(checkpoint, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        kind = payload.get("kind") if isinstance(payload, dict) else None
        if kind == MANIFEST_KIND:
            return ("sharded", max(2, len(payload.get("shards", [])) or 2))
        if kind == CHECKPOINT_KIND:
            return ("stream", None)
    except (OSError, ValueError):
        pass
    return None


def explain(
    values=None,
    *,
    input_path=None,
    dtype=None,
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    float_mode=None,
):
    """The planner's candidate table for a workload, without running it.

    Describe the workload by example (``values`` — an array), or by
    file (``input_path`` + ``dtype``).  Returns the
    :class:`repro.plan.Plan`; printing it shows every candidate
    strategy, its predicted cost, whether the prediction came from
    measured calibration or the analytic model, and why the winner won
    (the CLI form is ``python -m repro scan --explain``).

    >>> import numpy as np
    >>> plan = explain(np.ones(4, dtype=np.int64))
    >>> plan.chosen.strategy
    'serial'
    """
    from repro.plan import explain_scan, plan_file_scan

    if values is not None:
        return explain_scan(
            values, op=op, order=order, tuple_size=tuple_size,
            inclusive=inclusive, float_mode=float_mode,
        )
    if input_path is None:
        raise ValueError("explain needs either values or input_path (+ dtype)")
    return plan_file_scan(
        input_path,
        dtype if dtype is not None else "int32",
        op=op,
        order=order,
        tuple_size=tuple_size,
        inclusive=inclusive,
        float_mode=float_mode,
    )


def connect(address, **kwargs):
    """Connect to a running scan server (``python -m repro serve``).

    ``address`` is ``"host:port"``, ``"unix:/path"``, or a unix socket
    path.  Returns a :class:`repro.serve.ScanClient` — the served
    counterpart of :func:`open_session`: ``client.open(name, ...)``
    then ``client.feed(name, chunk)``; concatenated outputs are
    bit-identical to the one-shot scan, and survive server restarts
    when the server checkpoints.

    >>> client = connect("127.0.0.1:7777")   # doctest: +SKIP
    >>> client.open("ticks", op="add", dtype="int64")  # doctest: +SKIP
    """
    from repro.serve import ScanClient

    return ScanClient(address, **kwargs)
