"""Serial reference implementations (the correctness oracle).

Everything in this package is written for clarity, not speed: explicit
loops over Python integers with centralized wraparound.  Every parallel
engine in the reproduction — the fast host code, SAM on the GPU
simulator, and the baseline scans — is tested bit-for-bit against these
functions.
"""

from repro.reference.delta import (
    binomial_coefficient,
    delta_decode_serial,
    delta_encode_closed_form,
    delta_encode_serial,
    higher_order_weights,
)
from repro.reference.serial import (
    exclusive_scan_serial,
    higher_order_prefix_sum_serial,
    inclusive_scan_serial,
    prefix_sum_serial,
    tuple_prefix_sum_serial,
)

__all__ = [
    "binomial_coefficient",
    "delta_decode_serial",
    "delta_encode_closed_form",
    "delta_encode_serial",
    "exclusive_scan_serial",
    "higher_order_prefix_sum_serial",
    "higher_order_weights",
    "inclusive_scan_serial",
    "prefix_sum_serial",
    "tuple_prefix_sum_serial",
]
