"""Difference sequences (delta encoding) of arbitrary order and tuple size.

The paper's motivating application (Section 1): delta *encoding* replaces
each value with the difference from its predecessor (in the same tuple
lane); delta *decoding* is the prefix sum.  Order-``q`` encoding applies
first-order differencing ``q`` times; equivalently there is a closed
form using alternating binomial coefficients:

    out[k] = sum_{j=0..q} (-1)^j * C(q, j) * in[k - j]        ("missing"
    values past the start of the lane are taken to be zero)

Section 2.4 works the ``q = 2`` case: ``out[k] = in[k] - 2 in[k-1] + in[k-2]``.

Both formulations are implemented here and property-tested against each
other; the decoder is the order-``q`` prefix sum and is tested as the
exact inverse of the encoder under wraparound arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.ops import as_dtype
from repro.reference.serial import prefix_sum_serial


def binomial_coefficient(n: int, k: int) -> int:
    """Exact C(n, k) over Python integers (no overflow)."""
    if k < 0 or k > n:
        return 0
    k = min(k, n - k)
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result


def higher_order_weights(order: int) -> list:
    """The alternating binomial weights ``(-1)^j C(q, j)`` for j = 0..q.

    ``order = 1`` gives ``[1, -1]`` (plain differencing); ``order = 2``
    gives ``[1, -2, 1]`` — the paper's second-order example.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    return [(-1) ** j * binomial_coefficient(order, j) for j in range(order + 1)]


def _validate_1d(values) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {array.shape}")
    return array


def delta_encode_serial(values, order: int = 1, tuple_size: int = 1):
    """Order-``q``, tuple-``s`` delta encoding by iterated differencing.

    Each pass replaces ``in[k]`` with ``in[k] - in[k - s]`` (the first
    ``s`` elements are unchanged, i.e. differenced against zero).
    Fixed-width integer dtypes wrap, which is exactly what makes the
    prefix-sum decoder an exact inverse.
    """
    array = _validate_1d(values)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if tuple_size < 1:
        raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
    dtype = as_dtype(array.dtype)
    out = array.astype(dtype).copy()
    for _ in range(order):
        shifted = np.zeros_like(out)
        if len(out) > tuple_size:
            shifted[tuple_size:] = out[:-tuple_size]
        with np.errstate(over="ignore"):
            out = (out - shifted).astype(dtype)
    return out


def delta_encode_closed_form(values, order: int = 1, tuple_size: int = 1):
    """Order-``q`` delta encoding in a single pass via binomial weights.

    This is the "closed-form solutions for generating higher-order
    difference sequences in a single step and in parallel" of Section
    2.4.  It must agree exactly with :func:`delta_encode_serial`.
    """
    array = _validate_1d(values)
    dtype = as_dtype(array.dtype)
    weights = higher_order_weights(order)
    out = np.zeros_like(array, dtype=dtype)
    with np.errstate(over="ignore"):
        for j, weight in enumerate(weights):
            shift = j * tuple_size
            if shift >= len(array):
                break
            contribution = (array[: len(array) - shift].astype(dtype) * dtype.type(weight)).astype(dtype)
            if shift:
                out[shift:] = (out[shift:] + contribution).astype(dtype)
            else:
                out = (out + contribution).astype(dtype)
    return out


def delta_decode_serial(deltas, order: int = 1, tuple_size: int = 1):
    """Decode an order-``q``, tuple-``s`` difference sequence.

    Decoding *is* the generalized prefix sum — this is the equivalence
    the whole paper rests on.
    """
    return prefix_sum_serial(deltas, order=order, tuple_size=tuple_size)
