"""Serial prefix scans: the oracle every parallel engine is tested against.

The code mirrors the paper's definitional loop (Section 1):

    for (i = 1; i < n; i++) { A[i] = A[i] + A[i - 1]; }

generalized along the paper's three orthogonal axes:

* **scan** — an arbitrary associative operator instead of ``+``;
* **order** — the order-``q`` prefix sum is the ordinary prefix sum
  applied ``q`` times (Section 2.4);
* **tuple size** — ``s`` interleaved independent prefix sums, where the
  m-th sum runs over positions ``m + j*s`` (Section 1).

All three compose; :func:`prefix_sum_serial` exposes the full product.
"""

from __future__ import annotations

import numpy as np

from repro.ops import ADD, AssociativeOp, get_op


def _validate(values, order: int, tuple_size: int) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {array.shape}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if tuple_size < 1:
        raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
    return array


def inclusive_scan_serial(values, op: AssociativeOp = ADD, tuple_size: int = 1):
    """Inclusive scan with stride ``tuple_size``, one explicit pass.

    ``out[i] = op(out[i - tuple_size], in[i])`` for ``i >= tuple_size``;
    the first ``tuple_size`` elements are copied unchanged.
    """
    op = get_op(op)
    array = _validate(values, 1, tuple_size)
    dtype = op.check_dtype(array.dtype)
    out = array.astype(dtype).copy()
    for i in range(tuple_size, len(out)):
        out[i] = op.apply(out[i - tuple_size], out[i])
    return out


def exclusive_scan_serial(values, op: AssociativeOp = ADD, tuple_size: int = 1):
    """Exclusive scan: position ``i`` combines inputs strictly before ``i``
    in its tuple lane; the first element of each lane is the identity.
    """
    op = get_op(op)
    array = _validate(values, 1, tuple_size)
    dtype = op.check_dtype(array.dtype)
    out = np.empty_like(array, dtype=dtype)
    identity = op.identity(dtype)
    running = [identity] * tuple_size
    for i in range(len(array)):
        lane = i % tuple_size
        out[i] = running[lane]
        running[lane] = op.apply(np.asarray(running[lane]), array[i])
    return out


def prefix_sum_serial(
    values,
    order: int = 1,
    tuple_size: int = 1,
    op: AssociativeOp = ADD,
    inclusive: bool = True,
):
    """The fully generalized serial prefix scan.

    Applies the stride-``tuple_size`` scan ``order`` times.  ``order > 1``
    with a non-invertible operator is well-defined (it is just iteration)
    but only ``ADD`` corresponds to decoding an order-``q`` difference
    sequence.

    An exclusive variant with ``order > 1`` applies inclusive passes for
    the first ``order - 1`` iterations and an exclusive pass last, which
    matches "shift the final decoded sequence right by one".
    """
    op = get_op(op)
    array = _validate(values, order, tuple_size)
    out = array
    for iteration in range(order):
        last = iteration == order - 1
        if inclusive or not last:
            out = inclusive_scan_serial(out, op=op, tuple_size=tuple_size)
        else:
            out = exclusive_scan_serial(out, op=op, tuple_size=tuple_size)
    return out


def tuple_prefix_sum_serial(values, tuple_size: int, op: AssociativeOp = ADD):
    """Tuple-based prefix sum via the paper's reorder/scan/unreorder recipe.

    This is the *alternative* formulation from Section 2.3 — group the
    elements by tuple lane, scan each group independently, and undo the
    grouping.  It exists as an independently-derived oracle for the
    strided formulation: both must agree on every input, including
    lengths that are not a multiple of ``tuple_size``.
    """
    op = get_op(op)
    array = _validate(values, 1, tuple_size)
    out = np.empty_like(array)
    for lane in range(tuple_size):
        lane_values = array[lane::tuple_size]
        out[lane::tuple_size] = inclusive_scan_serial(lane_values, op=op)
    return out


def higher_order_prefix_sum_serial(values, order: int, op: AssociativeOp = ADD):
    """Order-``q`` prefix scan by explicit iteration (Section 2.4).

    Kept separate from :func:`prefix_sum_serial` so property tests can
    cross-check two independently written loops.
    """
    op = get_op(op)
    array = _validate(values, order, 1)
    out = array.astype(op.check_dtype(array.dtype)).copy()
    for _ in range(order):
        for i in range(1, len(out)):
            out[i] = op.apply(out[i - 1], out[i])
    return out
