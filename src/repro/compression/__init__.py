"""The paper's motivating application: delta-based data compression.

Section 1 motivates higher-order and tuple-based prefix sums with data
(de)compression: a *model* (delta encoding of some order, lane-aware
for tuple data) turns the input into near-zero residuals, and a *coder*
shrinks the residuals.  Decompression must invert the coder and then
the model — and inverting an order-``q``, tuple-``s`` delta model *is*
the generalized prefix sum, which is what makes it parallelizable.

This package provides the full pipeline:

* :mod:`repro.compression.zigzag` — the coder: zigzag mapping (small
  magnitudes -> small unsigned values) + LEB128 varints.
* :mod:`repro.compression.codec` — :class:`DeltaCodec`: a container
  format with a header (dtype, length, order, tuple size), order
  auto-selection, and a pluggable decode engine so the parallel
  decoder (SAM on the simulator, or the fast host engine) can be
  swapped in for the serial one.
* :mod:`repro.compression.blocked` — the blocked container (per-block
  random access; block offsets are an exclusive prefix sum over the
  index) with CRC-checked integrity.
* :mod:`repro.compression.stream` — out-of-core access to blocked
  containers: :class:`BlockedFileReader` (range decode straight off
  disk) and :class:`BlockedStreamWriter` (incremental, resumable
  writes), which is what the stream drivers fuse their scans with.
"""

from repro.compression.blocked import BlockedBlob, BlockedDeltaCodec
from repro.compression.codec import (
    CodecError,
    CompressedBlob,
    DeltaCodec,
    choose_model,
)
from repro.compression.stream import (
    BlockedFileReader,
    BlockedIndex,
    BlockedStreamWriter,
    is_blocked_file,
    read_index,
)
from repro.compression.zigzag import (
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "BlockedBlob",
    "BlockedDeltaCodec",
    "BlockedFileReader",
    "BlockedIndex",
    "BlockedStreamWriter",
    "CodecError",
    "CompressedBlob",
    "DeltaCodec",
    "choose_model",
    "is_blocked_file",
    "read_index",
    "varint_decode",
    "varint_encode",
    "zigzag_decode",
    "zigzag_encode",
]
