"""The paper's motivating application: delta-based data compression.

Section 1 motivates higher-order and tuple-based prefix sums with data
(de)compression: a *model* (delta encoding of some order, lane-aware
for tuple data) turns the input into near-zero residuals, and a *coder*
shrinks the residuals.  Decompression must invert the coder and then
the model — and inverting an order-``q``, tuple-``s`` delta model *is*
the generalized prefix sum, which is what makes it parallelizable.

This package provides the full pipeline:

* :mod:`repro.compression.zigzag` — the coder: zigzag mapping (small
  magnitudes -> small unsigned values) + LEB128 varints.
* :mod:`repro.compression.codec` — :class:`DeltaCodec`: a container
  format with a header (dtype, length, order, tuple size), order
  auto-selection, and a pluggable decode engine so the parallel
  decoder (SAM on the simulator, or the fast host engine) can be
  swapped in for the serial one.
"""

from repro.compression.blocked import BlockedBlob, BlockedDeltaCodec
from repro.compression.codec import (
    CodecError,
    CompressedBlob,
    DeltaCodec,
    choose_model,
)
from repro.compression.zigzag import (
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "BlockedBlob",
    "BlockedDeltaCodec",
    "CodecError",
    "CompressedBlob",
    "DeltaCodec",
    "choose_model",
    "varint_decode",
    "varint_encode",
    "zigzag_decode",
    "zigzag_encode",
]
