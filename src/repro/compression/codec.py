"""The delta codec: model selection, container format, parallel decode.

Compression pipeline (Section 1's architecture, concretely):

1. **Model** — order-``q``, tuple-``s`` delta encoding
   (:func:`repro.api.delta_encode`).  Encoding is embarrassingly
   parallel; :func:`choose_model` picks the (order, tuple size) whose
   residuals cost the fewest coder bytes, the way an install-time
   profile would.
2. **Coder** — zigzag + LEB128 varints over the residuals.

Decompression inverts the coder, then runs the generalized prefix sum.
The prefix-sum engine is pluggable: the serial reference, the fast host
engine (default), or SAM on the GPU simulator — all bit-identical,
which the round-trip tests verify.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.compression.zigzag import (
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.core.host import host_delta_encode, host_prefix_sum

#: Container magic ("SAM delta"), bumped on format changes.
MAGIC = b"SAMD"
#: v2 appends CRC32 checksums (payload, then header) so corruption is
#: detected instead of silently decoding to wrong values.
VERSION = 2

_DTYPE_CODES = {np.dtype(np.int32): 1, np.dtype(np.int64): 2}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}

#: Header: magic, version, dtype code, order, tuple size, element
#: count, payload CRC32, header CRC32 (over all preceding bytes).
_HEADER = struct.Struct("<4sBBBBqII")


class CodecError(ValueError):
    """Malformed container or unsupported payload."""


def pack_header(dtype, order: int, tuple_size: int, count: int,
                payload_crc: int) -> bytes:
    """Pack a v2 container header, computing the trailing header CRC."""
    base = _HEADER.pack(
        MAGIC, VERSION, _DTYPE_CODES[np.dtype(dtype)], order, tuple_size,
        count, payload_crc, 0,
    )
    body = base[:-4]
    return body + struct.pack("<I", zlib.crc32(body))


@dataclass
class CompressedBlob:
    """A compressed buffer plus its parsed header (for inspection)."""

    data: bytes
    order: int
    tuple_size: int
    dtype: np.dtype
    count: int
    payload_crc: int = 0

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def ratio(self) -> float:
        """Compression ratio (original bytes / compressed bytes)."""
        original = self.count * self.dtype.itemsize
        return original / max(1, len(self.data))


def residual_cost_bytes(values: np.ndarray, order: int, tuple_size: int) -> int:
    """Coder bytes the residuals of this model would need.

    The varint length of a zigzagged residual is a pure function of its
    magnitude, so this evaluates a model without materializing the
    byte stream.
    """
    residuals = host_delta_encode(values, order=order, tuple_size=tuple_size)
    z = zigzag_encode(residuals).astype(np.uint64)
    nbytes = np.maximum(1, (_bit_length(z) + 6) // 7)
    return int(nbytes.sum())


def _bit_length(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    length = np.zeros(v.shape, dtype=np.int64)
    shift = 32
    while shift:
        mask = (v >> np.uint64(shift)) != 0
        length = np.where(mask, length + shift, length)
        v = np.where(mask, v >> np.uint64(shift), v)
        shift //= 2
    return length + (v != 0)


def choose_model(
    values,
    orders: Iterable[int] = (1, 2, 3),
    tuple_sizes: Iterable[int] = (1,),
) -> Tuple[int, int]:
    """Pick the (order, tuple_size) minimizing the coder's byte cost."""
    array = np.asarray(values)
    best: Optional[Tuple[int, int, int]] = None
    for tuple_size in tuple_sizes:
        for order in orders:
            cost = residual_cost_bytes(array, order, tuple_size)
            key = (cost, order, tuple_size)
            if best is None or key < best:
                best = key
    assert best is not None, "empty model search space"
    return best[1], best[2]


class DeltaCodec:
    """Order-``q``, tuple-``s`` delta compressor with pluggable decoder.

    Parameters
    ----------
    decode_engine:
        Object with ``run(values, order=..., tuple_size=...)`` returning
        a result with ``.values`` (e.g. :class:`repro.core.SamScan`), or
        ``None`` for the fast vectorized host decoder.
    """

    def __init__(self, decode_engine=None):
        self.decode_engine = decode_engine

    def compress(
        self,
        values,
        order: Optional[int] = None,
        tuple_size: int = 1,
    ) -> CompressedBlob:
        """Compress ``values``; ``order=None`` auto-selects (1..3)."""
        array = np.asarray(values)
        if array.ndim != 1:
            raise CodecError(f"expected a 1-D array, got shape {array.shape}")
        dtype = np.dtype(array.dtype)
        if dtype not in _DTYPE_CODES:
            raise CodecError(f"unsupported dtype {dtype}; int32/int64 only")
        if tuple_size < 1 or tuple_size > 255:
            raise CodecError(f"tuple_size must be in [1, 255], got {tuple_size}")
        if order is None:
            order, _ = choose_model(array, tuple_sizes=(tuple_size,))
        if order < 1 or order > 255:
            raise CodecError(f"order must be in [1, 255], got {order}")

        residuals = host_delta_encode(array, order=order, tuple_size=tuple_size)
        payload = varint_encode(zigzag_encode(residuals))
        payload_crc = zlib.crc32(payload)
        header = pack_header(
            dtype, order, tuple_size, len(array), payload_crc
        )
        return CompressedBlob(
            data=header + payload,
            order=order,
            tuple_size=tuple_size,
            dtype=dtype,
            count=len(array),
            payload_crc=payload_crc,
        )

    def parse_header(self, data: bytes) -> CompressedBlob:
        """Validate and parse a container header (no payload decode)."""
        if len(data) >= 4 and data[:4] != MAGIC:
            raise CodecError(f"bad magic {bytes(data[:4])!r}")
        if len(data) < _HEADER.size:
            raise CodecError("buffer shorter than the container header")
        (
            magic, version, dtype_code, order, tuple_size, count,
            payload_crc, header_crc,
        ) = _HEADER.unpack(data[: _HEADER.size])
        if magic != MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if version != VERSION:
            raise CodecError(f"unsupported version {version}")
        if zlib.crc32(bytes(data[: _HEADER.size - 4])) != header_crc:
            raise CodecError("header checksum mismatch (corrupt container)")
        if dtype_code not in _CODE_DTYPES:
            raise CodecError(f"unknown dtype code {dtype_code}")
        if count < 0:
            raise CodecError(f"negative element count {count}")
        if order < 1 or tuple_size < 1:
            raise CodecError("order and tuple_size must be >= 1")
        return CompressedBlob(
            data=data,
            order=order,
            tuple_size=tuple_size,
            dtype=_CODE_DTYPES[dtype_code],
            count=count,
            payload_crc=payload_crc,
        )

    def decompress(self, blob) -> np.ndarray:
        """Decode a container back to the original array, exactly."""
        data = blob.data if isinstance(blob, CompressedBlob) else bytes(blob)
        parsed = self.parse_header(data)
        unsigned_dtype = np.uint32 if parsed.dtype.itemsize == 4 else np.uint64
        payload = data[_HEADER.size :]
        if zlib.crc32(bytes(payload)) != parsed.payload_crc:
            raise CodecError(
                "payload checksum mismatch (truncated or corrupt payload)"
            )
        try:
            encoded = varint_decode(payload, parsed.count, dtype=unsigned_dtype)
        except CodecError:
            raise
        except ValueError as exc:
            raise CodecError(f"corrupt varint payload: {exc}") from exc
        residuals = zigzag_decode(encoded).astype(parsed.dtype)
        if self.decode_engine is None:
            return host_prefix_sum(
                residuals, order=parsed.order, tuple_size=parsed.tuple_size
            )
        result = self.decode_engine.run(
            residuals, order=parsed.order, tuple_size=parsed.tuple_size
        )
        return result.values
