"""Streaming access to blocked (.samb) containers on disk.

The in-memory :class:`~repro.compression.blocked.BlockedDeltaCodec`
round-trips whole containers; the stream layer needs the same format
without ever materializing it.  Two halves:

:class:`BlockedFileReader`
    Parses the header and index up front (a few bytes per block), then
    serves random-access element ranges by decoding only the covering
    blocks — block payload offsets are an exclusive prefix sum over the
    index, so any range is one seek away.  Shards and resumed jobs both
    lean on this.

:class:`BlockedStreamWriter`
    Writes a container incrementally while the element count is known
    up front (a scan's output length equals its input length): the
    header+index region is reserved, payloads append sequentially, and
    index entries backfill as blocks complete.  The header — whose CRC
    covers the whole index — is written *last*, by :meth:`finalize`, so
    a crashed writer leaves a file that fails validation cleanly rather
    than one that parses to wrong values.  :meth:`state` /
    :meth:`resume` round-trip the write cursor through checkpoints;
    per-block encoding is deterministic, so a resumed job re-encodes
    its tail and lands bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.compression.blocked import (
    HEADER_BYTES,
    INDEX_ENTRY_BYTES,
    MAGIC,
    align_block_elements,
    decode_block_payload,
    encode_block,
    pack_header,
    pack_index_entry,
    parse_header_bytes,
    parse_index_bytes,
)
from repro.compression.codec import CodecError

__all__ = [
    "BlockedFileReader",
    "BlockedIndex",
    "BlockedStreamWriter",
    "is_blocked_file",
    "read_index",
]


def is_blocked_file(path) -> bool:
    """True when ``path`` starts with the blocked-container magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


@dataclass
class BlockedIndex:
    """The parsed header+index of a blocked container — cheap to share
    across threads so each reader re-opens the file but not the
    metadata."""

    dtype: np.dtype
    tuple_size: int
    block_elements: int
    count: int
    payload_sizes: List[int]
    orders: List[int]
    payload_crcs: List[int]
    container_bytes: int

    @property
    def num_blocks(self) -> int:
        return len(self.payload_sizes)

    def block_offsets(self) -> np.ndarray:
        sizes = np.asarray(self.payload_sizes, dtype=np.int64)
        base = HEADER_BYTES + INDEX_ENTRY_BYTES * self.num_blocks
        return base + np.concatenate([[0], np.cumsum(sizes)[:-1]])


def read_index(path) -> BlockedIndex:
    """Parse and validate a container's header+index from disk."""
    with open(path, "rb") as fh:
        header = fh.read(HEADER_BYTES)
        fields = parse_header_bytes(header)
        num_blocks = fields["num_blocks"]
        index = fh.read(INDEX_ENTRY_BYTES * num_blocks)
        sizes, orders, crcs = parse_index_bytes(
            index, num_blocks, fields["index_crc"]
        )
        fh.seek(0, os.SEEK_END)
        file_bytes = fh.tell()
    expected = HEADER_BYTES + INDEX_ENTRY_BYTES * num_blocks + sum(sizes)
    if file_bytes != expected:
        raise CodecError(
            f"container is {file_bytes} bytes, index implies {expected}"
        )
    return BlockedIndex(
        dtype=fields["dtype"],
        tuple_size=fields["tuple_size"],
        block_elements=fields["block_elements"],
        count=fields["count"],
        payload_sizes=sizes,
        orders=orders,
        payload_crcs=crcs,
        container_bytes=file_bytes,
    )


class BlockedFileReader:
    """Random-access reader over a blocked container file.

    ``index`` lets callers share one parsed :class:`BlockedIndex`
    across several readers (e.g. one per shard task) instead of
    re-validating the metadata per open.  ``payload_bytes_read`` and
    ``decode_seconds`` accumulate across calls so drivers can report
    compressed IO and decode time separately from raw IO.
    """

    def __init__(self, path, decode_engine=None, index: Optional[BlockedIndex] = None):
        self.path = os.fspath(path)
        self.index = index if index is not None else read_index(self.path)
        self.decode_engine = decode_engine
        self._offsets = self.index.block_offsets()
        self._fh = open(self.path, "rb")
        self.payload_bytes_read = 0
        self.decode_seconds = 0.0
        # One-block decode cache: chunk budgets smaller than a block
        # would otherwise re-read and re-decode the same block once per
        # chunk (and boundary blocks get hit by two adjacent chunks).
        self._cache_block = -1
        self._cache_values: Optional[np.ndarray] = None

    # -- metadata passthrough -------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.index.dtype)

    @property
    def count(self) -> int:
        return self.index.count

    @property
    def block_elements(self) -> int:
        return self.index.block_elements

    @property
    def num_blocks(self) -> int:
        return self.index.num_blocks

    @property
    def container_bytes(self) -> int:
        return self.index.container_bytes

    def ratio(self) -> float:
        return (self.count * self.dtype.itemsize) / max(1, self.container_bytes)

    # -- access ----------------------------------------------------------

    def _block_count(self, block: int) -> int:
        return min(
            self.index.block_elements,
            self.index.count - block * self.index.block_elements,
        )

    def _decode(self, payload: bytes, block: int) -> np.ndarray:
        start = time.perf_counter()
        values = decode_block_payload(
            payload,
            count=self._block_count(block),
            dtype=self.index.dtype,
            order=self.index.orders[block],
            tuple_size=self.index.tuple_size,
            payload_crc=self.index.payload_crcs[block],
            block_index=block,
            decode_engine=self.decode_engine,
        )
        self.decode_seconds += time.perf_counter() - start
        return values

    def _block_values(self, block: int) -> np.ndarray:
        """Decoded values of one block through the one-block cache.

        The returned array is the cache's own storage — callers must
        copy before mutating (:meth:`read_block` / :meth:`read_range`
        do)."""
        if block == self._cache_block:
            return self._cache_values
        self._fh.seek(int(self._offsets[block]))
        size = self.index.payload_sizes[block]
        payload = self._fh.read(size)
        if len(payload) != size:
            raise CodecError("container truncated under reader")
        self.payload_bytes_read += size
        values = self._decode(payload, block)
        self._cache_block = block
        self._cache_values = values
        return values

    def read_block(self, block: int) -> np.ndarray:
        """Decode one block (random access)."""
        if not 0 <= block < self.num_blocks:
            raise CodecError(
                f"block index {block} out of range [0, {self.num_blocks})"
            )
        return self._block_values(block).copy()

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        """Decode elements ``[lo, hi)`` — per-block reads (sequential
        for a cold range) through the cache, then one stitch.  Always
        returns memory the caller owns and may scan in place."""
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self.count:
            raise CodecError(
                f"element range [{lo}, {hi}) outside [0, {self.count})"
            )
        if lo == hi:
            return np.zeros(0, dtype=self.dtype)
        be = self.index.block_elements
        b_lo, b_hi = lo // be, -(-hi // be)
        pieces = [self._block_values(block) for block in range(b_lo, b_hi)]
        if len(pieces) == 1:
            return pieces[0][lo - b_lo * be : hi - b_lo * be].copy()
        # concatenate copies, so the view below never aliases the cache
        values = np.concatenate(pieces)
        return values[lo - b_lo * be : hi - b_lo * be]

    def close(self):
        self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class BlockedStreamWriter:
    """Incremental blocked-container writer for a known element count.

    Payloads stream sequentially after a reserved header+index region;
    completed index entries backfill on :meth:`sync` (before the
    driver's checkpoints) and the header lands only in
    :meth:`finalize`.  ``state`` captures the write cursor —
    ``(blocks_written, payload_pos)`` — which with deterministic
    per-block encoding is everything :meth:`resume` needs to continue
    bit-identically after a crash, even a SIGKILL mid-write: entries
    past the cursor are simply re-encoded and overwritten.
    """

    def __init__(
        self,
        path,
        *,
        dtype,
        total_count: int,
        tuple_size: int = 1,
        block_elements: int = 65536,
        order: Optional[int] = None,
        _resume: Optional[Tuple[int, int]] = None,
    ):
        self.path = os.fspath(path)
        self.dtype = np.dtype(dtype)
        self.total_count = int(total_count)
        if not 1 <= tuple_size <= 255:
            raise CodecError(f"tuple_size must be in [1, 255], got {tuple_size}")
        self.tuple_size = tuple_size
        self.block_elements = align_block_elements(int(block_elements), tuple_size)
        self.order = order
        self.num_blocks = (
            -(-self.total_count // self.block_elements) if self.total_count else 0
        )
        self._data_offset = HEADER_BYTES + INDEX_ENTRY_BYTES * self.num_blocks
        self._entries: List[bytes] = []  # packed index entries, in order
        self._entries_synced = 0
        self._pending: List[np.ndarray] = []
        self._pending_elements = 0
        self._elements_fed = 0
        self.encode_seconds = 0.0
        self._finalized = False

        if _resume is None:
            self._fh = open(self.path, "wb")
            self._fh.write(b"\x00" * self._data_offset)
            self._payload_pos = self._data_offset
        else:
            blocks_written, payload_pos = _resume
            if not 0 <= blocks_written <= self.num_blocks:
                raise CodecError(
                    f"resume cursor {blocks_written} outside "
                    f"[0, {self.num_blocks}] blocks"
                )
            if payload_pos < self._data_offset:
                raise CodecError("resume payload position inside the index")
            if os.path.getsize(self.path) < payload_pos:
                raise CodecError(
                    "output container shorter than its resume cursor"
                )
            self._fh = open(self.path, "r+b")
            # Re-read the entries persisted before the checkpoint; the
            # rest of the index region is stale and will be rewritten.
            self._fh.seek(HEADER_BYTES)
            index = self._fh.read(INDEX_ENTRY_BYTES * blocks_written)
            if len(index) != INDEX_ENTRY_BYTES * blocks_written:
                raise CodecError("output container index truncated")
            for i in range(blocks_written):
                self._entries.append(
                    index[i * INDEX_ENTRY_BYTES : (i + 1) * INDEX_ENTRY_BYTES]
                )
            self._entries_synced = blocks_written
            self._fh.truncate(payload_pos)
            self._payload_pos = payload_pos
            self._fh.seek(payload_pos)
            self._elements_fed = min(
                blocks_written * self.block_elements, self.total_count
            )

    # -- accounting ------------------------------------------------------

    @property
    def blocks_written(self) -> int:
        return len(self._entries)

    @property
    def data_offset(self) -> int:
        """Bytes reserved for the header + index ahead of the payloads."""
        return self._data_offset

    @property
    def elements_written(self) -> int:
        """Elements durably encoded into blocks (excludes the pending
        tail buffer)."""
        done = self.blocks_written * self.block_elements
        return min(done, self.total_count)

    @property
    def container_bytes(self) -> int:
        return self._payload_pos

    def state(self) -> dict:
        """Checkpointable write cursor.  Only valid while the pending
        buffer is empty — the stream driver aligns its chunks to the
        writer's block size precisely so checkpoints land here."""
        if self._pending_elements:
            raise CodecError(
                f"writer has {self._pending_elements} buffered elements; "
                "checkpoints must land on block boundaries"
            )
        return {
            "blocks_written": self.blocks_written,
            "payload_pos": self._payload_pos,
        }

    @classmethod
    def resume(cls, path, *, dtype, total_count, state: dict,
               tuple_size: int = 1, block_elements: int = 65536,
               order: Optional[int] = None) -> "BlockedStreamWriter":
        return cls(
            path,
            dtype=dtype,
            total_count=total_count,
            tuple_size=tuple_size,
            block_elements=block_elements,
            order=order,
            _resume=(int(state["blocks_written"]), int(state["payload_pos"])),
        )

    # -- writing ---------------------------------------------------------

    def _write_block(self, block: np.ndarray):
        index = self.blocks_written
        if index >= self.num_blocks:
            raise CodecError("more elements fed than total_count")
        start = time.perf_counter()
        payload, order = encode_block(block, self.order, self.tuple_size)
        self.encode_seconds += time.perf_counter() - start
        self._fh.write(payload)
        self._payload_pos += len(payload)
        self._entries.append(
            pack_index_entry(len(payload), order, zlib.crc32(payload))
        )

    def feed(self, values: np.ndarray):
        """Append scanned elements; full blocks are encoded and written
        immediately (while the chunk is hot), the tail is buffered."""
        values = np.asarray(values)
        if values.dtype != self.dtype:
            raise CodecError(
                f"writer expects {self.dtype}, got {values.dtype}"
            )
        if values.size == 0:
            return
        self._elements_fed += int(values.size)
        if self._elements_fed > self.total_count:
            raise CodecError(
                f"fed {self._elements_fed} elements, expected {self.total_count}"
            )
        self._pending.append(values)
        self._pending_elements += values.size
        if self._pending_elements < self.block_elements:
            return
        buffered = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending)
        )
        full = buffered.size - buffered.size % self.block_elements
        for start in range(0, full, self.block_elements):
            self._write_block(buffered[start : start + self.block_elements])
        tail = buffered[full:]
        self._pending = [tail] if tail.size else []
        self._pending_elements = int(tail.size)

    def sync(self):
        """Persist completed index entries and fsync — called before
        each driver checkpoint so ``state()`` is durable."""
        if self._entries_synced < len(self._entries):
            self._fh.flush()
            pos = self._fh.tell()
            self._fh.seek(
                HEADER_BYTES + INDEX_ENTRY_BYTES * self._entries_synced
            )
            self._fh.write(b"".join(self._entries[self._entries_synced :]))
            self._entries_synced = len(self._entries)
            self._fh.seek(pos)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def finalize(self):
        """Flush the tail block, backfill the index, and write the
        header (last, so partial files never validate)."""
        if self._finalized:
            return
        if self._pending_elements:
            tail = (
                self._pending[0]
                if len(self._pending) == 1
                else np.concatenate(self._pending)
            )
            self._write_block(tail)
            self._pending = []
            self._pending_elements = 0
        if self._elements_fed != self.total_count:
            raise CodecError(
                f"finalize after {self._elements_fed} of "
                f"{self.total_count} elements"
            )
        if self.blocks_written != self.num_blocks:
            raise CodecError(
                f"finalize with {self.blocks_written} of "
                f"{self.num_blocks} blocks written"
            )
        index = b"".join(self._entries)
        self._fh.flush()
        self._fh.seek(HEADER_BYTES)
        self._fh.write(index)
        self._fh.seek(0)
        self._fh.write(
            pack_header(
                self.dtype, self.tuple_size, self.block_elements,
                self.total_count, self.num_blocks, zlib.crc32(index),
            )
        )
        self._entries_synced = len(self._entries)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._finalized = True

    def close(self):
        if not self._finalized and not self._fh.closed:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is None:
            self.finalize()
        else:
            self.close()
        return False
