"""Blocked container format: random access and parallel decompression.

The single-blob :class:`~repro.compression.codec.DeltaCodec` needs the
whole residual stream before the prefix sum can run.  Real deployments
(and the paper's massively-parallel decompression motivation) want the
opposite: many independently-decodable blocks so that thousands of
threads can decompress concurrently and applications can seek.

Layout::

    header:  magic "SAMB" | version | dtype | tuple_size | block_elements
             | total count | num_blocks
    index:   num_blocks x (payload_bytes, order)      -- fixed width
    blocks:  concatenated single-block payloads (zigzag+varint residuals)

Each block's delta model restarts (its first lane values are encoded
against zero), so any block can be decoded knowing only the header and
its payload — block byte offsets are, fittingly, an exclusive prefix
sum over the index's payload sizes.  Per-block orders are auto-selected
independently, which also adapts to signals whose character changes
over time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.compression.codec import CodecError, choose_model
from repro.compression.zigzag import (
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.core.host import host_delta_encode, host_prefix_sum

MAGIC = b"SAMB"
VERSION = 1

_DTYPE_CODES = {np.dtype(np.int32): 1, np.dtype(np.int64): 2}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}

_HEADER = struct.Struct("<4sBBBxIqI")
_INDEX_ENTRY = struct.Struct("<IB3x")


@dataclass
class BlockedBlob:
    """A blocked container plus its parsed metadata."""

    data: bytes
    dtype: np.dtype
    tuple_size: int
    block_elements: int
    count: int
    payload_sizes: List[int]
    orders: List[int]

    @property
    def num_blocks(self) -> int:
        return len(self.payload_sizes)

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def ratio(self) -> float:
        original = self.count * self.dtype.itemsize
        return original / max(1, len(self.data))

    def block_offsets(self) -> np.ndarray:
        """Byte offset of each block's payload — an exclusive prefix sum."""
        sizes = np.asarray(self.payload_sizes, dtype=np.int64)
        base = _HEADER.size + _INDEX_ENTRY.size * self.num_blocks
        return base + np.concatenate([[0], np.cumsum(sizes)[:-1]])


class BlockedDeltaCodec:
    """Chunked delta codec with per-block model selection.

    ``decode_engine`` works like :class:`DeltaCodec`'s: any object with
    ``run(values, order=..., tuple_size=...)``.
    """

    def __init__(self, block_elements: int = 65536, decode_engine=None):
        if block_elements < 1:
            raise CodecError(f"block_elements must be >= 1, got {block_elements}")
        self.block_elements = block_elements
        self.decode_engine = decode_engine

    # -- compression -----------------------------------------------------

    def compress(
        self,
        values,
        order: Optional[int] = None,
        tuple_size: int = 1,
    ) -> BlockedBlob:
        """Compress ``values``; ``order=None`` auto-selects per block."""
        array = np.asarray(values)
        if array.ndim != 1:
            raise CodecError(f"expected a 1-D array, got shape {array.shape}")
        dtype = np.dtype(array.dtype)
        if dtype not in _DTYPE_CODES:
            raise CodecError(f"unsupported dtype {dtype}; int32/int64 only")
        if not 1 <= tuple_size <= 255:
            raise CodecError(f"tuple_size must be in [1, 255], got {tuple_size}")
        # Align block boundaries to the tuple size so every block's
        # lane phase starts at lane 0 and decodes independently.
        block_elements = self.block_elements - self.block_elements % tuple_size
        block_elements = max(tuple_size, block_elements)

        payloads: List[bytes] = []
        orders: List[int] = []
        for start in range(0, len(array), block_elements) or [0]:
            block = array[start : start + block_elements]
            if block.size == 0:
                continue
            block_order = order
            if block_order is None:
                block_order, _ = choose_model(block, tuple_sizes=(tuple_size,))
            residuals = host_delta_encode(
                block, order=block_order, tuple_size=tuple_size
            )
            payloads.append(varint_encode(zigzag_encode(residuals)))
            orders.append(block_order)

        header = _HEADER.pack(
            MAGIC,
            VERSION,
            _DTYPE_CODES[dtype],
            tuple_size,
            block_elements,
            len(array),
            len(payloads),
        )
        index = b"".join(
            _INDEX_ENTRY.pack(len(payload), block_order)
            for payload, block_order in zip(payloads, orders)
        )
        return BlockedBlob(
            data=header + index + b"".join(payloads),
            dtype=dtype,
            tuple_size=tuple_size,
            block_elements=block_elements,
            count=len(array),
            payload_sizes=[len(p) for p in payloads],
            orders=orders,
        )

    # -- decompression ---------------------------------------------------

    def parse(self, data: bytes) -> BlockedBlob:
        """Validate and parse a container (headers + index, no payload)."""
        if len(data) < _HEADER.size:
            raise CodecError("buffer shorter than the container header")
        magic, version, dtype_code, tuple_size, block_elements, count, num_blocks = (
            _HEADER.unpack(data[: _HEADER.size])
        )
        if magic != MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if version != VERSION:
            raise CodecError(f"unsupported version {version}")
        if dtype_code not in _CODE_DTYPES:
            raise CodecError(f"unknown dtype code {dtype_code}")
        if tuple_size < 1 or block_elements < 1:
            raise CodecError("corrupt header fields")
        index_end = _HEADER.size + _INDEX_ENTRY.size * num_blocks
        if len(data) < index_end:
            raise CodecError("truncated block index")
        payload_sizes = []
        orders = []
        for i in range(num_blocks):
            off = _HEADER.size + i * _INDEX_ENTRY.size
            size, block_order = _INDEX_ENTRY.unpack(data[off : off + _INDEX_ENTRY.size])
            payload_sizes.append(size)
            orders.append(block_order)
        blob = BlockedBlob(
            data=data,
            dtype=_CODE_DTYPES[dtype_code],
            tuple_size=tuple_size,
            block_elements=block_elements,
            count=count,
            payload_sizes=payload_sizes,
            orders=orders,
        )
        if num_blocks and blob.block_offsets()[-1] + payload_sizes[-1] != len(data):
            raise CodecError("payload length does not match the index")
        return blob

    def _decode_payload(self, blob: BlockedBlob, index: int) -> np.ndarray:
        offsets = blob.block_offsets()
        start = int(offsets[index])
        payload = blob.data[start : start + blob.payload_sizes[index]]
        count = min(
            blob.block_elements, blob.count - index * blob.block_elements
        )
        unsigned = np.uint32 if blob.dtype.itemsize == 4 else np.uint64
        encoded = varint_decode(payload, count, dtype=unsigned)
        residuals = zigzag_decode(encoded).astype(blob.dtype)
        if self.decode_engine is None:
            return host_prefix_sum(
                residuals, order=blob.orders[index], tuple_size=blob.tuple_size
            )
        return self.decode_engine.run(
            residuals, order=blob.orders[index], tuple_size=blob.tuple_size
        ).values

    def decompress_block(self, blob, index: int) -> np.ndarray:
        """Random access: decode one block without touching the others."""
        parsed = blob if isinstance(blob, BlockedBlob) else self.parse(bytes(blob))
        if not 0 <= index < parsed.num_blocks:
            raise CodecError(
                f"block index {index} out of range [0, {parsed.num_blocks})"
            )
        return self._decode_payload(parsed, index)

    def decompress(self, blob) -> np.ndarray:
        """Decode the whole container (blocks are independent — this
        loop is what a GPU would run one block per thread block)."""
        parsed = blob if isinstance(blob, BlockedBlob) else self.parse(bytes(blob))
        if parsed.count == 0:
            return np.zeros(0, dtype=parsed.dtype)
        pieces = [
            self._decode_payload(parsed, index) for index in range(parsed.num_blocks)
        ]
        return np.concatenate(pieces)
