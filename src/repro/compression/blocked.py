"""Blocked container format: random access and parallel decompression.

The single-blob :class:`~repro.compression.codec.DeltaCodec` needs the
whole residual stream before the prefix sum can run.  Real deployments
(and the paper's massively-parallel decompression motivation) want the
opposite: many independently-decodable blocks so that thousands of
threads can decompress concurrently and applications can seek.

Layout (version 2)::

    header:  magic "SAMB" | version | dtype | tuple_size | block_elements
             | total count | num_blocks | index CRC32 | header CRC32
    index:   num_blocks x (payload_bytes, order, payload CRC32)
    blocks:  concatenated single-block payloads (zigzag+varint residuals)

Each block's delta model restarts (its first lane values are encoded
against zero), so any block can be decoded knowing only the header and
its payload — block byte offsets are, fittingly, an exclusive prefix
sum over the index's payload sizes.  Per-block orders are auto-selected
independently, which also adapts to signals whose character changes
over time.  Every container byte is covered by exactly one CRC32
(header, index, or one block payload), so corruption — down to a single
flipped bit — raises :class:`CodecError` instead of decoding to wrong
values.

The module-level ``pack_*`` / ``parse_*`` / ``encode_block`` /
``decode_block_payload`` helpers are shared with the streaming
reader/writer (:mod:`repro.compression.stream`), which processes the
same format without materializing whole containers in memory.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.compression.codec import CodecError, choose_model
from repro.compression.zigzag import (
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.core.host import host_delta_encode, host_prefix_sum

MAGIC = b"SAMB"
#: v2 appends CRC32 checksums: per-payload in the index, plus index and
#: header checksums in the header.
VERSION = 2

_DTYPE_CODES = {np.dtype(np.int32): 1, np.dtype(np.int64): 2}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}

_HEADER = struct.Struct("<4sBBBxIqIII")
_INDEX_ENTRY = struct.Struct("<IB3xI")

HEADER_BYTES = _HEADER.size
INDEX_ENTRY_BYTES = _INDEX_ENTRY.size


def align_block_elements(block_elements: int, tuple_size: int) -> int:
    """Block boundaries must be tuple-aligned so every block's lane
    phase starts at lane 0 and decodes independently."""
    aligned = block_elements - block_elements % tuple_size
    return max(tuple_size, aligned)


def pack_header(dtype, tuple_size: int, block_elements: int, count: int,
                num_blocks: int, index_crc: int) -> bytes:
    """Pack a v2 blocked header, computing the trailing header CRC."""
    base = _HEADER.pack(
        MAGIC, VERSION, _DTYPE_CODES[np.dtype(dtype)], tuple_size,
        block_elements, count, num_blocks, index_crc, 0,
    )
    body = base[:-4]
    return body + struct.pack("<I", zlib.crc32(body))


def pack_index_entry(payload_len: int, order: int, payload_crc: int) -> bytes:
    return _INDEX_ENTRY.pack(payload_len, order, payload_crc)


def parse_header_bytes(data: bytes) -> dict:
    """Validate the fixed-size header; returns its fields as a dict."""
    if len(data) >= 4 and bytes(data[:4]) != MAGIC:
        raise CodecError(f"bad magic {bytes(data[:4])!r}")
    if len(data) < _HEADER.size:
        raise CodecError("buffer shorter than the container header")
    (
        magic, version, dtype_code, tuple_size, block_elements, count,
        num_blocks, index_crc, header_crc,
    ) = _HEADER.unpack(data[: _HEADER.size])
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != VERSION:
        raise CodecError(f"unsupported version {version}")
    if zlib.crc32(bytes(data[: _HEADER.size - 4])) != header_crc:
        raise CodecError("header checksum mismatch (corrupt container)")
    if dtype_code not in _CODE_DTYPES:
        raise CodecError(f"unknown dtype code {dtype_code}")
    if tuple_size < 1 or block_elements < 1:
        raise CodecError("corrupt header fields")
    if count < 0:
        raise CodecError(f"negative element count {count}")
    expected_blocks = -(-count // block_elements) if count else 0
    if num_blocks != expected_blocks:
        raise CodecError(
            f"block count {num_blocks} inconsistent with {count} elements"
        )
    return {
        "dtype": _CODE_DTYPES[dtype_code],
        "tuple_size": tuple_size,
        "block_elements": block_elements,
        "count": count,
        "num_blocks": num_blocks,
        "index_crc": index_crc,
    }


def parse_index_bytes(
    index: bytes, num_blocks: int, index_crc: int
) -> Tuple[List[int], List[int], List[int]]:
    """Validate the index region; returns (sizes, orders, payload CRCs)."""
    if len(index) < _INDEX_ENTRY.size * num_blocks:
        raise CodecError("truncated block index")
    index = bytes(index[: _INDEX_ENTRY.size * num_blocks])
    if zlib.crc32(index) != index_crc:
        raise CodecError("index checksum mismatch (corrupt container)")
    sizes, orders, crcs = [], [], []
    for i in range(num_blocks):
        size, order, crc = _INDEX_ENTRY.unpack_from(index, i * _INDEX_ENTRY.size)
        if order < 1:
            raise CodecError(f"corrupt order in index entry {i}")
        sizes.append(size)
        orders.append(order)
        crcs.append(crc)
    return sizes, orders, crcs


def encode_block(block: np.ndarray, order: Optional[int],
                 tuple_size: int) -> Tuple[bytes, int]:
    """Encode one block's payload; ``order=None`` auto-selects.

    Deterministic for a given (block, order, tuple_size), which is what
    lets an interrupted streaming writer re-encode its tail blocks on
    resume and land bit-identical.
    """
    if order is None:
        order, _ = choose_model(block, tuple_sizes=(tuple_size,))
    residuals = host_delta_encode(block, order=order, tuple_size=tuple_size)
    return varint_encode(zigzag_encode(residuals)), order


def decode_block_payload(
    payload: bytes,
    *,
    count: int,
    dtype,
    order: int,
    tuple_size: int,
    payload_crc: Optional[int] = None,
    block_index: int = 0,
    decode_engine=None,
) -> np.ndarray:
    """Decode one block payload back to its values, exactly.

    All coder-layer failures surface as :class:`CodecError` (cause
    chained) so callers can catch one typed error for any malformed
    container.
    """
    dtype = np.dtype(dtype)
    payload = bytes(payload)
    if payload_crc is not None and zlib.crc32(payload) != payload_crc:
        raise CodecError(
            f"block {block_index} payload checksum mismatch "
            "(truncated or corrupt payload)"
        )
    unsigned = np.uint32 if dtype.itemsize == 4 else np.uint64
    try:
        encoded = varint_decode(payload, count, dtype=unsigned)
    except CodecError:
        raise
    except ValueError as exc:
        raise CodecError(
            f"corrupt varint payload in block {block_index}: {exc}"
        ) from exc
    residuals = zigzag_decode(encoded).astype(dtype)
    if decode_engine is None:
        return host_prefix_sum(residuals, order=order, tuple_size=tuple_size)
    return decode_engine.run(residuals, order=order, tuple_size=tuple_size).values


@dataclass
class BlockedBlob:
    """A blocked container plus its parsed metadata."""

    data: bytes
    dtype: np.dtype
    tuple_size: int
    block_elements: int
    count: int
    payload_sizes: List[int]
    orders: List[int]
    payload_crcs: List[int] = None

    @property
    def num_blocks(self) -> int:
        return len(self.payload_sizes)

    @property
    def nbytes(self) -> int:
        return len(self.data)

    def ratio(self) -> float:
        original = self.count * self.dtype.itemsize
        return original / max(1, len(self.data))

    def block_offsets(self) -> np.ndarray:
        """Byte offset of each block's payload — an exclusive prefix sum."""
        sizes = np.asarray(self.payload_sizes, dtype=np.int64)
        base = _HEADER.size + _INDEX_ENTRY.size * self.num_blocks
        return base + np.concatenate([[0], np.cumsum(sizes)[:-1]])


class BlockedDeltaCodec:
    """Chunked delta codec with per-block model selection.

    ``decode_engine`` works like :class:`DeltaCodec`'s: any object with
    ``run(values, order=..., tuple_size=...)``.
    """

    def __init__(self, block_elements: int = 65536, decode_engine=None):
        if block_elements < 1:
            raise CodecError(f"block_elements must be >= 1, got {block_elements}")
        self.block_elements = block_elements
        self.decode_engine = decode_engine

    # -- compression -----------------------------------------------------

    def compress(
        self,
        values,
        order: Optional[int] = None,
        tuple_size: int = 1,
    ) -> BlockedBlob:
        """Compress ``values``; ``order=None`` auto-selects per block."""
        array = np.asarray(values)
        if array.ndim != 1:
            raise CodecError(f"expected a 1-D array, got shape {array.shape}")
        dtype = np.dtype(array.dtype)
        if dtype not in _DTYPE_CODES:
            raise CodecError(f"unsupported dtype {dtype}; int32/int64 only")
        if not 1 <= tuple_size <= 255:
            raise CodecError(f"tuple_size must be in [1, 255], got {tuple_size}")
        block_elements = align_block_elements(self.block_elements, tuple_size)

        payloads: List[bytes] = []
        orders: List[int] = []
        for start in range(0, len(array), block_elements) or [0]:
            block = array[start : start + block_elements]
            if block.size == 0:
                continue
            payload, block_order = encode_block(block, order, tuple_size)
            payloads.append(payload)
            orders.append(block_order)

        crcs = [zlib.crc32(payload) for payload in payloads]
        index = b"".join(
            pack_index_entry(len(payload), block_order, crc)
            for payload, block_order, crc in zip(payloads, orders, crcs)
        )
        header = pack_header(
            dtype, tuple_size, block_elements, len(array), len(payloads),
            zlib.crc32(index),
        )
        return BlockedBlob(
            data=header + index + b"".join(payloads),
            dtype=dtype,
            tuple_size=tuple_size,
            block_elements=block_elements,
            count=len(array),
            payload_sizes=[len(p) for p in payloads],
            orders=orders,
            payload_crcs=crcs,
        )

    # -- decompression ---------------------------------------------------

    def parse(self, data: bytes) -> BlockedBlob:
        """Validate and parse a container (headers + index, no payload)."""
        fields = parse_header_bytes(data)
        num_blocks = fields["num_blocks"]
        index_end = _HEADER.size + _INDEX_ENTRY.size * num_blocks
        payload_sizes, orders, crcs = parse_index_bytes(
            data[_HEADER.size : index_end], num_blocks, fields["index_crc"]
        )
        blob = BlockedBlob(
            data=data,
            dtype=fields["dtype"],
            tuple_size=fields["tuple_size"],
            block_elements=fields["block_elements"],
            count=fields["count"],
            payload_sizes=payload_sizes,
            orders=orders,
            payload_crcs=crcs,
        )
        if num_blocks and blob.block_offsets()[-1] + payload_sizes[-1] != len(data):
            raise CodecError("payload length does not match the index")
        if not num_blocks and len(data) != _HEADER.size:
            raise CodecError("payload length does not match the index")
        return blob

    def _decode_payload(self, blob: BlockedBlob, index: int) -> np.ndarray:
        offsets = blob.block_offsets()
        start = int(offsets[index])
        payload = blob.data[start : start + blob.payload_sizes[index]]
        count = min(
            blob.block_elements, blob.count - index * blob.block_elements
        )
        crc = blob.payload_crcs[index] if blob.payload_crcs else None
        return decode_block_payload(
            payload,
            count=count,
            dtype=blob.dtype,
            order=blob.orders[index],
            tuple_size=blob.tuple_size,
            payload_crc=crc,
            block_index=index,
            decode_engine=self.decode_engine,
        )

    def decompress_block(self, blob, index: int) -> np.ndarray:
        """Random access: decode one block without touching the others."""
        parsed = blob if isinstance(blob, BlockedBlob) else self.parse(bytes(blob))
        if not 0 <= index < parsed.num_blocks:
            raise CodecError(
                f"block index {index} out of range [0, {parsed.num_blocks})"
            )
        return self._decode_payload(parsed, index)

    def decompress(self, blob) -> np.ndarray:
        """Decode the whole container (blocks are independent — this
        loop is what a GPU would run one block per thread block)."""
        parsed = blob if isinstance(blob, BlockedBlob) else self.parse(bytes(blob))
        if parsed.count == 0:
            return np.zeros(0, dtype=parsed.dtype)
        pieces = [
            self._decode_payload(parsed, index) for index in range(parsed.num_blocks)
        ]
        return np.concatenate(pieces)
