"""Zigzag mapping and LEB128 varints — the residual coder.

Delta residuals cluster around zero but alternate in sign.  The zigzag
map interleaves the sign into the low bit (0, -1, 1, -2, 2 -> 0, 1, 2,
3, 4) so that small magnitudes become small unsigned integers, which
LEB128 varints then store in as few bytes as their magnitude needs.
This is the same residual coder used by protobuf and many column
stores — a simple, honest stand-in for the paper's unspecified "coder"
component.
"""

from __future__ import annotations

import numpy as np

_UNSIGNED = {np.dtype(np.int32): np.dtype(np.uint32), np.dtype(np.int64): np.dtype(np.uint64)}
_SIGNED = {v: k for k, v in _UNSIGNED.items()}


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: (v << 1) ^ (v >> (bits-1))."""
    values = np.asarray(values)
    if values.dtype not in _UNSIGNED:
        raise TypeError(f"zigzag needs int32/int64, got {values.dtype}")
    bits = values.dtype.itemsize * 8
    unsigned = values.view(_UNSIGNED[values.dtype])
    return ((unsigned << np.uint8(1)) ^ (values >> np.int8(bits - 1)).view(unsigned.dtype))


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values)
    if values.dtype not in _SIGNED:
        raise TypeError(f"zigzag decode needs uint32/uint64, got {values.dtype}")
    shifted = (values >> np.uint8(1)).view(values.dtype)
    sign = (values & np.uint8(1)).astype(values.dtype)
    with np.errstate(over="ignore"):
        mask = (np.array(0, dtype=values.dtype) - sign).astype(values.dtype)
    return (shifted ^ mask).view(_SIGNED[values.dtype])


def varint_encode(values: np.ndarray) -> bytes:
    """LEB128-encode an unsigned integer array.

    Vectorized by byte position: all values emit their k-th varint byte
    together, then the byte stream is reassembled in value order.
    """
    values = np.asarray(values)
    if values.dtype.kind != "u":
        raise TypeError(f"varint encoding needs an unsigned dtype, got {values.dtype}")
    if values.size == 0:
        return b""
    work = values.astype(np.uint64)
    # Number of 7-bit groups each value needs (at least one).
    nbytes = np.maximum(1, (64 - _clz64(work) + 6) // 7)
    total = int(nbytes.sum())
    out = np.empty(total, dtype=np.uint8)
    positions = np.concatenate([[0], np.cumsum(nbytes)[:-1]])
    remaining = work.copy()
    emitted = np.zeros(len(work), dtype=np.int64)
    max_len = int(nbytes.max())
    for k in range(max_len):
        active = emitted < nbytes
        payload = (remaining & np.uint64(0x7F)).astype(np.uint8)
        more = (emitted + 1 < nbytes) & active
        byte = payload | (np.uint8(0x80) * more.astype(np.uint8))
        out[(positions + emitted)[active]] = byte[active]
        remaining = remaining >> np.uint64(7)
        emitted = emitted + active.astype(np.int64)
    return out.tobytes()


def varint_decode(data: bytes, count: int, dtype=np.uint64) -> np.ndarray:
    """Decode ``count`` LEB128 varints from ``data``.

    Vectorized by byte ordinal: continuation bits mark each varint's
    extent, so value boundaries fall out of a prefix sum over the
    terminator mask, and at most ten masked passes (one per possible
    byte position) OR the 7-bit groups into place.  Error behavior is
    bit-for-bit the scalar decoder's (`_varint_decode_scalar`): raises
    ``ValueError`` on truncated input, overlong varints, or trailing
    garbage, reporting the first offending value in stream order.
    """
    dtype = np.dtype(dtype)
    if dtype.kind != "u":
        raise TypeError(f"varint decoding needs an unsigned dtype, got {dtype}")
    raw = np.frombuffer(data, dtype=np.uint8)
    count = int(count)
    if count == 0:
        if len(raw):
            raise ValueError(
                f"{len(raw)} trailing bytes after decoding 0 varints"
            )
        return np.zeros(0, dtype=dtype)
    if len(raw) == 0:
        raise ValueError("truncated varint stream at value 0")

    ends = (raw & np.uint8(0x80)) == 0  # terminator byte of each varint
    # A byte starts a varint iff it is the first byte or follows a
    # terminator; runs of bytes between starts are one varint each.
    starts = np.flatnonzero(np.concatenate(([True], ends[:-1])))
    run_len = np.diff(np.append(starts, len(raw)))
    complete = int(ends.sum())  # terminated varints present in the data
    nruns = len(starts)

    # Find the first value (in stream order) the scalar decoder would
    # reject, considering only values it actually reaches (< count).
    error = None  # (value index, message)
    overlong = np.flatnonzero(run_len[:complete] >= 11)
    if overlong.size:
        i = int(overlong[0])
        error = (i, f"varint longer than 64 bits at value {i}")
    if nruns > complete:  # trailing unterminated run
        i = nruns - 1
        if run_len[-1] >= 10:
            tail = (i, f"varint longer than 64 bits at value {i}")
        else:
            tail = (i, f"truncated varint stream at value {i}")
        if error is None or tail[0] < error[0]:
            error = tail
    elif count > nruns and error is None:
        error = (nruns, f"truncated varint stream at value {nruns}")
    if error is not None and error[0] < count:
        raise ValueError(error[1])
    if nruns > count:
        trailing = len(raw) - int(starts[count])
        raise ValueError(
            f"{trailing} trailing bytes after decoding {count} varints"
        )

    payload = (raw & np.uint8(0x7F)).astype(np.uint64)
    out = np.zeros(count, dtype=np.uint64)
    lens = run_len[:count]
    starts = starts[:count]
    for k in range(int(lens.max())):
        active = lens > k
        out[active] |= payload[starts[active] + k] << np.uint64(7 * k)
    return out.astype(dtype)


def _varint_decode_scalar(data: bytes, count: int, dtype=np.uint64) -> np.ndarray:
    """Reference scalar decoder — the error-contract oracle for
    :func:`varint_decode` (kept for the differential tests, not used on
    any hot path)."""
    dtype = np.dtype(dtype)
    if dtype.kind != "u":
        raise TypeError(f"varint decoding needs an unsigned dtype, got {dtype}")
    raw = np.frombuffer(data, dtype=np.uint8)
    out = np.zeros(count, dtype=np.uint64)
    position = 0
    for i in range(count):
        shift = np.uint64(0)
        while True:
            if position >= len(raw):
                raise ValueError(f"truncated varint stream at value {i}")
            byte = raw[position]
            position += 1
            out[i] |= np.uint64(byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += np.uint64(7)
            if shift > 63:
                raise ValueError(f"varint longer than 64 bits at value {i}")
    if position != len(raw):
        raise ValueError(
            f"{len(raw) - position} trailing bytes after decoding {count} varints"
        )
    return out.astype(dtype)


def _clz64(values: np.ndarray) -> np.ndarray:
    """Count leading zeros of uint64 values (vectorized)."""
    # bit_length = 64 - clz; compute via float log2 is unsafe for >2^53,
    # so use a branchless binary reduction.
    v = values.astype(np.uint64)
    n = np.full(v.shape, 64, dtype=np.int64)
    shift = 32
    while shift:
        mask = (v >> np.uint64(shift)) != 0
        n = np.where(mask, n - shift, n)
        v = np.where(mask, v >> np.uint64(shift), v)
        shift //= 2
    # v now < 2 (0 or 1); subtract final bit
    n = np.where(v != 0, n - 1, n)
    return n
