"""The scan service's length-prefixed binary framing protocol.

One frame per request and per reply, over TCP or a unix socket::

    +------------+--------+-------------+----------------+-------------+
    | body_len   | verb   | header_len  | header (JSON)  | payload     |
    | u32 BE     | u8     | u32 BE      | UTF-8 bytes    | raw bytes   |
    +------------+--------+-------------+----------------+-------------+

``body_len`` counts everything after itself (verb + header_len +
header + payload), so a reader needs exactly two reads per frame.  The
JSON header carries the small structured fields (session name, request
id, offsets, counters); the payload carries the chunk bytes — raw
little-endian array data, dtype fixed by the session's configuration —
so values are never JSON-encoded on the hot path.

Request verbs: OPEN, FEED, SNAPSHOT, RESTORE, CLOSE, STATS.
Reply verbs: OK (header only), DATA (header + scanned bytes),
BUSY (backpressure: retry after draining), ERROR (typed, see
:mod:`repro.serve.errors`).

Every request header carries an ``id`` the reply echoes, so clients
may pipeline many FEEDs before collecting replies — that is what lets
the server coalesce concurrent feeds into batched kernel dispatches.

Frames above ``max_frame_bytes`` (default 64 MiB) are rejected before
allocation; a stream that dies mid-frame raises
:class:`~repro.serve.errors.ProtocolError` rather than returning a
torn frame.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

from repro.serve.errors import ProtocolError

#: Request verbs.
OPEN = 0x01
FEED = 0x02
SNAPSHOT = 0x03
RESTORE = 0x04
CLOSE = 0x05
STATS = 0x06

#: Reply verbs.
OK = 0x10
DATA = 0x11
ERROR = 0x12
BUSY = 0x13

VERB_NAMES = {
    OPEN: "OPEN",
    FEED: "FEED",
    SNAPSHOT: "SNAPSHOT",
    RESTORE: "RESTORE",
    CLOSE: "CLOSE",
    STATS: "STATS",
    OK: "OK",
    DATA: "DATA",
    ERROR: "ERROR",
    BUSY: "BUSY",
}

#: Frames larger than this are a protocol violation (guards the server
#: against allocating unbounded buffers for a hostile/buggy peer).
DEFAULT_MAX_FRAME_BYTES = 64 << 20

_LEN = struct.Struct(">I")


def encode_frame(verb: int, header: Optional[dict] = None, payload: bytes = b"") -> bytes:
    """Serialize one frame (length prefix included)."""
    blob = json.dumps(header or {}, separators=(",", ":")).encode("utf-8")
    body_len = 1 + 4 + len(blob) + len(payload)
    parts = bytearray(_LEN.pack(body_len))
    parts.append(verb)
    parts += _LEN.pack(len(blob))
    parts += blob
    parts += payload
    return bytes(parts)


def decode_body(body: bytes) -> Tuple[int, dict, bytes]:
    """Split a frame body into ``(verb, header, payload)``."""
    if len(body) < 5:
        raise ProtocolError(f"frame body of {len(body)} bytes is too short")
    verb = body[0]
    (header_len,) = _LEN.unpack_from(body, 1)
    if 5 + header_len > len(body):
        raise ProtocolError(
            f"frame claims a {header_len}-byte header but the body has "
            f"only {len(body) - 5} bytes after the verb"
        )
    try:
        header = json.loads(body[5 : 5 + header_len] or b"{}")
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return verb, header, bytes(body[5 + header_len :])


def _check_body_len(body_len: int, max_frame_bytes: int) -> None:
    if body_len > max_frame_bytes:
        raise ProtocolError(
            f"frame of {body_len} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    if body_len < 5:
        raise ProtocolError(f"frame body of {body_len} bytes is too short")


# -- asyncio side (server) ----------------------------------------------


async def read_frame(
    reader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Optional[Tuple[int, dict, bytes]]:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up); raises :class:`ProtocolError` when the stream dies mid-frame.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame length") from exc
    (body_len,) = _LEN.unpack(prefix)
    _check_body_len(body_len, max_frame_bytes)
    try:
        body = await reader.readexactly(body_len)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed {len(exc.partial)}/{body_len} bytes into a frame"
        ) from exc
    return decode_body(body)


async def write_frame(
    writer, verb: int, header: Optional[dict] = None, payload: bytes = b""
) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(verb, header, payload))
    await writer.drain()


# -- blocking side (client) ---------------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    parts = bytearray()
    while len(parts) < n:
        block = sock.recv(n - len(parts))
        if not block:
            raise ProtocolError(
                f"connection closed {len(parts)}/{n} bytes into a frame"
            )
        parts += block
    return bytes(parts)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[int, dict, bytes]:
    """Read one frame from a blocking socket."""
    (body_len,) = _LEN.unpack(_recv_exactly(sock, 4))
    _check_body_len(body_len, max_frame_bytes)
    return decode_body(_recv_exactly(sock, body_len))


def send_frame(
    sock: socket.socket,
    verb: int,
    header: Optional[dict] = None,
    payload: bytes = b"",
) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(verb, header, payload))
