"""The server's pool of named scan sessions, checkpointable as a whole.

A :class:`SessionRegistry` maps client-chosen names to live
:class:`~repro.stream.ScanSession` objects.  It is the unit of server
persistence: :meth:`state_dict` snapshots every session's byte-exact
carry state (via the existing ``ScanSession.state_dict`` machinery)
plus its counters, and :meth:`save`/:meth:`load` persist that snapshot
with the same atomic-and-durable tmp/fsync/rename/dir-fsync writer the
stream checkpoints use — so a SIGKILL'd server restarted with
``--restore`` resumes every session exactly at its last checkpointed
offset, and clients continue bit-identically from there.

The registry is deliberately synchronous and lock-free: the server
serializes all access through its own asyncio lock (one dispatcher
mutates sessions; control verbs share the lock), so the registry never
needs to defend itself.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.serve.errors import SessionExistsError, UnknownSessionError
from repro.stream.checkpoint import write_checkpoint
from repro.stream.counters import StreamCounters
from repro.stream.errors import CheckpointError
from repro.stream.session import ScanSession

REGISTRY_KIND = "repro-serve-registry"
REGISTRY_VERSION = 1


class SessionRegistry:
    """Named, restorable pool of :class:`ScanSession` objects."""

    def __init__(self):
        self._sessions: Dict[str, ScanSession] = {}
        #: Counters of sessions that were explicitly closed, kept so
        #: aggregate stats stay cumulative across session lifetimes.
        self._retired = StreamCounters()
        self.restores = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    def names(self):
        return sorted(self._sessions)

    # -- lifecycle -------------------------------------------------------

    def open(
        self,
        name: str,
        *,
        op="add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
        dtype="int64",
        threads=None,
        float_mode=None,
    ) -> Tuple[ScanSession, bool]:
        """Get-or-create the named session; returns ``(session, created)``.

        OPEN is idempotent for an identical configuration (the client
        reconnecting after a server restart just gets the live session
        and its current offset back); a conflicting configuration
        raises :class:`SessionExistsError` — names are an exactness
        contract, never silently rebound.  ``dtype`` is required up
        front: the wire protocol decodes FEED payloads with it.
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"session name must be a non-empty string, got {name!r}")
        if dtype is None:
            raise ValueError("serve sessions need an explicit dtype at OPEN")
        candidate = ScanSession(
            op=op,
            order=order,
            tuple_size=tuple_size,
            inclusive=inclusive,
            dtype=dtype,
            threads=threads,
            float_mode=float_mode,
        )
        existing = self._sessions.get(name)
        if existing is not None:
            if existing.config() != candidate.config():
                raise SessionExistsError(
                    f"session {name!r} already exists with a different "
                    f"configuration (existing {existing.config()!r}, "
                    f"requested {candidate.config()!r})"
                )
            return existing, False
        self._sessions[name] = candidate
        return candidate, True

    def get(self, name: str) -> ScanSession:
        session = self._sessions.get(name)
        if session is None:
            raise UnknownSessionError(
                f"no session named {name!r} (open it first, or the server "
                f"restarted without a checkpoint that contained it)"
            )
        return session

    def close(self, name: str) -> StreamCounters:
        """Forget the named session; returns its final counters."""
        session = self.get(name)
        del self._sessions[name]
        self._retired = StreamCounters.aggregate(
            [self._retired, session.counters], engine_used=self._retired.engine_used
        )
        return session.counters

    def restore_session(
        self, name: str, state: dict, counters: Optional[dict] = None, threads=None
    ) -> ScanSession:
        """Create (or replace) ``name`` from a ``state_dict`` snapshot.

        The session is rebuilt with the configuration recorded *in the
        state* and the state loaded through
        :meth:`ScanSession.load_state_dict`, which re-validates the
        config hash — a tampered or mismatched snapshot raises the
        typed :class:`~repro.stream.errors.CheckpointMismatchError`
        before the registry is touched.  RESTORE is authoritative: an
        existing session under the same name is replaced.
        """
        config = state.get("config")
        if not isinstance(config, dict):
            raise CheckpointError("session state lacks its config record")
        session = ScanSession(
            op=config.get("op", "add"),
            order=config.get("order", 1),
            tuple_size=config.get("tuple_size", 1),
            inclusive=config.get("inclusive", True),
            dtype=config.get("dtype"),
            threads=threads,
            float_mode=config.get("float_mode"),
        )
        session.load_state_dict(state)
        if counters:
            session.counters = StreamCounters.from_dict(counters)
        session.counters.resumes += 1
        self._sessions[name] = session
        self.restores += 1
        return session

    # -- whole-registry persistence --------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of every session (state + counters)."""
        return {
            "sessions": {
                name: {
                    "state": session.state_dict(),
                    "counters": session.counters.to_dict(),
                }
                for name, session in sorted(self._sessions.items())
            }
        }

    def load_state_dict(self, doc: dict) -> None:
        """Restore every session recorded by :meth:`state_dict`."""
        sessions = doc.get("sessions")
        if not isinstance(sessions, dict):
            raise CheckpointError("registry snapshot lacks its sessions map")
        for name, record in sessions.items():
            self.restore_session(
                name, record["state"], counters=record.get("counters")
            )

    def save(self, path) -> None:
        """Atomically and durably persist the registry to ``path``."""
        payload = {
            "kind": REGISTRY_KIND,
            "version": REGISTRY_VERSION,
            "saved_at": time.time(),
            "registry": self.state_dict(),
        }
        write_checkpoint(path, payload)

    def load(self, path) -> int:
        """Restore the registry persisted at ``path``; returns the
        number of sessions restored.  Raises
        :class:`~repro.stream.errors.CheckpointError` on foreign or
        corrupt files (each session state's config hash is re-validated
        on the way in)."""
        import json
        import os

        path = os.fspath(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read registry checkpoint {path!r}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("kind") != REGISTRY_KIND:
            raise CheckpointError(f"{path!r} is not a repro serve registry")
        if payload.get("version") != REGISTRY_VERSION:
            raise CheckpointError(
                f"registry checkpoint {path!r} has version "
                f"{payload.get('version')!r}, this build reads "
                f"version {REGISTRY_VERSION}"
            )
        self.load_state_dict(payload.get("registry", {}))
        return len(self._sessions)

    # -- stats ------------------------------------------------------------

    def aggregate_counters(self) -> StreamCounters:
        """Cumulative counters over live *and* closed sessions."""
        return StreamCounters.aggregate(
            [self._retired, *(s.counters for s in self._sessions.values())]
        )

    def stats(self) -> dict:
        """Per-session stats map (config, offset, counters)."""
        return {
            name: {
                "config": session.config(),
                "offset": session.offset,
                "counters": session.counters.to_dict(),
            }
            for name, session in sorted(self._sessions.items())
        }
