"""Blocking client for the scan service.

:class:`ScanClient` speaks the framing protocol from
:mod:`repro.serve.protocol` over TCP (``"host:port"``) or a unix
socket (``"unix:/path"`` or a bare filesystem path).  One client drives
one connection; it is not thread-safe — give each thread its own.

The simple calls (:meth:`open`, :meth:`feed`, :meth:`snapshot`, ...)
are strict request/reply.  :meth:`feed_many` pipelines a window of
FEED frames before collecting replies — with several clients doing
this concurrently the server coalesces their feeds into batched kernel
dispatches, which is where the service's throughput comes from.  BUSY
backpressure replies are retried transparently (bounded by
``busy_retries``), and server-side errors re-raise as the typed
exceptions in :mod:`repro.serve.errors`.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.serve import protocol
from repro.serve.errors import (
    FeedRejectedError,
    ProtocolError,
    ServeError,
    error_from_frame,
)


def parse_address(address: str) -> Tuple[str, object]:
    """Split an address string into ``("tcp", (host, port))`` or
    ``("unix", path)``.  ``unix:`` prefixes and bare paths (anything
    with a ``/``) select unix sockets; ``host:port`` selects TCP."""
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if "/" in address:
        return "unix", address
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"address {address!r} is neither host:port nor a unix socket path"
        )
    return "tcp", (host or "127.0.0.1", int(port))


class ScanClient:
    """One blocking connection to a scan server.

    ``address`` is ``"host:port"``, ``"unix:/path"``, or a socket
    path.  ``busy_retries``/``busy_backoff`` bound how long
    :meth:`feed` waits out BUSY backpressure before raising
    :class:`FeedRejectedError`.  Usable as a context manager.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: Optional[float] = 30.0,
        busy_retries: int = 64,
        busy_backoff: float = 0.01,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ):
        self.address = address
        self.busy_retries = busy_retries
        self.busy_backoff = busy_backoff
        self.max_frame_bytes = max_frame_bytes
        self._next_id = 0
        self._reply_buffer: dict = {}
        kind, target = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        try:
            self._sock.connect(target)
        except OSError as exc:
            self._sock.close()
            raise ServeError(f"cannot connect to {address}: {exc}") from exc

    # -- plumbing ---------------------------------------------------------

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, verb: int, header: dict, payload: bytes = b"") -> int:
        self._next_id += 1
        header = dict(header)
        header["id"] = self._next_id
        try:
            protocol.send_frame(self._sock, verb, header, payload)
        except OSError as exc:
            raise ServeError(f"connection to {self.address} lost: {exc}") from exc
        return self._next_id

    def _recv(self) -> Tuple[int, dict, bytes]:
        try:
            return protocol.recv_frame(self._sock, self.max_frame_bytes)
        except OSError as exc:
            raise ServeError(f"connection to {self.address} lost: {exc}") from exc

    def _recv_reply(self, request_id: int) -> Tuple[int, dict, bytes]:
        """Collect the reply for ``request_id``, buffering any other
        pipelined replies that arrive first (BUSY frames are written
        inline by the server's reader while DATA frames come later from
        its dispatcher, so reply order is not request order)."""
        while request_id not in self._reply_buffer:
            verb, header, payload = self._recv()
            reply_id = header.get("id")
            if reply_id is None:
                raise ProtocolError("reply frame carries no request id")
            self._reply_buffer[reply_id] = (verb, header, payload)
        verb, header, payload = self._reply_buffer.pop(request_id)
        if verb == protocol.ERROR:
            raise error_from_frame(header)
        return verb, header, payload

    def _request(
        self, verb: int, header: dict, payload: bytes = b""
    ) -> Tuple[int, dict, bytes]:
        return self._recv_reply(self._send(verb, header, payload))

    # -- verbs ------------------------------------------------------------

    def open(
        self,
        session: str,
        *,
        op: str = "add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
        dtype: str = "int64",
        float_mode: Optional[str] = None,
    ) -> dict:
        """Open (or re-attach to) a named session; returns the reply
        header with ``created``, ``offset`` and the server's config.
        ``float_mode`` is sent only when set, so old servers keep
        accepting OPENs from new clients (and vice versa)."""
        request = {
            "session": session,
            "op": op,
            "order": order,
            "tuple_size": tuple_size,
            "inclusive": inclusive,
            "dtype": dtype,
        }
        if float_mode is not None:
            request["float_mode"] = float_mode
        _, header, _ = self._request(protocol.OPEN, request)
        return header

    def feed(self, session: str, chunk) -> np.ndarray:
        """Scan one chunk through the named session; returns the
        scanned values and retries BUSY backpressure with backoff."""
        array = np.ascontiguousarray(chunk)
        payload = array.tobytes()
        for attempt in range(self.busy_retries + 1):
            header = {"session": session, "dtype": array.dtype.name}
            if attempt:
                header["retry"] = True
            verb, header, reply_payload = self._recv_reply(
                self._send(protocol.FEED, header, payload)
            )
            if verb == protocol.DATA:
                return np.frombuffer(reply_payload, dtype=array.dtype)
            if verb != protocol.BUSY:
                raise ProtocolError(
                    f"unexpected {protocol.VERB_NAMES.get(verb, hex(verb))} "
                    f"reply to FEED"
                )
            time.sleep(self.busy_backoff * (attempt + 1))
        raise FeedRejectedError(
            f"feed to {session!r} still BUSY after {self.busy_retries} retries"
        )

    def feed_many(
        self, session: str, chunks: Iterable, window: int = 8, on_result=None
    ) -> List[np.ndarray]:
        """Pipeline up to ``window`` FEEDs before collecting replies.

        Returns the scanned chunks in feed order.  BUSY replies requeue
        that chunk (order within the session is preserved because the
        retry happens before any later chunk is sent).

        ``on_result(index, scanned)`` fires as each reply arrives —
        callers that persist outputs incrementally (the ``repro feed``
        CLI) use it so progress survives a connection loss: everything
        delivered before the failure is already on disk, and a rerun
        resumes from the server's restored offset.
        """
        chunks = [np.ascontiguousarray(c) for c in chunks]
        outs: List[Optional[np.ndarray]] = [None] * len(chunks)
        pending: "deque[Tuple[int, int]]" = deque()
        next_to_send = 0
        busy_attempts = 0
        retry_next = False
        while next_to_send < len(chunks) or pending:
            while next_to_send < len(chunks) and len(pending) < window:
                header = {
                    "session": session,
                    "dtype": chunks[next_to_send].dtype.name,
                }
                if retry_next:
                    header["retry"] = True
                    retry_next = False
                request_id = self._send(
                    protocol.FEED, header, chunks[next_to_send].tobytes()
                )
                pending.append((request_id, next_to_send))
                next_to_send += 1
            request_id, index = pending.popleft()
            verb, header, payload = self._recv_reply(request_id)
            if verb == protocol.BUSY:
                # Everything after this chunk is still queued behind it
                # server-side only if it was accepted — but a BUSY chunk
                # was never enqueued, so to keep order we must drain the
                # rest of the window and resend from this chunk.
                busy_attempts += 1
                if busy_attempts > self.busy_retries:
                    raise FeedRejectedError(
                        f"feed to {session!r} still BUSY after "
                        f"{self.busy_retries} retries"
                    )
                for later_id, later_index in pending:
                    verb2, _, payload2 = self._recv_reply(later_id)
                    if verb2 == protocol.DATA:
                        raise ProtocolError(
                            "server accepted a feed after rejecting an "
                            "earlier one; session order is broken"
                        )
                pending.clear()
                time.sleep(self.busy_backoff * busy_attempts)
                next_to_send = index
                retry_next = True
                continue
            if verb != protocol.DATA:
                raise ProtocolError(
                    f"unexpected {protocol.VERB_NAMES.get(verb, hex(verb))} "
                    f"reply to FEED"
                )
            busy_attempts = 0
            outs[index] = np.frombuffer(payload, dtype=chunks[index].dtype)
            if on_result is not None:
                on_result(index, outs[index])
        return outs

    def snapshot(self, session: str) -> dict:
        """The session's ``state_dict`` + counters, as the server holds
        them right now (a client-side checkpoint)."""
        _, header, _ = self._request(protocol.SNAPSHOT, {"session": session})
        return {"state": header["state"], "counters": header["counters"]}

    def restore(self, session: str, state: dict, counters: Optional[dict] = None) -> int:
        """Replace (or create) the named session from a snapshot;
        returns the restored offset."""
        _, header, _ = self._request(
            protocol.RESTORE,
            {"session": session, "state": state, "counters": counters},
        )
        return header["offset"]

    def close_session(self, session: str) -> dict:
        """Close the named session; returns its final counters."""
        _, header, _ = self._request(protocol.CLOSE, {"session": session})
        return header["counters"]

    def stats(self) -> dict:
        """Server stats: per-session configs/offsets/counters, the
        aggregate counters, and the dispatch gauges."""
        _, header, _ = self._request(protocol.STATS, {})
        return header
