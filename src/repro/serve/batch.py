"""Batched session feeds: B ``ScanSession.feed`` calls, ~order dispatches.

:func:`feed_batch` is the server's throughput core.  Given ``B``
*distinct*, batch-compatible sessions (same operator, dtype, order and
tuple size — see :func:`batch_key`) and one pending chunk each, it
produces outputs **bit-identical** to ``[s.feed(c) for s, c in ...]``
while issuing only ``order`` kernel dispatches total (one
:meth:`repro.kernels.BatchedLaneKernel.stage_scan` per scan pass)
instead of ``B * order``.  For the serving workload — thousands of
small concurrent streams — this converts per-feed Python dispatch
overhead into one amortized batch dispatch.

The pass structure mirrors :meth:`repro.stream.ScanSession.feed`
exactly: ``order`` inclusive continuation passes, each updating that
pass's carry row, with the exclusive lane-shift (heads = the pre-chunk
running totals) applied per session on the final pass only.  Empty
chunks stay scan no-ops but count as feed calls, like ``feed``.

Batch eligibility is the same rule as every other fast path in the
repo: fixed-width integers under a real-ufunc operator (exact
regrouping), on the plain host path (no delegated engine, no slab
threads) — plus, since the compensated float mode landed, float
``add`` sessions opened with ``float_mode="compensated"``: their
error-free carry makes the batched regrouping deterministic, so they
batch through :class:`repro.kernels.BatchedCompensatedKernel` (chunks
that would cross a segment boundary fall back to an individual feed
inside :func:`feed_batch` — the boundary advances the per-stream
double-double chain, which is sequential).  Exact-mode floats keep
their bit-exact per-session prepend path; the caller simply feeds
those sessions individually.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.kernels import (
    BatchedCompensatedKernel,
    BatchedLaneKernel,
    batchable_op_dtype,
)
from repro.stream.errors import SessionStateError
from repro.stream.session import ScanSession


def batch_key(session: ScanSession):
    """The session's batch-compatibility key, or ``None`` if the
    session cannot take the batched path (engine-delegated, threaded,
    float/unknown dtype, or looped operator).

    Two sessions may share a dispatch iff their keys are equal and not
    ``None``.  ``inclusive`` is deliberately *not* part of the key: the
    exclusive lane-shift is a per-session epilogue, so inclusive and
    exclusive sessions batch together.

    The key is cached on the session once it is known — everything it
    reads is frozen after the dtype locks — because the server asks for
    it on every feed and ``dtype.name`` alone costs more than a small
    chunk's scan.  A ``None`` from a still-unlocked dtype is *not*
    cached (the key materialises on the first feed).
    """
    cached = getattr(session, "_batch_key_cache", False)
    if cached is not False:
        return cached
    if session._engine is not None or session.threads is not None:
        key = None
    elif session.dtype is None:
        return None
    elif session.float_mode == "compensated":
        key = (
            session.op.name,
            session.dtype.name,
            session.order,
            session.tuple_size,
            "compensated",
        )
    elif not batchable_op_dtype(session.op, session.dtype):
        key = None
    else:
        key = (
            session.op.name,
            session.dtype.name,
            session.order,
            session.tuple_size,
        )
    session._batch_key_cache = key
    return key


def batch_kernel_for(session: ScanSession):
    """A fresh batched kernel matching the session's batch key
    (:class:`BatchedCompensatedKernel` for compensated float sessions,
    :class:`BatchedLaneKernel` otherwise)."""
    if session.float_mode == "compensated":
        return BatchedCompensatedKernel(
            session.op, session.dtype, session.tuple_size
        )
    return BatchedLaneKernel(session.op, session.dtype, session.tuple_size)


def feed_batch(
    sessions: Sequence[ScanSession],
    chunks: Sequence[np.ndarray],
    kernel: Optional[BatchedLaneKernel] = None,
) -> List[np.ndarray]:
    """Feed one chunk to each of ``B`` batch-compatible sessions.

    Equivalent to ``[s.feed(c) for s, c in zip(sessions, chunks)]`` bit
    for bit — outputs, carry state, offsets — in ``order`` batched
    kernel dispatches.  ``kernel`` lets the caller reuse a
    :class:`BatchedLaneKernel` (and its staging buffer / occupancy
    counters) across batches; it must match the sessions' batch key.

    Raises ``ValueError`` when the sessions do not share a non-``None``
    batch key or a session appears twice (feeds to the same session
    must stay ordered — dispatch them in separate batches).
    """
    if len(sessions) != len(chunks):
        raise ValueError(f"{len(sessions)} sessions but {len(chunks)} chunks")
    if not sessions:
        return []
    if len(set(map(id, sessions))) != len(sessions):
        raise ValueError("a session may appear at most once per batch")
    keys = {batch_key(s) for s in sessions}
    if len(keys) != 1 or None in keys:
        raise ValueError(
            "sessions are not batch-compatible (need one shared "
            "op/dtype/order/tuple_size key on the plain host path)"
        )
    first = sessions[0]
    op, s, order, dtype = first.op, first.tuple_size, first.order, first.dtype
    compensated = first.float_mode == "compensated"
    kernel_type = BatchedCompensatedKernel if compensated else BatchedLaneKernel
    if kernel is None:
        kernel = kernel_type(op, dtype, s)
    elif (
        not isinstance(kernel, kernel_type)
        or kernel.op.name != op.name
        or kernel.dtype != dtype
        or kernel.s != s
    ):
        raise ValueError("kernel does not match the sessions' batch key")

    outs: List[Optional[np.ndarray]] = [None] * len(sessions)
    live: List[int] = []
    arrays: List[np.ndarray] = []
    for i, (session, chunk) in enumerate(zip(sessions, chunks)):
        array = np.asarray(chunk)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D chunk, got shape {array.shape}")
        if array.dtype != dtype:
            # The session's locked dtype already passed check_dtype;
            # only a mismatching chunk needs the full resolution (for
            # the error message and widening rules).
            resolved = op.check_dtype(array.dtype)
            if resolved != dtype:
                raise SessionStateError(
                    f"session is locked to dtype {dtype.name}, "
                    f"got a {resolved.name} chunk"
                )
            array = array.astype(dtype, copy=False)
        if array.size == 0:
            session.counters.chunks += 1
            session.counters.bytes_in += array.nbytes
            outs[i] = array.copy()
        else:
            live.append(i)
            arrays.append(array)
    if compensated and live:
        # A chunk that crosses its stream's segment boundary advances
        # the per-stream double-double chain — a sequential step the
        # batched kernel cannot stage.  Feed those streams individually
        # (bit-identical: the session takes the same compensated
        # kernel); the rest still share the dispatch.
        kept_live: List[int] = []
        kept_arrays: List[np.ndarray] = []
        for j, i in enumerate(live):
            if kernel.crosses_segment(sessions[i]._offset, arrays[j].size):
                outs[i] = sessions[i].feed(arrays[j])
            else:
                kept_live.append(i)
                kept_arrays.append(arrays[j])
        live, arrays = kept_live, kept_arrays
    if not live:
        return outs

    t0 = time.perf_counter()
    positions = [sessions[i]._offset for i in live]
    identity = op.identity(dtype)
    any_exclusive = any(not sessions[i].inclusive for i in live)
    current = arrays

    # Fused order-q batch: ONE staged dispatch produces all q orders
    # (delta injection + q batched accumulates) when every live chunk
    # has at least order * s elements — the same single-pass kernel the
    # sessions' own feeds take, so carries stay bit-identical either
    # way.  Shorter chunks fall back to the pass-per-order loop below.
    if (
        not compensated
        and order > 1
        and kernels.fused_supported(op, dtype, order, s)
        and all(a.size >= order * s for a in arrays)
    ):
        prev = (
            np.stack([sessions[i]._carry[order - 1] for i in live]).copy()
            if any_exclusive
            else None
        )
        carries = np.stack([sessions[i]._carry for i in live])
        scanned = kernel.stage_scan_fused(current, carries, positions, order)
        for j, i in enumerate(live):
            session = sessions[i]
            session._carry[...] = carries[j]
            session.counters.fused_order_scans += 1
            if not session.inclusive:
                perm = kernels.phase_perm(session._offset, s)
                heads = prev[j][perm]
                heads[perm >= session._offset] = identity
                scanned[j] = kernels.exclusive_shift(scanned[j], heads)
        share = (time.perf_counter() - t0) / len(live)
        for j, i in enumerate(live):
            session = sessions[i]
            n = arrays[j].size
            session._offset += n
            session.counters.chunks += 1
            session.counters.elements += n
            session.counters.bytes_in += arrays[j].nbytes
            session.counters.seconds_scan += share
            session.counters.batched_feeds += 1
            outs[i] = scanned[j]
        return outs

    for iteration in range(order):
        last = iteration == order - 1
        prev = (
            np.stack([sessions[i]._carry[iteration] for i in live]).copy()
            if (last and any_exclusive)
            else None
        )
        if compensated:
            states = [sessions[i]._comp[iteration] for i in live]
            scanned = kernel.stage_scan(current, states, positions)
            # The error carry advanced in place; refresh the rendered
            # running totals (the exclusive heads of later feeds).
            for j, i in enumerate(live):
                totals = kernels.phase_totals(scanned[j], s)
                lanes = (positions[j] + np.arange(totals.size)) % s
                sessions[i]._carry[iteration][lanes] = totals
        else:
            carries = np.stack([sessions[i]._carry[iteration] for i in live])
            scanned = kernel.stage_scan(current, carries, positions)
            for j, i in enumerate(live):
                sessions[i]._carry[iteration][:] = carries[j]
        if last and any_exclusive:
            # Exclusive = the lane-shifted inclusive continuation; the
            # shifted-in heads are the lanes' pre-chunk running totals
            # (identity at the very start of the stream) — the same
            # epilogue as ScanSession._stage_pass.
            for j, i in enumerate(live):
                session = sessions[i]
                if session.inclusive:
                    continue
                perm = kernels.phase_perm(session._offset, s)
                heads = prev[j][perm]
                heads[perm >= session._offset] = identity
                scanned[j] = kernels.exclusive_shift(scanned[j], heads)
        current = scanned
    share = (time.perf_counter() - t0) / len(live)
    for j, i in enumerate(live):
        session = sessions[i]
        n = arrays[j].size
        session._offset += n
        session.counters.chunks += 1
        session.counters.elements += n
        session.counters.bytes_in += arrays[j].nbytes
        session.counters.seconds_scan += share
        session.counters.batched_feeds += 1
        outs[i] = current[j]
    return outs
