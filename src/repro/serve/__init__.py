"""repro.serve — the async scan service.

A long-lived daemon (``python -m repro serve``) owning named
:class:`~repro.stream.ScanSession` objects, fed by many concurrent
clients over a length-prefixed binary protocol (TCP or unix socket).
Concurrent feeds from different sessions are coalesced into batched
kernel dispatches (:func:`feed_batch` over a
:class:`~repro.kernels.BatchedLaneKernel`); the whole session registry
checkpoints atomically so a killed server restarts bit-identically.

Layers:

* :mod:`repro.serve.protocol` — the frame format and verbs.
* :mod:`repro.serve.errors` — typed service errors (wire round-trip).
* :mod:`repro.serve.batch` — ``feed_batch``: B session feeds in
  ``order`` kernel dispatches, bit-identical to sequential ``feed``.
* :mod:`repro.serve.registry` — named session pool + checkpoint.
* :mod:`repro.serve.server` — the asyncio daemon (backpressure,
  dispatcher rounds, durability).
* :mod:`repro.serve.client` — blocking :class:`ScanClient` with
  pipelined ``feed_many``.
"""

from repro.serve.batch import batch_kernel_for, batch_key, feed_batch
from repro.serve.client import ScanClient, parse_address
from repro.serve.errors import (
    FeedRejectedError,
    ProtocolError,
    ServeError,
    ServerClosedError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.serve.registry import SessionRegistry
from repro.serve.server import ScanServer

__all__ = [
    "ScanClient",
    "ScanServer",
    "SessionRegistry",
    "batch_kernel_for",
    "batch_key",
    "feed_batch",
    "parse_address",
    "ServeError",
    "ProtocolError",
    "UnknownSessionError",
    "SessionExistsError",
    "FeedRejectedError",
    "ServerClosedError",
]
