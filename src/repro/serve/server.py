"""The asyncio scan server: many connections, batched kernel dispatches.

:class:`ScanServer` owns a :class:`~repro.serve.registry.SessionRegistry`
and listens on TCP or a unix socket for the framing protocol in
:mod:`repro.serve.protocol`.  Its architecture is one dispatcher, many
readers:

* Each connection gets a reader coroutine that parses frames.  Control
  verbs (OPEN/SNAPSHOT/RESTORE/CLOSE/STATS) are answered inline under
  the registry lock.  FEED frames are *enqueued* — the reader replies
  nothing yet — and the connection's inflight-byte budget is charged.
* A single dispatcher coroutine drains the queue in rounds.  Per round
  it takes at most one pending feed per session (feeds to the same
  session must stay ordered), groups the taken feeds by batch key, and
  services each group with one :func:`repro.serve.batch.feed_batch`
  call — B sessions, ``order`` kernel dispatches — falling back to
  per-session ``feed`` for singleton or unbatchable sessions.  DATA
  replies (scanned bytes + new offset) are written as each round
  completes, refunding the inflight budget.
* Backpressure is explicit: a FEED that would push the connection past
  ``max_inflight_bytes`` is answered with a BUSY frame immediately and
  never enqueued; the client retries after draining pending replies.

Durability: with a checkpoint path configured the dispatcher persists
the whole registry (atomic tmp/fsync/rename) every
``checkpoint_every`` feeds and at graceful shutdown, so a SIGKILL'd
server restarted with ``--restore`` resumes every session at its last
checkpointed offset, bit-identically.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serve import protocol
from repro.serve.batch import batch_kernel_for, batch_key, feed_batch
from repro.serve.errors import ProtocolError, error_to_header
from repro.serve.registry import SessionRegistry
from repro.stream.errors import SessionStateError
from repro.kernels import BatchedLaneKernel

#: Dispatcher takes at most this many feeds per round by default.
DEFAULT_BATCH_MAX = 64

#: Per-connection inflight FEED budget before BUSY replies (bytes).
DEFAULT_MAX_INFLIGHT_BYTES = 8 << 20

DEFAULT_CHECKPOINT_EVERY = 256


class _Connection:
    """Per-connection bookkeeping shared by reader and dispatcher."""

    __slots__ = (
        "reader",
        "writer",
        "write_lock",
        "inflight_bytes",
        "busy_until_drained",
        "name",
    )

    def __init__(self, reader, writer, name: str):
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight_bytes = 0
        # Once a feed is rejected BUSY, every later feed from this
        # connection is rejected too until its inflight drains to zero.
        # Otherwise a pipelined feed *behind* the rejected one could be
        # accepted as the budget refunds, scanning chunks out of order.
        self.busy_until_drained = False
        self.name = name

    async def send(self, verb: int, header: dict, payload: bytes = b"") -> None:
        async with self.write_lock:
            await protocol.write_frame(self.writer, verb, header, payload)


class _PendingFeed:
    """One enqueued FEED awaiting a dispatcher round."""

    __slots__ = ("conn", "session_name", "chunk", "request_id", "nbytes")

    def __init__(self, conn, session_name, chunk, request_id, nbytes):
        self.conn = conn
        self.session_name = session_name
        self.chunk = chunk
        self.request_id = request_id
        self.nbytes = nbytes


class ScanServer:
    """Async scan service over a session registry.

    Parameters mirror the ``repro serve`` CLI: listen on ``host:port``
    or ``unix_path``; ``checkpoint`` + ``checkpoint_every`` control
    registry durability; ``batch_max`` bounds feeds per dispatcher
    round; ``max_inflight_bytes`` is the per-connection FEED budget
    before BUSY replies.
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        checkpoint: Optional[str] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        batch_max: int = DEFAULT_BATCH_MAX,
        max_inflight_bytes: int = DEFAULT_MAX_INFLIGHT_BYTES,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ):
        self.registry = registry if registry is not None else SessionRegistry()
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.checkpoint = checkpoint
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.batch_max = max(1, int(batch_max))
        self.max_inflight_bytes = max(1, int(max_inflight_bytes))
        self.max_frame_bytes = max_frame_bytes

        self._server: Optional[asyncio.AbstractServer] = None
        self._lock = asyncio.Lock()
        self._queue: deque = deque()
        self._queue_event = asyncio.Event()
        self._stopping = asyncio.Event()
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._kernels: Dict[Tuple, BatchedLaneKernel] = {}
        self._conn_seq = 0
        self._feeds_since_checkpoint = 0

        # Gauges reported by STATS.
        self.feeds_dispatched = 0
        self.batch_dispatches = 0
        self.solo_dispatches = 0
        self.busy_rejections = 0
        self.max_queue_depth = 0
        self.checkpoint_writes = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound address, e.g. ``127.0.0.1:4915`` or ``unix:/tmp/s``."""
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind, start listening, and start the dispatcher."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher_task = asyncio.create_task(self._dispatch_loop())

    def request_stop(self) -> None:
        """Ask the server to shut down (signal-handler and test safe)."""
        self._stopping.set()
        self._queue_event.set()

    async def stop(self) -> None:
        """Stop listening, flush a final checkpoint, close connections."""
        self.request_stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher_task is not None:
            await self._dispatcher_task
            self._dispatcher_task = None
        async with self._lock:
            self._save_checkpoint(force=True)

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (or the task is cancelled)."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()

    # -- connection reader ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._conn_seq += 1
        conn = _Connection(reader, writer, f"conn-{self._conn_seq}")
        try:
            while not self._stopping.is_set():
                try:
                    frame = await protocol.read_frame(reader, self.max_frame_bytes)
                except ProtocolError:
                    break
                if frame is None:
                    break
                verb, header, payload = frame
                request_id = header.get("id")
                try:
                    await self._handle_frame(conn, verb, header, payload)
                except Exception as exc:  # typed errors cross as ERROR frames
                    try:
                        await conn.send(
                            protocol.ERROR,
                            {**error_to_header(exc), "id": request_id},
                        )
                    except (ConnectionError, OSError):
                        break
        except asyncio.CancelledError:
            # Event-loop shutdown while parked on a read: exit quietly
            # so the streams machinery doesn't log a cancelled task.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_frame(self, conn, verb, header, payload) -> None:
        request_id = header.get("id")
        if verb == protocol.FEED:
            await self._enqueue_feed(conn, header, payload)
            return
        async with self._lock:
            if verb == protocol.OPEN:
                threads = header.get("threads")
                planned_threads = threads is None
                if planned_threads:
                    # No pin from the client: ask the planner whether this
                    # host/dtype/op combination profits from slab threads
                    # (threads= is excluded from the session config hash,
                    # so the answer cannot conflict an OPEN or a restore).
                    from repro.plan import session_threads

                    threads = session_threads(
                        header.get("dtype", "int64"),
                        header.get("op", "add"),
                        float_mode=header.get("float_mode"),
                    )
                session, created = self.registry.open(
                    header.get("session"),
                    op=header.get("op", "add"),
                    order=header.get("order", 1),
                    tuple_size=header.get("tuple_size", 1),
                    inclusive=header.get("inclusive", True),
                    dtype=header.get("dtype", "int64"),
                    threads=threads,
                    float_mode=header.get("float_mode"),
                )
                if created and planned_threads and threads is not None:
                    session.counters.planner_strategy = f"session_threads:{threads}"
                reply = {
                    "id": request_id,
                    "created": created,
                    "offset": session.offset,
                    "config": session.config(),
                }
                await conn.send(protocol.OK, reply)
            elif verb == protocol.SNAPSHOT:
                session = self.registry.get(header.get("session"))
                reply = {
                    "id": request_id,
                    "state": session.state_dict(),
                    "counters": session.counters.to_dict(),
                }
                await conn.send(protocol.DATA, reply)
            elif verb == protocol.RESTORE:
                state = header.get("state")
                if not isinstance(state, dict):
                    raise ProtocolError("RESTORE needs a state object")
                session = self.registry.restore_session(
                    header.get("session"), state, counters=header.get("counters")
                )
                await conn.send(
                    protocol.OK, {"id": request_id, "offset": session.offset}
                )
            elif verb == protocol.CLOSE:
                counters = self.registry.close(header.get("session"))
                await conn.send(
                    protocol.OK, {"id": request_id, "counters": counters.to_dict()}
                )
            elif verb == protocol.STATS:
                await conn.send(protocol.DATA, self._stats_reply(request_id))
            else:
                raise ProtocolError(
                    f"unknown request verb 0x{verb:02x}"
                )

    async def _enqueue_feed(self, conn, header, payload) -> None:
        request_id = header.get("id")
        name = header.get("session")
        async with self._lock:
            session = self.registry.get(name)  # raises UnknownSessionError
            claimed = header.get("dtype")
            if claimed is not None and np.dtype(claimed) != session.dtype:
                raise SessionStateError(
                    f"session {name!r} is locked to dtype "
                    f"{session.dtype.name}, FEED carries {claimed}"
                )
            if len(payload) % session.dtype.itemsize:
                raise ProtocolError(
                    f"FEED payload of {len(payload)} bytes is not a "
                    f"multiple of the {session.dtype.itemsize}-byte "
                    f"{session.dtype.name} itemsize"
                )
            if (
                conn.busy_until_drained
                and conn.inflight_bytes == 0
                and header.get("retry")
            ):
                # The client drained every pending reply and is
                # explicitly resending from the rejected chunk — only
                # that clears the latch.  A merely-later pipelined
                # chunk (no retry flag) stays rejected even at zero
                # inflight, else it would scan ahead of the rejected
                # one and break session order.
                conn.busy_until_drained = False
            if conn.busy_until_drained or (
                conn.inflight_bytes + len(payload) > self.max_inflight_bytes
                and conn.inflight_bytes > 0
            ):
                conn.busy_until_drained = True
                self.busy_rejections += 1
                await conn.send(
                    protocol.BUSY,
                    {
                        "id": request_id,
                        "inflight_bytes": conn.inflight_bytes,
                        "max_inflight_bytes": self.max_inflight_bytes,
                    },
                )
                return
            chunk = np.frombuffer(payload, dtype=session.dtype)
            conn.inflight_bytes += len(payload)
            self._queue.append(
                _PendingFeed(conn, name, chunk, request_id, len(payload))
            )
            self.max_queue_depth = max(self.max_queue_depth, len(self._queue))
        self._queue_event.set()

    # -- dispatcher -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._queue_event.wait()
            self._queue_event.clear()
            while self._queue:
                async with self._lock:
                    round_feeds = self._take_round()
                    replies = self._run_round(round_feeds)
                for conn, verb, header, payload in replies:
                    try:
                        await conn.send(verb, header, payload)
                    except (ConnectionError, OSError):
                        pass
                # Checkpoint strictly AFTER the replies: the durable
                # offset must never run ahead of what clients have
                # received.  A crash between reply and checkpoint only
                # re-feeds already-delivered chunks (bit-identical
                # rewrites); the other order would leave a gap no
                # client could ever fill.
                async with self._lock:
                    self._save_checkpoint()
                # Yield so readers can enqueue the next wave — that is
                # what lets pipelined feeds from many clients coalesce
                # into the following round.
                await asyncio.sleep(0)
            if self._stopping.is_set():
                return

    def _take_round(self) -> List[_PendingFeed]:
        """Dequeue up to ``batch_max`` feeds, at most one per session
        (same-session feeds stay FIFO across rounds)."""
        taken: List[_PendingFeed] = []
        deferred: deque = deque()
        seen = set()
        while self._queue and len(taken) < self.batch_max:
            feed = self._queue.popleft()
            if feed.session_name in seen:
                deferred.append(feed)
            else:
                seen.add(feed.session_name)
                taken.append(feed)
        while deferred:
            self._queue.appendleft(deferred.pop())
        return taken

    def _run_round(self, round_feeds: List[_PendingFeed]):
        """Service one round; returns the DATA/ERROR replies to write."""
        groups: Dict[object, List[_PendingFeed]] = {}
        order: List[object] = []
        dropped: List[Tuple[_PendingFeed, BaseException]] = []
        for feed in round_feeds:
            try:
                session = self.registry.get(feed.session_name)
            except Exception as exc:
                dropped.append((feed, exc))
                continue
            key = batch_key(session)
            group_key = (
                ("batch",) + key if key is not None else ("solo", id(session))
            )
            if group_key not in groups:
                groups[group_key] = []
                order.append(group_key)
            groups[group_key].append(feed)

        replies = []
        for feed, exc in dropped:
            feed.conn.inflight_bytes -= feed.nbytes
            replies.append(
                (
                    feed.conn,
                    protocol.ERROR,
                    {**error_to_header(exc), "id": feed.request_id},
                    b"",
                )
            )
        for group_key in order:
            feeds = groups[group_key]
            sessions = [self.registry.get(f.session_name) for f in feeds]
            try:
                if len(feeds) > 1 and group_key[0] == "batch":
                    kernel = self._kernels.get(group_key)
                    if kernel is None:
                        kernel = batch_kernel_for(sessions[0])
                        self._kernels[group_key] = kernel
                    outs = feed_batch(sessions, [f.chunk for f in feeds], kernel)
                    self.batch_dispatches += 1
                else:
                    outs = [s.feed(f.chunk) for s, f in zip(sessions, feeds)]
                    self.solo_dispatches += len(feeds)
            except Exception as exc:
                for feed in feeds:
                    feed.conn.inflight_bytes -= feed.nbytes
                    replies.append(
                        (
                            feed.conn,
                            protocol.ERROR,
                            {**error_to_header(exc), "id": feed.request_id},
                            b"",
                        )
                    )
                continue
            for feed, session, out in zip(feeds, sessions, outs):
                feed.conn.inflight_bytes -= feed.nbytes
                self.feeds_dispatched += 1
                self._feeds_since_checkpoint += 1
                replies.append(
                    (
                        feed.conn,
                        protocol.DATA,
                        {"id": feed.request_id, "offset": session.offset},
                        np.ascontiguousarray(out).tobytes(),
                    )
                )
        return replies

    # -- durability and stats ---------------------------------------------

    def _save_checkpoint(self, force: bool = False) -> None:
        if self.checkpoint is None:
            return
        if not force and self._feeds_since_checkpoint < self.checkpoint_every:
            return
        self.registry.save(self.checkpoint)
        self.checkpoint_writes += 1
        self._feeds_since_checkpoint = 0

    def _stats_reply(self, request_id) -> dict:
        kernels = list(self._kernels.values())
        streams_fed = sum(k.streams_fed for k in kernels)
        dispatches = sum(k.dispatches for k in kernels)
        occupancy = (streams_fed / dispatches) if dispatches else 0.0
        return {
            "id": request_id,
            "sessions": self.registry.stats(),
            "aggregate": self.registry.aggregate_counters().to_dict(),
            "gauges": {
                "feeds_dispatched": self.feeds_dispatched,
                "batch_dispatches": self.batch_dispatches,
                "solo_dispatches": self.solo_dispatches,
                "batch_occupancy": occupancy,
                "queue_depth": len(self._queue),
                "max_queue_depth": self.max_queue_depth,
                "busy_rejections": self.busy_rejections,
                "checkpoint_writes": self.checkpoint_writes,
                "connections_seen": self._conn_seq,
                "restores": self.registry.restores,
            },
        }
