"""Typed errors for the scan service.

Mirrors :mod:`repro.stream.errors`: callers catch :class:`ServeError`
for any service failure, or the specific subclasses to react
differently to protocol problems vs. session lookup vs. backpressure.
Server-side failures cross the wire as ERROR frames carrying the error
class name; :func:`error_from_frame` re-raises the matching typed
exception client-side (including the streaming errors a session can
raise, e.g. ``CheckpointMismatchError`` from a bad RESTORE).
"""

from __future__ import annotations

from repro.stream import errors as _stream_errors


class ServeError(RuntimeError):
    """Base class for all scan-service failures."""


class ProtocolError(ServeError):
    """A frame is malformed, oversized, truncated, or out of protocol."""


class UnknownSessionError(ServeError):
    """A verb referenced a session name the registry does not hold."""


class SessionExistsError(ServeError):
    """OPEN named an existing session with a conflicting configuration."""


class FeedRejectedError(ServeError):
    """A feed could not be accepted: a single chunk above the inflight
    budget, or BUSY backpressure outlasted the client's retry policy.
    """


class ServerClosedError(ServeError):
    """The connection dropped mid-request (server gone or shutting down)."""


#: Error names the client maps back to typed exceptions.  Streaming
#: errors are included because session verbs surface them verbatim
#: (a RESTORE with a foreign state raises CheckpointMismatchError).
ERROR_TYPES = {
    "ProtocolError": ProtocolError,
    "UnknownSessionError": UnknownSessionError,
    "SessionExistsError": SessionExistsError,
    "FeedRejectedError": FeedRejectedError,
    "ServeError": ServeError,
    "StreamError": _stream_errors.StreamError,
    "SessionStateError": _stream_errors.SessionStateError,
    "CheckpointError": _stream_errors.CheckpointError,
    "CheckpointMismatchError": _stream_errors.CheckpointMismatchError,
}


def error_to_header(exc: BaseException) -> dict:
    """ERROR-frame header for an exception (class name + message)."""
    return {"error": type(exc).__name__, "message": str(exc)}


def error_from_frame(header: dict) -> BaseException:
    """Rebuild the typed exception an ERROR frame describes."""
    name = header.get("error", "ServeError")
    message = header.get("message", "server error")
    cls = ERROR_TYPES.get(name)
    if cls is None:
        return ServeError(f"{name}: {message}")
    return cls(message)
