"""Stream compaction via exclusive prefix sums.

The canonical scan application (Blelloch [2]; the earliest GPU scans
were written exactly for "non-uniform stream compaction" [15]): given a
keep-mask, every kept element's output position is the exclusive prefix
sum of the mask.
"""

from __future__ import annotations

import numpy as np

from repro.core.host import host_scan


def compact_indices(mask) -> np.ndarray:
    """Output position for every input element (valid where kept).

    The returned array holds, at each kept position, the index the
    element lands at after compaction — i.e. the exclusive prefix sum
    of the mask.
    """
    mask = np.asarray(mask).astype(bool)
    if mask.ndim != 1:
        raise ValueError("mask must be 1-D")
    return host_scan(mask.astype(np.int64), inclusive=False)


def stream_compact(values, mask, engine=None):
    """Keep ``values[mask]``, preserving order, via prefix sums.

    ``engine`` optionally routes the scan through a simulated-GPU
    engine (the scatter itself is a host gather either way).

    >>> import numpy as np
    >>> stream_compact(np.array([5, 6, 7, 8]), np.array([1, 0, 0, 1], bool)).tolist()
    [5, 8]
    """
    values = np.asarray(values)
    mask = np.asarray(mask).astype(bool)
    if values.ndim != 1 or mask.shape != values.shape:
        raise ValueError("values and mask must be aligned 1-D arrays")
    if values.size == 0:
        return values.copy()
    flags = mask.astype(np.int64)
    if engine is None:
        positions = host_scan(flags, inclusive=False)
        total = int(positions[-1] + flags[-1])
    else:
        result = engine.run(flags, inclusive=False)
        positions = result.values
        total = int(positions[-1] + flags[-1])
    out = np.empty(total, dtype=values.dtype)
    out[positions[mask]] = values[mask]
    return out
