"""Applications built on the generalized prefix sums.

Section 1 of the paper lists the classic scan applications — "radix
sort, quicksort, lexical analysis, polynomial evaluation, stream
compaction, histograms, and string comparison" — and Section 3 connects
higher-order prefix sums to linear recursive filters.  This package
implements those applications on top of the library's scan primitives,
both as working tools and as integration tests of the scan engines:

* :mod:`repro.apps.segmented` — segmented scans (restart at segment
  heads), with a fast subtraction trick for invertible operators and
  the generic lifted-operator path that runs on any engine.
* :mod:`repro.apps.compaction` — stream compaction / filtering via
  exclusive prefix sums.
* :mod:`repro.apps.rle` — run-length encoding and decoding, both
  expressed entirely in scans.
* :mod:`repro.apps.radix_sort` — LSD radix sort driven by histogram +
  exclusive scan per digit.
* :mod:`repro.apps.recurrence` — first-order linear recurrences
  ``y[i] = a[i]*y[i-1] + b[i]`` via scans over the affine-composition
  monoid (the "linear recursive filter" view of Section 3), plus
  polynomial evaluation (Horner) as a special case.
* :mod:`repro.apps.fsm` — parallel finite-state-machine execution via
  scans over the function-composition monoid (Ladner & Fischer [17]),
  with a toy parallel lexer on top.
* :mod:`repro.apps.quicksort` — Blelloch's segmented-scan quicksort:
  every partition level runs simultaneously over one flat array.
* :mod:`repro.apps.spmv` — CSR sparse matrix-vector products as
  segmented sums.
* :mod:`repro.apps.histogram` — histograms (and CDF equalization) via
  sort + run boundaries; no atomics.
* :mod:`repro.apps.strings` — string comparison / LCP via scans.
* :mod:`repro.apps.sat` — summed-area tables: the column pass is a
  tuple-based prefix sum of the row-major buffer (no transpose), a
  direct use of the paper's tuple generalization.
"""

from repro.apps.compaction import compact_indices, stream_compact
from repro.apps.fsm import FsmScanner, parallel_fsm_run, simple_lexer
from repro.apps.histogram import histogram, histogram_equalization_map
from repro.apps.quicksort import quicksort
from repro.apps.radix_sort import radix_sort, radix_sort_with_indices
from repro.apps.recurrence import (
    linear_recurrence,
    polynomial_evaluate_prefixes,
)
from repro.apps.rle import rle_decode, rle_encode
from repro.apps.sat import box_sum, summed_area_table
from repro.apps.segmented import segment_flags_from_lengths, segmented_scan
from repro.apps.spmv import CsrMatrix, spmv
from repro.apps.strings import (
    first_mismatch,
    longest_common_prefix_lengths,
    string_compare,
)

__all__ = [
    "CsrMatrix",
    "FsmScanner",
    "box_sum",
    "compact_indices",
    "first_mismatch",
    "histogram",
    "histogram_equalization_map",
    "linear_recurrence",
    "longest_common_prefix_lengths",
    "parallel_fsm_run",
    "polynomial_evaluate_prefixes",
    "quicksort",
    "radix_sort",
    "radix_sort_with_indices",
    "rle_decode",
    "rle_encode",
    "segment_flags_from_lengths",
    "segmented_scan",
    "simple_lexer",
    "spmv",
    "stream_compact",
    "string_compare",
    "summed_area_table",
]
