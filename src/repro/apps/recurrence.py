"""First-order linear recurrences via scans over the affine monoid.

Section 3 of the paper: higher-order prefix sums "are a form of a
linear recursive filter", and optimized GPU linear recursive filters
are generalized prefix scans.  The general first-order recurrence

    y[i] = a[i] * y[i-1] + b[i]

is the scan of affine maps ``f_i(y) = a_i*y + b_i`` under composition:

    (g . f)(y) = g(f(y))  ->  (a_g*a_f,  a_g*b_f + b_g)

which is associative, so it parallelizes exactly like a prefix sum.
The implementation here uses the Hillis-Steele doubling form [14]
directly on the (a, b) coefficient arrays: log2(n) fully-vectorized
passes (O(n log n) work, like the paper's Section 1 citation of that
algorithm family).

The plain prefix sum is the special case ``a = 1``; Horner polynomial
evaluation is the special case ``a = x`` (constant).
"""

from __future__ import annotations

import numpy as np


def linear_recurrence(a, b, y0=0):
    """Solve ``y[i] = a[i]*y[i-1] + b[i]`` with ``y[-1] = y0``.

    Works for integer dtypes (exact, wraparound) and floats.  The
    composition scan is associative, so the doubling evaluation returns
    the same values as the serial loop (bit-exact for integers).

    >>> import numpy as np
    >>> linear_recurrence(np.ones(4, np.int64), np.ones(4, np.int64)).tolist()
    [1, 2, 3, 4]
    >>> linear_recurrence(np.full(3, 2, np.int64), np.ones(3, np.int64), y0=1).tolist()
    [3, 7, 15]
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 1 or a.shape != b.shape:
        raise ValueError("a and b must be aligned 1-D arrays")
    if a.size == 0:
        return b.copy()
    dtype = np.result_type(a.dtype, b.dtype)
    coeff = a.astype(dtype).copy()
    offset = b.astype(dtype).copy()
    n = len(coeff)
    delta = 1
    with np.errstate(over="ignore"):
        while delta < n:
            prev_coeff = coeff[:-delta]
            prev_offset = offset[:-delta]
            # Compose each map with the one `delta` positions earlier.
            new_offset = (coeff[delta:] * prev_offset + offset[delta:]).astype(dtype)
            new_coeff = (coeff[delta:] * prev_coeff).astype(dtype)
            coeff[delta:] = new_coeff
            offset[delta:] = new_offset
            delta *= 2
        y0 = np.asarray(y0, dtype=dtype)
        return (coeff * y0 + offset).astype(dtype)


def polynomial_evaluate_prefixes(coefficients, x):
    """All Horner intermediates of a polynomial at ``x`` via the scan.

    ``coefficients`` are in descending-power order (``c[0]`` multiplies
    the highest power); the last element of the result is the value of
    the polynomial at ``x`` — "polynomial evaluation" from the paper's
    application list.

    >>> import numpy as np
    >>> # 2x^2 + 3x + 4 at x = 10 -> 234
    >>> polynomial_evaluate_prefixes(np.array([2, 3, 4], dtype=np.int64), 10).tolist()
    [2, 23, 234]
    """
    coefficients = np.asarray(coefficients)
    if coefficients.ndim != 1:
        raise ValueError("coefficients must be 1-D")
    if coefficients.size == 0:
        raise ValueError("need at least one coefficient")
    a = np.full(len(coefficients), x, dtype=coefficients.dtype)
    return linear_recurrence(a, coefficients)
