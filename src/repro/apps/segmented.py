"""Segmented scans: prefix scans that restart at segment heads.

Two implementations of the same function:

* :func:`segmented_scan` with ``method="subtract"`` (default where
  legal) — for *invertible* operators (add, xor), a segmented inclusive
  scan is the plain scan minus the running total at each element's
  segment head.  Fully vectorized: two scans plus a gather.
* ``method="lifted"`` — the textbook construction for any operator:
  lift to the (flag, value) monoid (see
  :mod:`repro.ops.segmented`), run any engine on the packed array,
  unpack.  Slower (the packed operator has no ufunc) but completely
  general and usable with the simulated-GPU engines.

Both are property-tested against a per-segment serial oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.host import host_scan
from repro.ops import ADD, get_op
from repro.ops.segmented import make_segmented_op, pack, unpack


def segment_flags_from_lengths(lengths) -> np.ndarray:
    """Head-flag vector for consecutive segments of the given lengths.

    >>> segment_flags_from_lengths([2, 3]).astype(int).tolist()
    [1, 0, 1, 0, 0]
    """
    lengths = np.asarray(lengths)
    if lengths.ndim != 1:
        raise ValueError("lengths must be 1-D")
    if np.any(lengths <= 0):
        raise ValueError("segment lengths must be positive")
    total = int(lengths.sum())
    flags = np.zeros(total, dtype=bool)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    flags[starts] = True
    return flags


def _segment_ids(flags: np.ndarray) -> np.ndarray:
    """0-based segment index of every element."""
    return np.cumsum(flags.astype(np.int64)) - 1


def _subtract_method(values, flags, op) -> np.ndarray:
    """Segmented scan via the inverse trick (invertible ops only)."""
    full = host_scan(values, op=op)
    starts = np.flatnonzero(flags)
    if starts.size == 0 or starts[0] != 0:
        raise ValueError("flags must mark element 0 as a segment head")
    # Running total just *before* each segment: identity for segment 0.
    identity = op.identity(values.dtype)
    before = np.concatenate(
        [np.asarray([identity], dtype=values.dtype), full[starts[1:] - 1]]
    )
    ids = _segment_ids(flags)
    return op.invert(full, before[ids])


def _lifted_method(values, flags, op, engine=None) -> np.ndarray:
    """Segmented scan via the packed lifted monoid on any engine."""
    packed = pack(values, flags)
    lifted = make_segmented_op(op, values.dtype)
    if engine is None:
        scanned = host_scan(packed, op=lifted)
    else:
        scanned = engine.run(packed, op=lifted).values
    out, _ = unpack(scanned, values.dtype)
    return out


def segmented_scan(values, flags, op=ADD, method="auto", engine=None) -> np.ndarray:
    """Inclusive segmented scan of ``values`` with head ``flags``.

    Parameters
    ----------
    flags:
        Boolean head flags; element 0 must start a segment.
    method:
        ``"auto"`` picks the subtraction trick when the operator is
        invertible and no engine was requested; ``"subtract"`` and
        ``"lifted"`` force a path.
    engine:
        Optional scan engine (e.g. :class:`repro.core.SamScan`) for the
        lifted path — demonstrating that the paper's kernel runs the
        segmented monoid untouched.
    """
    op = get_op(op)
    values = np.asarray(values)
    flags = np.asarray(flags).astype(bool)
    if values.ndim != 1 or flags.shape != values.shape:
        raise ValueError("values and flags must be aligned 1-D arrays")
    if values.size == 0:
        return values.copy()
    if not flags[0]:
        raise ValueError("flags[0] must be True (element 0 heads a segment)")

    if method == "auto":
        method = "subtract" if (op.invertible and engine is None) else "lifted"
    if method == "subtract":
        if not op.invertible:
            raise ValueError(f"operator {op.name!r} is not invertible")
        if engine is not None:
            raise ValueError("the subtract method runs on the host only")
        return _subtract_method(values, flags, op)
    if method == "lifted":
        return _lifted_method(values, flags, op, engine)
    raise ValueError(f"unknown method {method!r}")
