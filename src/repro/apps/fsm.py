"""Parallel finite-state-machine execution via composition scans.

Ladner & Fischer [17] showed how to parallelize any computation done by
a finite-state transducer by scanning over the monoid of state-to-state
functions; "lexical analysis" and "string comparison" in the paper's
application list are instances.  Each input symbol denotes the function
``state -> transition[state, symbol]``; functions over a finite state
set compose associatively, so the sequence of after-each-symbol states
is a prefix scan.

The implementation represents each function as a length-``S`` table and
scans with Hillis-Steele doubling (log2(n) vectorized gather passes).
:func:`simple_lexer` builds a toy tokenizer on top — identifiers,
integers, whitespace, punctuation — whose token boundaries come out of
the parallel FSM run plus a stream-compaction step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.compaction import stream_compact


def parallel_fsm_run(transition, symbols, start_state: int = 0) -> np.ndarray:
    """State after each symbol, computed as a composition scan.

    Parameters
    ----------
    transition:
        Array of shape ``(num_states, num_symbols)``:
        ``transition[q, c]`` is the successor of state ``q`` on ``c``.
    symbols:
        1-D integer array of symbol codes.
    start_state:
        Initial FSM state.

    Returns the length-``n`` array of states *after* consuming each
    symbol — identical to the serial automaton run, in log2(n)
    vectorized passes.
    """
    transition = np.asarray(transition)
    symbols = np.asarray(symbols)
    if transition.ndim != 2:
        raise ValueError("transition must be (num_states, num_symbols)")
    num_states, num_symbols = transition.shape
    if symbols.ndim != 1:
        raise ValueError("symbols must be 1-D")
    if symbols.size and (symbols.min() < 0 or symbols.max() >= num_symbols):
        raise ValueError("symbol code out of range")
    if not 0 <= start_state < num_states:
        raise ValueError(f"start_state {start_state} out of range")
    if symbols.size == 0:
        return np.zeros(0, dtype=transition.dtype)

    # funcs[i] = the state-map of symbol i, as a table of length S.
    funcs = transition.T[symbols].copy()  # shape (n, S)
    n = len(funcs)
    delta = 1
    while delta < n:
        # Compose with the map `delta` positions earlier:
        # (g . f)[q] = g[f[q]]  for f earlier, g current.
        earlier = funcs[:-delta]
        current = funcs[delta:]
        composed = np.take_along_axis(current, earlier, axis=1)
        funcs[delta:] = composed
        delta *= 2
    return funcs[:, start_state]


@dataclass(frozen=True)
class Token:
    """One token produced by the toy lexer."""

    kind: str
    text: str
    start: int
    end: int  # exclusive


class FsmScanner:
    """A tiny DFA-based scanner executed in parallel.

    States: 0 = between tokens, 1 = in identifier, 2 = in number,
    3 = punctuation (single char).  Symbol classes: 0 = letter/_,
    1 = digit, 2 = space, 3 = other.
    """

    STATE_NAMES = ("gap", "ident", "number", "punct")
    KIND_OF_STATE = {1: "ident", 2: "number", 3: "punct"}

    def __init__(self):
        # transition[state, symbol_class] -> state
        self.transition = np.array(
            [
                # letter digit space other
                [1, 2, 0, 3],  # gap
                [1, 1, 0, 3],  # ident (identifiers may contain digits)
                [2, 2, 0, 3],  # number... wait: letters after digits
                [1, 2, 0, 3],  # punct: single-char tokens, restart
            ],
            dtype=np.int8,
        )
        # A letter directly after a number starts a new identifier:
        self.transition[2, 0] = 1

    @staticmethod
    def classify(text: str) -> np.ndarray:
        """Map characters to symbol classes, vectorized."""
        codes = np.frombuffer(text.encode("latin-1"), dtype=np.uint8)
        classes = np.full(len(codes), 3, dtype=np.int64)  # other
        letter = (
            ((codes >= ord("a")) & (codes <= ord("z")))
            | ((codes >= ord("A")) & (codes <= ord("Z")))
            | (codes == ord("_"))
        )
        digit = (codes >= ord("0")) & (codes <= ord("9"))
        space = (codes == ord(" ")) | (codes == ord("\t")) | (codes == ord("\n"))
        classes[letter] = 0
        classes[digit] = 1
        classes[space] = 2
        return classes

    def run(self, text: str) -> np.ndarray:
        """State after each character (the parallel FSM scan)."""
        return parallel_fsm_run(self.transition, self.classify(text)).astype(np.int64)

    def tokenize(self, text: str) -> List[Token]:
        """Token list via the FSM scan + boundary compaction."""
        if not text:
            return []
        states = self.run(text)
        # A token starts where the state is token-ish and either the
        # previous state differs or the previous char ended a token
        # (punct is always a fresh token).
        tokenish = states > 0
        prev_states = np.concatenate([[0], states[:-1]])
        starts_mask = tokenish & (
            (states != prev_states) | (prev_states == 3) | (states == 3)
        )
        ends_mask = tokenish & np.concatenate(
            [
                (states[:-1] != states[1:]) | (states[:-1] == 3) | (states[1:] == 3),
                [True],
            ]
        )
        positions = np.arange(len(text), dtype=np.int64)
        starts = stream_compact(positions, starts_mask)
        ends = stream_compact(positions, ends_mask) + 1
        tokens = []
        for begin, end in zip(starts, ends):
            kind = self.KIND_OF_STATE[int(states[begin])]
            tokens.append(Token(kind, text[begin:end], int(begin), int(end)))
        return tokens


def simple_lexer(text: str) -> List[Tuple[str, str]]:
    """Tokenize ``text`` into (kind, text) pairs with the parallel DFA.

    >>> simple_lexer("x1 = 42;")
    [('ident', 'x1'), ('punct', '='), ('number', '42'), ('punct', ';')]
    """
    return [(tok.kind, tok.text) for tok in FsmScanner().tokenize(text)]
