"""String comparison via scans (the §1 application list).

Blelloch's formulation: comparing two strings lexicographically needs
the *first* position where they differ — a min-reduction over mismatch
positions, or equivalently one step of a scan-based search.  The
functions here are deliberately scan-shaped (no early-exit loops) so
they parallelize the same way the paper's other applications do.
"""

from __future__ import annotations

import numpy as np

from repro.core.host import host_scan


def _codes(text: str) -> np.ndarray:
    return np.frombuffer(text.encode("utf-8"), dtype=np.uint8).astype(np.int64)


def first_mismatch(a: str, b: str) -> int:
    """Index of the first differing byte, or -1 if one is a prefix.

    Scan formulation: a running AND ("still equal so far") is an
    inclusive scan with the boolean-and operator; the mismatch index is
    the count of leading Trues.
    """
    ca, cb = _codes(a), _codes(b)
    n = min(len(ca), len(cb))
    if n == 0:
        return -1
    equal = (ca[:n] == cb[:n]).astype(np.int64)
    still_equal = host_scan(equal, op="min")  # running AND
    matched = int(still_equal.sum())  # count of leading 1s
    if matched == n:
        return -1
    return matched


def string_compare(a: str, b: str) -> int:
    """Three-way lexicographic comparison (-1 / 0 / +1), via scans.

    >>> string_compare("apple", "apricot")
    -1
    >>> string_compare("same", "same")
    0
    """
    index = first_mismatch(a, b)
    if index == -1:
        if len(a) == len(b):
            return 0
        return -1 if len(a) < len(b) else 1
    ca, cb = _codes(a), _codes(b)
    return -1 if ca[index] < cb[index] else 1


def longest_common_prefix_lengths(strings) -> np.ndarray:
    """LCP length of each adjacent pair in a list of strings.

    The building block of suffix-array construction; each pair's LCP is
    the leading-equal count from :func:`first_mismatch`'s scan.
    """
    out = np.zeros(max(0, len(strings) - 1), dtype=np.int64)
    for i in range(len(strings) - 1):
        index = first_mismatch(strings[i], strings[i + 1])
        if index == -1:
            out[i] = min(len(_codes(strings[i])), len(_codes(strings[i + 1])))
        else:
            out[i] = index
    return out
