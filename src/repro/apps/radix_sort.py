"""LSD radix sort driven by prefix sums.

Radix sort is the paper's (and Blelloch's [1]) flagship scan
application: each digit pass computes a histogram of digit values and
an exclusive prefix sum over it to find every bucket's base offset;
a stable scatter finishes the pass.

Supports signed and unsigned 32/64-bit integers (signed keys are
bias-flipped to unsigned order), and can return the sorting
permutation (argsort) for key-value sorting.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.host import host_scan

#: Digit width in bits per pass.
DIGIT_BITS = 8
RADIX = 1 << DIGIT_BITS


def _to_unsigned(keys: np.ndarray) -> Tuple[np.ndarray, np.dtype]:
    """Map keys to unsigned integers with the same sort order."""
    dtype = keys.dtype
    if dtype == np.int32:
        return (keys.view(np.uint32) ^ np.uint32(1 << 31)), dtype
    if dtype == np.int64:
        return (keys.view(np.uint64) ^ np.uint64(1 << 63)), dtype
    if dtype in (np.dtype(np.uint32), np.dtype(np.uint64)):
        return keys.copy(), dtype
    raise TypeError(f"radix sort supports 32/64-bit integers, got {dtype}")


def _from_unsigned(keys: np.ndarray, dtype: np.dtype) -> np.ndarray:
    if dtype == np.int32:
        return (keys ^ np.uint32(1 << 31)).view(np.int32)
    if dtype == np.int64:
        return (keys ^ np.uint64(1 << 63)).view(np.int64)
    return keys


def radix_sort_with_indices(keys) -> Tuple[np.ndarray, np.ndarray]:
    """Stable LSD radix sort; returns (sorted_keys, permutation).

    ``permutation`` maps output position -> original index (i.e. it is
    an argsort), so values can be carried along.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be 1-D")
    unsigned, original_dtype = _to_unsigned(keys)
    order = np.arange(len(keys), dtype=np.int64)
    passes = unsigned.dtype.itemsize * 8 // DIGIT_BITS
    narrow_dtype = unsigned.dtype
    work = unsigned.astype(np.uint64)
    for p in range(passes):
        shift = p * DIGIT_BITS
        remaining = work >> np.uint64(shift)
        if p > 0 and not remaining.any():
            break  # all remaining (not just this pass's) digits zero
        digits = (remaining & np.uint64(RADIX - 1)).astype(np.int64)
        # Histogram + exclusive prefix sum = bucket base offsets.
        counts = np.bincount(digits, minlength=RADIX).astype(np.int64)
        bases = host_scan(counts, inclusive=False)
        # Stable scatter: position = bucket base + rank within bucket.
        # rank-within-bucket via a segmented trick on the sorted-digit
        # view: argsort(digits, stable) already yields the pass's
        # permutation, but we build it from the scan to stay true to
        # the parallel formulation.
        within = _rank_within_bucket(digits)
        positions = bases[digits] + within
        inverse = np.empty_like(positions)
        inverse[positions] = np.arange(len(positions))
        work = work[inverse]
        order = order[inverse]
    return _from_unsigned(work.astype(narrow_dtype), original_dtype), order


def _rank_within_bucket(digits: np.ndarray) -> np.ndarray:
    """Stable rank of each element among equal digits (scan-based).

    For each digit value d, elements with that digit get 0, 1, 2, ... in
    input order.  Computed with one exclusive prefix sum per *bit* of
    the digit (the classic split primitive) would need DIGIT_BITS
    passes; here we use the equivalent vectorized counting form.
    """
    n = len(digits)
    # counts-so-far: for each position, how many equal digits precede.
    # Vectorized via sorting-free bucket offsets: argsort is avoided by
    # a cumulative count per digit using np.add.at on a running table.
    ranks = np.empty(n, dtype=np.int64)
    table = np.zeros(RADIX, dtype=np.int64)
    # Chunked accumulation: within a chunk, use bincount-based offsets.
    chunk = 4096
    for start in range(0, n, chunk):
        d = digits[start : start + chunk]
        ranks[start : start + chunk] = table[d] + _prefix_count(d)
        table += np.bincount(d, minlength=RADIX)
    return ranks


def _prefix_count(digits: np.ndarray) -> np.ndarray:
    """Within one chunk: number of earlier equal digits per element."""
    order = np.argsort(digits, kind="stable")
    sorted_digits = digits[order]
    heads = np.ones(len(digits), dtype=bool)
    heads[1:] = sorted_digits[1:] != sorted_digits[:-1]
    # position within the sorted run = index - run start.
    run_start = np.maximum.accumulate(np.where(heads, np.arange(len(digits)), 0))
    within_sorted = np.arange(len(digits)) - run_start
    out = np.empty(len(digits), dtype=np.int64)
    out[order] = within_sorted
    return out


def radix_sort(keys) -> np.ndarray:
    """Sorted copy of ``keys`` (stable LSD radix sort via prefix sums).

    >>> import numpy as np
    >>> radix_sort(np.array([3, -1, 2, -7, 0], dtype=np.int32)).tolist()
    [-7, -1, 0, 2, 3]
    """
    sorted_keys, _ = radix_sort_with_indices(keys)
    return sorted_keys
