"""Sparse matrix-vector multiplication via segmented sums.

The canonical segmented-scan application (Blelloch [1]): in CSR form,
``y = A @ x`` is one elementwise product followed by a segmented sum
over the rows' nonzeros — the last element of each segment is the row's
dot product.  Rows with no nonzeros contribute zero.
"""

from __future__ import annotations

import numpy as np

from repro.apps.segmented import segmented_scan


class CsrMatrix:
    """A minimal CSR sparse matrix (data / column indices / row pointers)."""

    def __init__(self, data, indices, indptr, shape):
        self.data = np.asarray(data)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = tuple(shape)
        if self.data.shape != self.indices.shape or self.data.ndim != 1:
            raise ValueError("data and indices must be aligned 1-D arrays")
        if len(self.indptr) != self.shape[0] + 1:
            raise ValueError("indptr must have num_rows + 1 entries")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must span [0, nnz]")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of range")

    @classmethod
    def from_dense(cls, dense) -> "CsrMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        mask = dense != 0
        indptr = np.concatenate([[0], np.cumsum(mask.sum(axis=1))])
        cols = np.nonzero(mask)[1]
        return cls(dense[mask], cols, indptr, dense.shape)

    @property
    def nnz(self) -> int:
        return len(self.data)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        for row in range(self.shape[0]):
            lo, hi = self.indptr[row], self.indptr[row + 1]
            dense[row, self.indices[lo:hi]] = self.data[lo:hi]
        return dense


def spmv(matrix: CsrMatrix, x) -> np.ndarray:
    """``matrix @ x`` via elementwise product + segmented sum.

    >>> import numpy as np
    >>> m = CsrMatrix.from_dense(np.array([[1, 0], [2, 3]]))
    >>> spmv(m, np.array([10, 100])).tolist()
    [10, 320]
    """
    x = np.asarray(x)
    if x.shape != (matrix.shape[1],):
        raise ValueError(
            f"vector has shape {x.shape}, matrix needs ({matrix.shape[1]},)"
        )
    out_dtype = np.result_type(matrix.data.dtype, x.dtype)
    y = np.zeros(matrix.shape[0], dtype=out_dtype)
    if matrix.nnz == 0:
        return y
    with np.errstate(over="ignore"):
        products = (matrix.data.astype(out_dtype) * x[matrix.indices]).astype(out_dtype)
    # Head flags: the first nonzero of each non-empty row.
    flags = np.zeros(matrix.nnz, dtype=bool)
    row_starts = matrix.indptr[:-1]
    non_empty = np.diff(matrix.indptr) > 0
    flags[row_starts[non_empty]] = True
    sums = segmented_scan(products, flags)
    # Each row's total sits at its last nonzero.
    row_ends = matrix.indptr[1:][non_empty] - 1
    y[np.flatnonzero(non_empty)] = sums[row_ends]
    return y
