"""Blelloch's segmented-scan quicksort (the §1 application list).

Quicksort parallelizes with scans by keeping *every* recursive
partition in one flat array: segment head flags mark the current
partitions, and each round three-way-splits every active segment around
a per-segment pivot simultaneously.  All the bookkeeping — per-segment
ranks, split points, new heads — is prefix sums and segmented prefix
sums; one round is O(n) scan work, and random pivots give the expected
O(log n) rounds.

The implementation is fully vectorized: no per-segment Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.core.host import host_scan


def _segment_starts(flags: np.ndarray) -> np.ndarray:
    return np.flatnonzero(flags)


def _segment_ids(flags: np.ndarray) -> np.ndarray:
    return np.cumsum(flags.astype(np.int64)) - 1


def _per_segment_exclusive_rank(indicator: np.ndarray, seg_ids: np.ndarray,
                                starts: np.ndarray) -> np.ndarray:
    """For each element: how many earlier elements of its segment have
    ``indicator`` set (a segmented exclusive scan, via global scans)."""
    inclusive = host_scan(indicator.astype(np.int64))
    exclusive = inclusive - indicator
    base = exclusive[starts]
    return exclusive - base[seg_ids]


def _per_segment_total(indicator: np.ndarray, seg_ids: np.ndarray,
                       starts: np.ndarray, num_segments: int) -> np.ndarray:
    """Total of ``indicator`` per segment."""
    inclusive = host_scan(indicator.astype(np.int64))
    ends = np.concatenate([starts[1:] - 1, [len(indicator) - 1]])
    totals = inclusive[ends].copy()
    totals[1:] -= inclusive[starts[1:] - 1]
    return totals


def quicksort(keys, seed: int = 0, max_rounds: int = None) -> np.ndarray:
    """Sorted copy of ``keys`` via segmented-scan quicksort.

    Deterministic for a given ``seed`` (pivots are drawn from a seeded
    generator).  ``max_rounds`` guards against adversarial inputs; the
    default allows ~4 log2(n) + 32 rounds before falling back to the
    scan-based radix sort, so the function always terminates in
    near-linear scan work.

    >>> import numpy as np
    >>> quicksort(np.array([3, 1, 2], dtype=np.int64)).tolist()
    [1, 2, 3]
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be 1-D")
    n = len(keys)
    if n <= 1:
        return keys.copy()
    if max_rounds is None:
        max_rounds = 4 * int(np.ceil(np.log2(n))) + 32
    rng = np.random.default_rng(seed)

    work = keys.copy()
    flags = np.zeros(n, dtype=bool)
    flags[0] = True
    done = np.zeros(n, dtype=bool)

    for _ in range(max_rounds):
        if done.all():
            return work
        seg_ids = _segment_ids(flags)
        starts = _segment_starts(flags)
        num_segments = len(starts)
        lengths = np.diff(np.concatenate([starts, [n]]))

        # Segments of length 1 are trivially done.
        singletons = starts[lengths == 1]
        done[singletons] = True
        seg_active = (~done[starts]) & (lengths > 1)
        if not seg_active.any():
            return work
        elem_active = seg_active[seg_ids]

        # Random pivot per segment.
        offsets = rng.integers(0, lengths.max(), num_segments) % lengths
        pivots = work[starts + offsets]
        pivot_of = pivots[seg_ids]

        less = elem_active & (work < pivot_of)
        equal = elem_active & (work == pivot_of)
        greater = elem_active & (work > pivot_of)

        less_rank = _per_segment_exclusive_rank(less, seg_ids, starts)
        equal_rank = _per_segment_exclusive_rank(equal, seg_ids, starts)
        greater_rank = _per_segment_exclusive_rank(greater, seg_ids, starts)
        total_less = _per_segment_total(less, seg_ids, starts, num_segments)
        total_equal = _per_segment_total(equal, seg_ids, starts, num_segments)

        seg_start_of = starts[seg_ids]
        positions = np.arange(n, dtype=np.int64)
        new_positions = positions.copy()
        new_positions[less] = (seg_start_of + less_rank)[less]
        new_positions[equal] = (
            seg_start_of + total_less[seg_ids] + equal_rank
        )[equal]
        new_positions[greater] = (
            seg_start_of + (total_less + total_equal)[seg_ids] + greater_rank
        )[greater]

        permuted = np.empty_like(work)
        permuted[new_positions] = work
        new_done = np.zeros(n, dtype=bool)
        new_done[new_positions] = done
        work = permuted
        done = new_done

        # New segment heads: start of the less part (the old head),
        # the equal part, and the greater part of every active segment.
        new_flags = flags.copy()
        active_starts = starts[seg_active]
        eq_heads = active_starts + total_less[seg_active]
        gt_heads = eq_heads + total_equal[seg_active]
        new_flags[active_starts] = True
        new_flags[eq_heads[eq_heads < n]] = True
        valid_gt = gt_heads < np.concatenate([starts[1:], [n]])[seg_active]
        new_flags[gt_heads[valid_gt]] = True
        flags = new_flags

        # The equal part [eq_head, gt_head) of each active segment is
        # finished; mark the spans with a +1/-1 difference trick.
        span_marks = np.zeros(n + 1, dtype=np.int64)
        np.add.at(span_marks, eq_heads, 1)
        np.add.at(span_marks, gt_heads, -1)
        done |= np.cumsum(span_marks[:-1]) > 0

    # Round budget exhausted (adversarial input): finish with the
    # scan-based radix sort so the result is still correct.
    from repro.apps.radix_sort import radix_sort

    return radix_sort(keys)
