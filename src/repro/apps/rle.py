"""Run-length encoding and decoding, expressed entirely in scans.

Encoding: run heads are where a value differs from its predecessor;
the exclusive scan of the head mask numbers the runs; compaction
extracts each run's value and start, and adjacent-start differences
give the lengths.

Decoding: the exclusive scan of the lengths gives each run's output
offset; scattering run indices at those offsets and taking a running
maximum ("fill forward") assigns every output position its run.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.host import host_scan


def rle_encode(values) -> Tuple[np.ndarray, np.ndarray]:
    """Encode ``values`` into (run_values, run_lengths).

    >>> import numpy as np
    >>> vals, lens = rle_encode(np.array([7, 7, 7, 2, 2, 9]))
    >>> vals.tolist(), lens.tolist()
    ([7, 2, 9], [3, 2, 1])
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    n = len(values)
    if n == 0:
        return values.copy(), np.zeros(0, dtype=np.int64)
    heads = np.ones(n, dtype=bool)
    heads[1:] = values[1:] != values[:-1]
    starts = np.flatnonzero(heads)
    run_values = values[starts]
    run_lengths = np.diff(np.concatenate([starts, [n]])).astype(np.int64)
    return run_values, run_lengths


def rle_decode(run_values, run_lengths) -> np.ndarray:
    """Decode (run_values, run_lengths) back to the flat sequence.

    Built from two scans: an exclusive sum of the lengths (offsets) and
    an inclusive max-scan that forward-fills run ids.
    """
    run_values = np.asarray(run_values)
    run_lengths = np.asarray(run_lengths).astype(np.int64)
    if run_values.shape != run_lengths.shape or run_values.ndim != 1:
        raise ValueError("run_values and run_lengths must be aligned 1-D arrays")
    if np.any(run_lengths < 0):
        raise ValueError("run lengths must be non-negative")
    total = int(run_lengths.sum())
    if total == 0:
        return run_values[:0].copy()
    offsets = host_scan(run_lengths, inclusive=False)
    # Scatter each (non-empty) run's index at its start, then
    # forward-fill with an inclusive max-scan.
    run_ids = np.zeros(total, dtype=np.int64)
    nonempty = run_lengths > 0
    run_ids[offsets[nonempty]] = np.flatnonzero(nonempty)
    run_ids = host_scan(run_ids, op="max")
    return run_values[run_ids]
