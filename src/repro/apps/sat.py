"""Summed-area tables — 2-D prefix sums via the *tuple* generalization.

Summed-area table generation was one of the earliest GPU scan uses the
paper cites ([13]).  A SAT needs prefix sums along rows and then along
columns.  The column pass is exactly the paper's tuple-based prefix
sum: scanning a row-major image with ``tuple_size = num_cols`` computes
``num_cols`` interleaved sums — one per column — without any transpose.

This makes SAT a two-call client of the public API, and a neat
demonstration that the tuple generalization is not only about (x, y)
record streams.
"""

from __future__ import annotations

import numpy as np

from repro.api import prefix_sum


def summed_area_table(image, engine=None) -> np.ndarray:
    """Inclusive 2-D prefix sum of a 2-D array.

    ``sat[i, j] = sum(image[:i+1, :j+1])``, with wraparound semantics
    for fixed-width integer dtypes.  ``engine`` optionally routes both
    passes through a simulated-GPU engine.

    >>> import numpy as np
    >>> summed_area_table(np.ones((2, 3), dtype=np.int32)).tolist()
    [[1, 2, 3], [2, 4, 6]]
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    rows, cols = image.shape
    if image.size == 0:
        return image.copy()
    # Pass 1: prefix sums along each row.
    row_scanned = prefix_sum_rows(image).reshape(-1)
    # Pass 2: column sums = a tuple-based prefix sum of the row-major
    # buffer with tuple_size = num_cols (no transpose needed).
    if engine is None:
        col_scanned = prefix_sum(row_scanned, tuple_size=cols)
    else:
        col_scanned = engine.run(row_scanned, tuple_size=cols).values
    return col_scanned.reshape(rows, cols)


def prefix_sum_rows(image) -> np.ndarray:
    """Inclusive prefix sum along each row (wraparound-exact)."""
    image = np.asarray(image)
    with np.errstate(over="ignore"):
        return np.cumsum(image, axis=1, dtype=image.dtype)


def box_sum(sat, top: int, left: int, bottom: int, right: int):
    """Sum of ``image[top:bottom+1, left:right+1]`` from its SAT in O(1).

    The standard four-corner identity — the whole point of SATs.
    """
    sat = np.asarray(sat)
    if not (0 <= top <= bottom < sat.shape[0] and 0 <= left <= right < sat.shape[1]):
        raise ValueError("box out of bounds")
    with np.errstate(over="ignore"):
        total = sat[bottom, right]
        if top > 0:
            total = total - sat[top - 1, right]
        if left > 0:
            total = total - sat[bottom, left - 1]
        if top > 0 and left > 0:
            total = total + sat[top - 1, left - 1]
    return total
