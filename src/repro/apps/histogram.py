"""Histograms via sort + run boundaries (the scan formulation).

Histograms are on the paper's §1 application list.  The scan-friendly
formulation sorts the keys (radix sort — itself scans), finds run
boundaries, and differences the boundary positions; no atomics needed.
"""

from __future__ import annotations

import numpy as np

from repro.apps.radix_sort import radix_sort
from repro.apps.rle import rle_encode


def histogram(values, num_bins: int) -> np.ndarray:
    """Counts of integer values in ``[0, num_bins)``.

    >>> import numpy as np
    >>> histogram(np.array([1, 1, 3, 0, 1], dtype=np.int32), 4).tolist()
    [1, 3, 0, 1]
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    if values.size and (values.min() < 0 or values.max() >= num_bins):
        raise ValueError(f"values must lie in [0, {num_bins})")
    counts = np.zeros(num_bins, dtype=np.int64)
    if values.size == 0:
        return counts
    sorted_values = radix_sort(values.astype(np.int64))
    run_values, run_lengths = rle_encode(sorted_values)
    counts[run_values] = run_lengths
    return counts


def histogram_equalization_map(values, num_bins: int) -> np.ndarray:
    """CDF-based remap table (the classic image-processing use).

    The cumulative distribution is, of course, a prefix sum of the
    histogram; returns the bin -> equalized-bin table.
    """
    from repro.core.host import host_scan

    counts = histogram(values, num_bins)
    total = counts.sum()
    if total == 0:
        return np.arange(num_bins, dtype=np.int64)
    cdf = host_scan(counts)
    # Standard equalization: scale the CDF to the bin range.
    cdf_min = cdf[np.argmax(counts > 0)]
    denominator = max(1, int(total - cdf_min))
    remap = (cdf - cdf_min) * (num_bins - 1) // denominator
    return np.clip(remap, 0, num_bins - 1)
