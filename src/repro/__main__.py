"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scan <in> <out>``
    Run a generalized prefix scan over a raw binary file of integers
    on a selectable engine (``--engine host|parallel|sam|...``,
    ``--op``, ``--order``, ``--tuple-size``, ``--exclusive``,
    ``--workers``).
``compress <in> <out>``
    Delta-compress a raw binary file of integers (``--dtype``,
    ``--order`` auto-selected when omitted, ``--tuple-size``).
``decompress <in> <out>``
    Invert ``compress`` (the decode *is* the generalized prefix sum).
``figures [fig03 ...]``
    Print the paper's figures as text tables (default: all).
``table1``
    Print Table 1.
``checks``
    Run every headline claim against the performance model.
``traffic``
    Measure the 2n/3n/4n traffic coefficients on the simulator.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_scan(args) -> int:
    from repro.api import resolve_engine
    from repro.core.host import host_prefix_sum
    from repro.ops import get_op

    values = np.fromfile(args.input, dtype=np.dtype(args.dtype))
    op = get_op(args.op)
    inclusive = not args.exclusive
    if args.engine == "parallel" and args.workers:
        from repro.parallel import ParallelSamScan

        engine = ParallelSamScan(num_workers=args.workers)
    else:
        engine = resolve_engine(args.engine)
    if engine is None:
        out = host_prefix_sum(
            values, order=args.order, tuple_size=args.tuple_size,
            op=op, inclusive=inclusive,
        )
        used = "host"
    else:
        result = engine.run(
            values, order=args.order, tuple_size=args.tuple_size,
            op=op, inclusive=inclusive,
        )
        out = result.values
        used = getattr(result, "engine_used", args.engine)
    out.tofile(args.output)
    kind = "inclusive" if inclusive else "exclusive"
    print(
        f"{args.input}: {kind} {args.op} scan of {len(values):,} x "
        f"{args.dtype} (order {args.order}, tuple size {args.tuple_size}) "
        f"on engine {used} -> {args.output}"
    )
    return 0


def _cmd_compress(args) -> int:
    from repro.compression import DeltaCodec

    values = np.fromfile(args.input, dtype=np.dtype(args.dtype))
    codec = DeltaCodec()
    order = None if args.order == 0 else args.order
    blob = codec.compress(values, order=order, tuple_size=args.tuple_size)
    with open(args.output, "wb") as fh:
        fh.write(blob.data)
    print(
        f"{args.input}: {values.nbytes:,} bytes -> {blob.nbytes:,} bytes "
        f"(ratio {blob.ratio():.2f}x, order {blob.order}, "
        f"tuple size {blob.tuple_size})"
    )
    return 0


def _cmd_decompress(args) -> int:
    from repro.compression import DeltaCodec

    with open(args.input, "rb") as fh:
        data = fh.read()
    codec = DeltaCodec()
    values = codec.decompress(data)
    values.tofile(args.output)
    print(f"{args.input}: decoded {len(values):,} x {values.dtype} -> {args.output}")
    return 0


def _cmd_figures(args) -> int:
    from repro.harness import (
        FIGURES,
        format_figure,
        generate_figure,
        render_sparklines,
    )

    targets = args.figure or sorted(FIGURES)
    for fig_id in targets:
        data = generate_figure(fig_id)
        print(format_figure(data))
        print()
        print(render_sparklines(data))
        print()
    return 0


def _cmd_table1(args) -> int:
    from repro.harness import format_table1

    print(format_table1())
    return 0


def _cmd_checks(args) -> int:
    from repro.harness import run_headline_checks

    results = run_headline_checks()
    failed = 0
    for result in results:
        status = "ok " if result["passed"] else "FAIL"
        if not result["passed"]:
            failed += 1
        print(f"[{status}] {result['figure']}: {result['paper_claim']}")
        print(f"       model: {result['measured']}")
    print(f"\n{len(results) - failed}/{len(results)} checks pass")
    return 1 if failed else 0


def _cmd_traffic(args) -> int:
    from repro.baselines import (
        DecoupledLookbackScan,
        ReduceThenScan,
        ThreePhaseScan,
    )
    from repro.core import SamScan
    from repro.gpusim import TITAN_X

    values = np.random.default_rng(0).integers(-1000, 1000, args.n).astype(np.int32)
    kw = dict(threads_per_block=128, items_per_thread=2)
    engines = [
        ("sam", SamScan(spec=TITAN_X, num_blocks=8, **kw)),
        ("cub", DecoupledLookbackScan(spec=TITAN_X, **kw)),
        ("mgpu", ReduceThenScan(spec=TITAN_X, **kw)),
        ("thrust", ThreePhaseScan(spec=TITAN_X, **kw)),
    ]
    print(f"simulator-measured global words per element, n = {args.n:,}:")
    for name, engine in engines:
        result = engine.run(values, order=args.order)
        print(f"  {name:>7} (order {args.order}): {result.words_per_element():.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Higher-order and tuple-based prefix sums (PLDI'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scan", help="prefix-scan a raw integer file")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--dtype", default="int32",
                   choices=["int32", "int64", "uint32", "uint64"])
    p.add_argument("--op", default="add",
                   choices=["add", "max", "min", "xor", "and", "or", "mul"])
    p.add_argument("--order", type=int, default=1)
    p.add_argument("--tuple-size", type=int, default=1)
    p.add_argument("--exclusive", action="store_true",
                   help="exclusive scan (default: inclusive)")
    from repro.api import ENGINE_NAMES

    p.add_argument("--engine", default="host", choices=list(ENGINE_NAMES),
                   help="host (default), parallel (multicore shared "
                        "memory), or a simulated-GPU engine")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes for --engine parallel "
                        "(0 = cpu count)")
    p.set_defaults(fn=_cmd_scan)

    p = sub.add_parser("compress", help="delta-compress a raw integer file")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--dtype", default="int32", choices=["int32", "int64"])
    p.add_argument("--order", type=int, default=0, help="0 = auto-select")
    p.add_argument("--tuple-size", type=int, default=1)
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help="invert compress")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("figures", help="print the paper's figures")
    p.add_argument("figure", nargs="*", help="e.g. fig03 (default: all)")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("table1", help="print Table 1")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("checks", help="run the headline-claim checks")
    p.set_defaults(fn=_cmd_checks)

    p = sub.add_parser("traffic", help="measure traffic coefficients")
    p.add_argument("--n", type=int, default=32768)
    p.add_argument("--order", type=int, default=1)
    p.set_defaults(fn=_cmd_traffic)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
