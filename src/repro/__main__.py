"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scan <in> <out>``
    Run a generalized prefix scan over a raw binary file of integers
    on a selectable engine (``--engine auto|host|parallel|sam|...``,
    ``--op``, ``--order``, ``--tuple-size``, ``--exclusive``,
    ``--workers``).  The default engine ``auto`` is the execution
    planner (:mod:`repro.plan`): it picks the strategy from the data
    and the machine; ``--explain`` prints its candidate table (sizes,
    predicted costs, rationale) without running the scan.
``stream <in> <out>``
    Scan a file out of core: memory-mapped, chunked through a
    streaming session (``--chunk-bytes``), bit-identical to ``scan``,
    with durable checkpoints (``--checkpoint``, ``--checkpoint-every``)
    and crash recovery (``--resume``).  Takes the same scan options as
    ``scan`` including ``--engine`` and ``--workers``.  With
    ``--shards N`` (N > 1) the job runs on the sharded driver: N
    contiguous shards scanned concurrently and spliced, with a
    per-shard manifest at ``--checkpoint`` so ``--resume`` re-runs
    only unfinished shards (``--workers`` then also caps concurrent
    shard tasks).  Compressed containers fuse into the pipeline:
    ``--input-format blocked`` (or auto-sniffing) decodes a ``.samb``
    container chunk by chunk, and ``--output-format blocked`` re-encodes
    the scanned stream on the way out.
``compress <in> <out>``
    Delta-compress a raw binary file of integers (``--dtype``,
    ``--order`` auto-selected when omitted, ``--tuple-size``).
    ``--blocked`` streams through the incremental block writer in
    constant memory and emits a ``.samb`` container.
``decompress <in> <out>``
    Invert ``compress`` (the decode *is* the generalized prefix sum);
    blocked containers are sniffed and decoded block at a time.
``serve``
    Run the async scan service: named sessions fed by many concurrent
    clients over TCP (``--host``/``--port``) or a unix socket
    (``--unix``), coalescing compatible feeds into batched kernel
    dispatches (``--batch-max``), with per-connection backpressure
    (``--max-inflight-bytes``) and whole-registry durability
    (``--checkpoint``, ``--checkpoint-every``, ``--restore``).
``feed <in> <out>``
    Stream a raw binary file through a served session
    (``--connect host:port|unix:PATH``, ``--session NAME``) in
    ``--chunk-bytes`` chunks, pipelined ``--window`` deep.  Resumes
    from the server's current offset, so re-running after a server
    restart completes the output file bit-identically.
``figures [fig03 ...]``
    Print the paper's figures as text tables (default: all).
``table1``
    Print Table 1.
``checks``
    Run every headline claim against the performance model.
``traffic``
    Measure the 2n/3n/4n traffic coefficients on the simulator.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cli_float_mode(args):
    """The scan/stream commands' resolved ``--float-mode`` (None when
    the flag is absent — integer workloads and the exact default)."""
    return getattr(args, "float_mode", None)


def _resolve_cli_engine(name: str, workers: int, threads: int = 0, float_mode=None):
    """Engine construction shared by ``scan`` and ``stream``.

    ``--workers`` applies to *both* multicore engines — ``parallel``
    and the ``parallel_chained`` carry ablation (it used to be silently
    ignored for the latter).  ``--threads`` configures the in-memory
    slab-parallel engine (``--engine threaded``; 0 = auto).
    ``--float-mode`` reaches the engines that implement the contract
    (see :func:`repro.api.resolve_engine`).
    """
    if name in ("parallel", "parallel_chained") and workers:
        from repro.parallel import ParallelSamScan

        scheme = "chained" if name == "parallel_chained" else "decoupled"
        return ParallelSamScan(num_workers=workers, carry_scheme=scheme)
    if name == "threaded" and threads:
        from repro.kernels import ThreadedScan

        return ThreadedScan(threads=threads, float_mode=float_mode)
    from repro.api import resolve_engine

    return resolve_engine(name, float_mode=float_mode)


def _cmd_explain(args) -> int:
    """``--explain``: print the planner's candidate table, scan nothing.

    Reads only the input's byte size — never its contents — so it is
    safe to run against files too large to load.
    """
    import os

    from repro.plan import explain_scan

    plan = explain_scan(
        nbytes=os.path.getsize(args.input),
        dtype=args.dtype,
        op=args.op,
        order=args.order,
        tuple_size=args.tuple_size,
        inclusive=not args.exclusive,
        source=args.explain_source,
        float_mode=_cli_float_mode(args),
    )
    print(plan.explain())
    return 0


def _cmd_scan(args) -> int:
    from repro.core.host import host_prefix_sum
    from repro.ops import get_op

    if args.explain:
        return _cmd_explain(args)
    values = np.fromfile(args.input, dtype=np.dtype(args.dtype))
    op = get_op(args.op)
    inclusive = not args.exclusive
    float_mode = _cli_float_mode(args)
    if args.engine == "auto" and not args.workers and not args.threads:
        from repro.plan import PLANNER_COUNTERS, auto_scan

        out = auto_scan(
            values, op=op, order=args.order, tuple_size=args.tuple_size,
            inclusive=inclusive, float_mode=float_mode,
        )
        out.tofile(args.output)
        kind = "inclusive" if inclusive else "exclusive"
        print(
            f"{args.input}: {kind} {args.op} scan of {len(values):,} x "
            f"{args.dtype} (order {args.order}, tuple size {args.tuple_size}) "
            f"planned onto {PLANNER_COUNTERS.last_strategy or 'serial'} "
            f"-> {args.output}"
        )
        return 0
    engine = _resolve_cli_engine(
        args.engine, args.workers, args.threads, float_mode=float_mode
    )
    if engine is None:
        if float_mode == "compensated" and values.dtype.kind == "f":
            from repro.api import _host_compensated

            out = _host_compensated(
                values, op, args.order, args.tuple_size, inclusive
            )
        else:
            out = host_prefix_sum(
                values, order=args.order, tuple_size=args.tuple_size,
                op=op, inclusive=inclusive,
                threads=args.threads or None,
            )
        used = "host"
    else:
        result = engine.run(
            values, order=args.order, tuple_size=args.tuple_size,
            op=op, inclusive=inclusive,
        )
        out = result.values
        used = getattr(result, "engine_used", args.engine)
    out.tofile(args.output)
    kind = "inclusive" if inclusive else "exclusive"
    print(
        f"{args.input}: {kind} {args.op} scan of {len(values):,} x "
        f"{args.dtype} (order {args.order}, tuple size {args.tuple_size}) "
        f"on engine {used} -> {args.output}"
    )
    return 0


def _cmd_stream_planned(args) -> int:
    """Flag-less ``stream``: let :mod:`repro.plan` pick the driver."""
    import sys as _sys

    from repro.api import scan_file
    from repro.stream import StreamError

    try:
        result = scan_file(
            args.input,
            args.output,
            dtype=args.dtype,
            op=args.op,
            order=args.order,
            tuple_size=args.tuple_size,
            inclusive=not args.exclusive,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            input_format=args.input_format,
            float_mode=_cli_float_mode(args),
        )
    except StreamError as exc:
        print(f"stream failed: {exc}", file=_sys.stderr)
        if args.checkpoint and not args.resume:
            print(
                f"re-run with --resume to continue from {args.checkpoint}",
                file=_sys.stderr,
            )
        return 1
    c = result.counters
    kind = "exclusive" if args.exclusive else "inclusive"
    strategy = c.planner_strategy or "pinned by checkpoint"
    priced = "calibrated" if c.planner_cache_hits else "modeled"
    print(
        f"{args.input}: streamed {kind} {args.op} scan of "
        f"{result.elements:,} x {result.dtype} (order {args.order}, "
        f"tuple size {args.tuple_size}) planned onto {strategy} "
        f"({priced}) -> {args.output}"
    )
    print(
        f"  phases: read {c.seconds_read:.3f}s  scan {c.seconds_scan:.3f}s  "
        f"write {c.seconds_write:.3f}s  checkpoint {c.seconds_checkpoint:.3f}s  "
        f"splice {c.seconds_splice:.3f}s  fold {c.seconds_fold:.3f}s"
    )
    _print_compression(c)
    return 0


def _print_compression(c) -> None:
    """One extra status line when either side of the job was compressed."""
    if not (c.compressed_bytes_in or c.compressed_bytes_out):
        return
    parts = []
    if c.compressed_bytes_in:
        parts.append(
            f"in {c.compressed_bytes_in:,} B "
            f"({c.compression_ratio_in():.2f}x, decode {c.seconds_decode:.3f}s)"
        )
    if c.compressed_bytes_out:
        parts.append(
            f"out {c.compressed_bytes_out:,} B "
            f"({c.compression_ratio_out():.2f}x, encode {c.seconds_encode:.3f}s)"
        )
    print(f"  compressed: {'  '.join(parts)}")


def _cmd_stream(args) -> int:
    import sys as _sys

    from repro.stream import DEFAULT_CHUNK_BYTES, StreamError, scan_file

    if args.explain:
        return _cmd_explain(args)
    if args.output_format == "blocked" and args.shards and args.shards > 1:
        print(
            "blocked output is single-session only (the sharded fold "
            "rewrites output in place); drop --shards or --output-format",
            file=_sys.stderr,
        )
        return 2
    if (
        args.engine == "auto"
        and not args.shards
        and not args.threads
        and not args.workers
        and args.chunk_bytes == DEFAULT_CHUNK_BYTES
        and not args.adaptive_chunks
        and args.fail_after_chunks is None
        and args.fail_after_shards is None
        and args.output_format == "raw"
    ):
        return _cmd_stream_planned(args)
    if args.shards and args.shards > 1:
        return _cmd_stream_sharded(args)
    float_mode = _cli_float_mode(args)
    engine = _resolve_cli_engine(
        args.engine, args.workers, args.threads, float_mode=float_mode
    )
    out_kwargs = {}
    if args.output_block_elements is not None:
        out_kwargs["output_block_elements"] = args.output_block_elements
    try:
        result = scan_file(
            args.input,
            args.output,
            dtype=args.dtype,
            op=args.op,
            order=args.order,
            tuple_size=args.tuple_size,
            inclusive=not args.exclusive,
            engine=engine,
            chunk_bytes=args.chunk_bytes,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            threads=args.threads or None,
            float_mode=float_mode,
            adaptive_chunks=args.adaptive_chunks,
            fail_after_chunks=args.fail_after_chunks,
            input_format=args.input_format,
            output_format=args.output_format,
            **out_kwargs,
        )
    except StreamError as exc:
        print(f"stream failed: {exc}", file=_sys.stderr)
        if args.checkpoint and not args.resume:
            print(
                f"re-run with --resume to continue from {args.checkpoint}",
                file=_sys.stderr,
            )
        return 1
    c = result.counters
    kind = "exclusive" if args.exclusive else "inclusive"
    resumed = (
        f", resumed at element {result.resumed_from:,}" if result.resumed_from else ""
    )
    print(
        f"{args.input}: streamed {kind} {args.op} scan of "
        f"{result.elements:,} x {result.dtype} (order {args.order}, "
        f"tuple size {args.tuple_size}) in {c.chunks} chunks on engine "
        f"{c.engine_used}{resumed} -> {args.output}"
    )
    print(
        f"  phases: read {c.seconds_read:.3f}s  scan {c.seconds_scan:.3f}s  "
        f"write {c.seconds_write:.3f}s  checkpoint {c.seconds_checkpoint:.3f}s  "
        f"({c.checkpoint_writes} checkpoint writes)"
    )
    _print_compression(c)
    return 0


def _cmd_stream_sharded(args) -> int:
    import sys as _sys

    from repro.stream import StreamError, scan_file_sharded

    float_mode = _cli_float_mode(args)
    engine = _resolve_cli_engine(
        args.engine, args.workers, args.threads, float_mode=float_mode
    )
    try:
        result = scan_file_sharded(
            args.input,
            args.output,
            dtype=args.dtype,
            op=args.op,
            order=args.order,
            tuple_size=args.tuple_size,
            inclusive=not args.exclusive,
            engine=engine,
            shards=args.shards,
            workers=args.workers or None,
            chunk_bytes=args.chunk_bytes,
            checkpoint=args.checkpoint,
            resume=args.resume,
            threads=args.threads or None,
            float_mode=float_mode,
            input_format=args.input_format,
            fail_after_shards=args.fail_after_shards,
        )
    except StreamError as exc:
        print(f"stream failed: {exc}", file=_sys.stderr)
        if args.checkpoint and not args.resume:
            print(
                f"re-run with --resume to continue from {args.checkpoint}",
                file=_sys.stderr,
            )
        return 1
    c = result.counters
    kind = "exclusive" if args.exclusive else "inclusive"
    resumed = (
        f", resumed ({result.resumed_shards} shard phases already done)"
        if c.resumes
        else ""
    )
    print(
        f"{args.input}: sharded {kind} {args.op} scan of "
        f"{result.elements:,} x {result.dtype} (order {args.order}, "
        f"tuple size {args.tuple_size}) across {result.num_shards} shards "
        f"({result.passes} pass{'es' if result.passes != 1 else ''}) on "
        f"engine {c.engine_used}{resumed} -> {args.output}"
    )
    print(
        f"  shards: {c.shards} scanned, {c.primed_shards} primed, "
        f"{c.folded_shards} folded, {c.chunk_resizes} chunk resizes"
    )
    print(
        f"  phases: read {c.seconds_read:.3f}s  scan {c.seconds_scan:.3f}s  "
        f"write {c.seconds_write:.3f}s  splice {c.seconds_splice:.3f}s  "
        f"fold {c.seconds_fold:.3f}s  checkpoint {c.seconds_checkpoint:.3f}s"
    )
    _print_compression(c)
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal
    import sys as _sys

    from repro.serve import ScanServer, SessionRegistry
    from repro.stream.errors import CheckpointError

    registry = SessionRegistry()
    if args.restore:
        if not args.checkpoint:
            print("--restore needs --checkpoint", file=_sys.stderr)
            return 2
        try:
            restored = registry.load(args.checkpoint)
        except CheckpointError as exc:
            print(f"restore failed: {exc}", file=_sys.stderr)
            return 1
        print(f"repro-serve: restored {restored} sessions from "
              f"{args.checkpoint}", flush=True)
    server = ScanServer(
        registry,
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        batch_max=args.batch_max,
        max_inflight_bytes=args.max_inflight_bytes,
    )

    async def run():
        await server.start()
        print(f"repro-serve: listening on {server.address}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except NotImplementedError:
                pass
        await server.serve_forever()
        await server.stop()
        print("repro-serve: stopped", flush=True)

    asyncio.run(run())
    return 0


def _cmd_feed(args) -> int:
    import os
    import sys as _sys

    from repro.serve import ScanClient, ServeError

    dtype = np.dtype(args.dtype)
    values = np.fromfile(args.input, dtype=dtype)
    s = args.tuple_size
    per_chunk = max(1, args.chunk_bytes // dtype.itemsize)
    per_chunk = max(s, per_chunk - per_chunk % s)
    try:
        with ScanClient(args.connect) as client:
            reply = client.open(
                args.session,
                op=args.op,
                order=args.order,
                tuple_size=s,
                inclusive=not args.exclusive,
                dtype=args.dtype,
                float_mode=_cli_float_mode(args),
            )
            start = reply["offset"]
            if start:
                print(
                    f"session {args.session!r} already at element {start:,}; "
                    f"resuming from there"
                )
            if start > len(values):
                print(
                    f"server offset {start:,} is past the {len(values):,} "
                    f"elements in {args.input}", file=_sys.stderr,
                )
                return 1
            todo = values[start:]
            chunks = [
                todo[i : i + per_chunk] for i in range(0, len(todo), per_chunk)
            ]
            # Write each scanned chunk at its element position the
            # moment its reply arrives, so everything delivered before
            # a server crash is already on disk — a rerun then resumes
            # from the server's restored offset and completes the same
            # output file a single run would have produced.
            mode = "r+b" if os.path.exists(args.output) else "w+b"
            with open(args.output, mode) as fh:

                def write_result(index, out, _fh=fh):
                    _fh.seek((start + index * per_chunk) * dtype.itemsize)
                    _fh.write(np.ascontiguousarray(out).tobytes())

                client.feed_many(
                    args.session, chunks,
                    window=args.window, on_result=write_result,
                )
                fh.flush()
                os.fsync(fh.fileno())
    except ServeError as exc:
        print(f"feed failed: {exc}", file=_sys.stderr)
        print(
            "if the server restarted, re-run this command: the feed "
            "resumes from the server's restored offset",
            file=_sys.stderr,
        )
        return 1
    kind = "exclusive" if args.exclusive else "inclusive"
    print(
        f"{args.input}: fed {len(values) - start:,} x {args.dtype} "
        f"({kind} {args.op}, order {args.order}, tuple size {s}) through "
        f"session {args.session!r} at {args.connect} in {len(chunks)} "
        f"chunks -> {args.output}"
    )
    return 0


def _cmd_compress(args) -> int:
    import os

    dtype = np.dtype(args.dtype)
    order = None if args.order == 0 else args.order
    if args.blocked:
        # Streaming path: memory-map the input and feed block-sized
        # chunks through the incremental writer — peak memory is a few
        # blocks, whatever the file size.
        from repro.compression.stream import BlockedStreamWriter

        nbytes = os.path.getsize(args.input)
        if nbytes % dtype.itemsize:
            print(
                f"{args.input} is {nbytes} bytes, not a multiple of "
                f"{dtype.name}'s {dtype.itemsize}-byte item size",
                file=sys.stderr,
            )
            return 2
        count = nbytes // dtype.itemsize
        source = (
            np.memmap(args.input, dtype=dtype, mode="r")
            if count
            else np.zeros(0, dtype=dtype)
        )
        with BlockedStreamWriter(
            args.output, dtype=dtype, total_count=count,
            tuple_size=args.tuple_size, block_elements=args.block_elements,
            order=order,
        ) as writer:
            step = max(
                writer.block_elements,
                ((4 << 20) // dtype.itemsize // writer.block_elements)
                * writer.block_elements,
            )
            pos = 0
            while pos < count:
                take = min(step, count - pos)
                writer.feed(np.array(source[pos : pos + take], copy=True))
                pos += take
        out_bytes = os.path.getsize(args.output)
        print(
            f"{args.input}: {nbytes:,} bytes -> {out_bytes:,} bytes "
            f"(ratio {nbytes / max(1, out_bytes):.2f}x, blocked "
            f"{writer.block_elements} elements/block, "
            f"tuple size {args.tuple_size})"
        )
        return 0

    from repro.compression import DeltaCodec

    values = np.fromfile(args.input, dtype=dtype)
    codec = DeltaCodec()
    blob = codec.compress(values, order=order, tuple_size=args.tuple_size)
    with open(args.output, "wb") as fh:
        fh.write(blob.data)
    print(
        f"{args.input}: {values.nbytes:,} bytes -> {blob.nbytes:,} bytes "
        f"(ratio {blob.ratio():.2f}x, order {blob.order}, "
        f"tuple size {blob.tuple_size})"
    )
    return 0


def _cmd_decompress(args) -> int:
    from repro.compression.stream import BlockedFileReader, is_blocked_file

    if is_blocked_file(args.input):
        # Blocked containers decode block-at-a-time: peak memory is one
        # block, whatever the container size.
        with BlockedFileReader(args.input) as reader, \
                open(args.output, "wb") as fh:
            for block in range(reader.num_blocks):
                values = np.ascontiguousarray(reader.read_block(block))
                fh.write(memoryview(values).cast("B"))
            count, dtype, ratio = reader.count, reader.dtype, reader.ratio()
        print(
            f"{args.input}: decoded {count:,} x {dtype} "
            f"(blocked, ratio {ratio:.2f}x) -> {args.output}"
        )
        return 0

    from repro.compression import DeltaCodec

    with open(args.input, "rb") as fh:
        data = fh.read()
    codec = DeltaCodec()
    values = codec.decompress(data)
    values.tofile(args.output)
    print(f"{args.input}: decoded {len(values):,} x {values.dtype} -> {args.output}")
    return 0


def _cmd_figures(args) -> int:
    from repro.harness import (
        FIGURES,
        format_figure,
        generate_figure,
        render_sparklines,
    )

    targets = args.figure or sorted(FIGURES)
    for fig_id in targets:
        data = generate_figure(fig_id)
        print(format_figure(data))
        print()
        print(render_sparklines(data))
        print()
    return 0


def _cmd_table1(args) -> int:
    from repro.harness import format_table1

    print(format_table1())
    return 0


def _cmd_checks(args) -> int:
    from repro.harness import run_headline_checks

    results = run_headline_checks()
    failed = 0
    for result in results:
        status = "ok " if result["passed"] else "FAIL"
        if not result["passed"]:
            failed += 1
        print(f"[{status}] {result['figure']}: {result['paper_claim']}")
        print(f"       model: {result['measured']}")
    print(f"\n{len(results) - failed}/{len(results)} checks pass")
    return 1 if failed else 0


def _cmd_traffic(args) -> int:
    from repro.baselines import (
        DecoupledLookbackScan,
        ReduceThenScan,
        ThreePhaseScan,
    )
    from repro.core import SamScan
    from repro.gpusim import TITAN_X

    values = np.random.default_rng(0).integers(-1000, 1000, args.n).astype(np.int32)
    kw = dict(threads_per_block=128, items_per_thread=2)
    engines = [
        ("sam", SamScan(spec=TITAN_X, num_blocks=8, **kw)),
        ("cub", DecoupledLookbackScan(spec=TITAN_X, **kw)),
        ("mgpu", ReduceThenScan(spec=TITAN_X, **kw)),
        ("thrust", ThreePhaseScan(spec=TITAN_X, **kw)),
    ]
    print(f"simulator-measured global words per element, n = {args.n:,}:")
    for name, engine in engines:
        result = engine.run(values, order=args.order)
        print(f"  {name:>7} (order {args.order}): {result.words_per_element():.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Higher-order and tuple-based prefix sums (PLDI'16 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.api import ENGINE_NAMES

    def add_scan_options(p):
        p.add_argument("input")
        p.add_argument("output")
        p.add_argument("--dtype", default="int32",
                       choices=["int32", "int64", "uint32", "uint64",
                                "float32", "float64"])
        p.add_argument("--op", default="add",
                       choices=["add", "max", "min", "xor", "and", "or", "mul"])
        p.add_argument("--order", type=int, default=1)
        p.add_argument("--tuple-size", type=int, default=1)
        p.add_argument("--exclusive", action="store_true",
                       help="exclusive scan (default: inclusive)")
        p.add_argument("--float-mode", default=None,
                       choices=["exact", "compensated", "regrouped"],
                       help="float contract (float dtypes only): exact "
                            "(default) reproduces the sequential left fold "
                            "bit for bit; compensated scans with error-free "
                            "carries — more accurate AND deterministically "
                            "parallel across any thread/shard count; "
                            "regrouped allows carry-fold rounding (the "
                            "deprecated exact=False API tri-state)")
        p.add_argument("--engine", default="auto", choices=list(ENGINE_NAMES),
                       help="auto (default: the planner picks from the "
                            "data), host, parallel (multicore shared "
                            "memory), or a simulated-GPU engine")
        p.add_argument("--workers", type=int, default=0,
                       help="worker processes for the parallel engines "
                            "(0 = cpu count)")
        p.add_argument("--threads", type=int, default=0,
                       help="slab threads for the in-memory threaded "
                            "kernel (engine 'threaded' or chunk scans; "
                            "0 = auto)")
        p.add_argument("--explain", action="store_true",
                       help="print the planner's candidate table for this "
                            "input and exit without scanning")

    p = sub.add_parser("scan", help="prefix-scan a raw integer file")
    add_scan_options(p)
    p.set_defaults(fn=_cmd_scan, explain_source="memory")

    p = sub.add_parser(
        "stream",
        help="prefix-scan a file out of core (chunked, resumable)",
    )
    add_scan_options(p)
    from repro.stream import DEFAULT_CHECKPOINT_EVERY, DEFAULT_CHUNK_BYTES

    p.add_argument("--chunk-bytes", type=int, default=DEFAULT_CHUNK_BYTES,
                   help="per-chunk memory budget in bytes "
                        f"(default {DEFAULT_CHUNK_BYTES})")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="persist progress here (atomic) every "
                        "--checkpoint-every chunks")
    p.add_argument("--checkpoint-every", type=int,
                   default=DEFAULT_CHECKPOINT_EVERY, metavar="K",
                   help="chunks between checkpoints "
                        f"(default {DEFAULT_CHECKPOINT_EVERY})")
    p.add_argument("--resume", action="store_true",
                   help="continue from --checkpoint instead of restarting")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="N > 1: run the sharded driver (N contiguous "
                        "shards scanned concurrently and carry-spliced; "
                        "--checkpoint becomes a per-shard manifest)")
    p.add_argument("--adaptive-chunks", action="store_true",
                   help="resize chunks from measured per-chunk seconds "
                        "(single-session driver; sharded jobs adapt by "
                        "default)")
    p.add_argument("--input-format", default="auto",
                   choices=["auto", "raw", "blocked"],
                   help="input container: auto (default, sniffs the "
                        "blocked magic), raw bytes, or a blocked .samb "
                        "container (dtype/count come from its header)")
    p.add_argument("--output-format", default="raw",
                   choices=["raw", "blocked"],
                   help="write the scanned stream raw (default) or as a "
                        "blocked .samb container (single-session only)")
    p.add_argument("--output-block-elements", type=int, default=None,
                   metavar="N",
                   help="elements per block of a blocked output container")
    p.add_argument("--fail-after-chunks", type=int, default=None,
                   help=argparse.SUPPRESS)  # test hook: simulate a crash
    p.add_argument("--fail-after-shards", type=int, default=None,
                   help=argparse.SUPPRESS)  # test hook: simulate a crash
    p.set_defaults(fn=_cmd_stream, explain_source="file")

    p = sub.add_parser(
        "serve",
        help="run the async scan service (named sessions, batched feeds)",
    )
    from repro.serve.server import (
        DEFAULT_BATCH_MAX,
        DEFAULT_CHECKPOINT_EVERY,
        DEFAULT_MAX_INFLIGHT_BYTES,
    )

    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = pick a free one, announced on stdout)")
    p.add_argument("--unix", default=None, metavar="PATH",
                   help="listen on a unix socket instead of TCP")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="persist the whole session registry here "
                        "(atomic) every --checkpoint-every feeds")
    p.add_argument("--checkpoint-every", type=int,
                   default=DEFAULT_CHECKPOINT_EVERY, metavar="K",
                   help="feeds between registry checkpoints "
                        f"(default {DEFAULT_CHECKPOINT_EVERY})")
    p.add_argument("--restore", action="store_true",
                   help="restore the registry from --checkpoint before "
                        "listening (sessions resume bit-identically)")
    p.add_argument("--batch-max", type=int, default=DEFAULT_BATCH_MAX,
                   help="max feeds coalesced per dispatcher round "
                        f"(default {DEFAULT_BATCH_MAX})")
    p.add_argument("--max-inflight-bytes", type=int,
                   default=DEFAULT_MAX_INFLIGHT_BYTES,
                   help="per-connection pending-feed budget before BUSY "
                        f"replies (default {DEFAULT_MAX_INFLIGHT_BYTES})")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "feed",
        help="stream a raw integer file through a served scan session",
    )
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--connect", required=True, metavar="ADDR",
                   help="server address: host:port or unix:PATH")
    p.add_argument("--session", required=True, metavar="NAME")
    p.add_argument("--dtype", default="int32",
                   choices=["int32", "int64", "uint32", "uint64",
                            "float32", "float64"])
    p.add_argument("--op", default="add",
                   choices=["add", "max", "min", "xor", "and", "or", "mul"])
    p.add_argument("--order", type=int, default=1)
    p.add_argument("--tuple-size", type=int, default=1)
    p.add_argument("--exclusive", action="store_true",
                   help="exclusive scan (default: inclusive)")
    p.add_argument("--float-mode", default=None,
                   choices=["exact", "compensated", "regrouped"],
                   help="float contract for the served session "
                        "(float dtypes only; see 'scan --help')")
    p.add_argument("--chunk-bytes", type=int, default=1 << 16,
                   help="bytes per FEED frame (default 65536)")
    p.add_argument("--window", type=int, default=8,
                   help="pipelined FEEDs in flight (default 8)")
    p.set_defaults(fn=_cmd_feed)

    p = sub.add_parser("compress", help="delta-compress a raw integer file")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--dtype", default="int32", choices=["int32", "int64"])
    p.add_argument("--order", type=int, default=0, help="0 = auto-select")
    p.add_argument("--tuple-size", type=int, default=1)
    p.add_argument("--blocked", action="store_true",
                   help="write a blocked .samb container via the "
                        "streaming writer (constant memory; the output "
                        "feeds 'stream --input-format blocked' directly)")
    p.add_argument("--block-elements", type=int, default=65536, metavar="N",
                   help="elements per block with --blocked (default 65536)")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help="invert compress")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("figures", help="print the paper's figures")
    p.add_argument("figure", nargs="*", help="e.g. fig03 (default: all)")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("table1", help="print Table 1")
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("checks", help="run the headline-claim checks")
    p.set_defaults(fn=_cmd_checks)

    p = sub.add_parser("traffic", help="measure traffic coefficients")
    p.add_argument("--n", type=int, default=32768)
    p.add_argument("--order", type=int, default=1)
    p.set_defaults(fn=_cmd_traffic)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
