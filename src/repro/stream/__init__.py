"""repro.stream — out-of-core, resumable streaming scan sessions.

The subsystem has three layers:

* :class:`ScanSession` (``session.py``) — the O(1) carry state of the
  paper's single-pass algorithm, persisted across ``feed(chunk)``
  calls; bit-identical to a one-shot scan of the concatenation for
  every op / dtype / order / tuple size, inclusive and exclusive.
* Checkpoints (``checkpoint.py``) — atomic, integrity-hashed snapshots
  of a session (carry state + offset + config hash + counters).
* :func:`scan_file` (``driver.py``) — the out-of-core driver:
  memory-mapped input, double-buffered chunk pipelining through any
  inner engine, durable checkpoints every k chunks, ``resume=True``
  continuation after interruption.
* :func:`scan_file_sharded` (``sharded.py``) — the sharded driver:
  S contiguous shards scanned concurrently, carry-spliced on the host,
  and folded in parallel; per-shard manifest checkpoints resume only
  the unfinished shards.

Quickstart::

    from repro.stream import ScanSession, scan_file

    session = ScanSession(op="add", order=2, tuple_size=3)
    for chunk in chunks:                # arbitrary boundaries
        out.append(session.feed(chunk))

    scan_file("huge.bin", "scanned.bin", dtype="int64",
              chunk_bytes=32 << 20, checkpoint="job.ckpt", resume=True)
"""

from repro.stream.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    MANIFEST_KIND,
    MANIFEST_VERSION,
    build_checkpoint,
    build_shard_manifest,
    read_checkpoint,
    read_shard_manifest,
    write_checkpoint,
)
from repro.stream.counters import StreamCounters
from repro.stream.driver import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_CHUNK_BYTES,
    StreamResult,
    scan_file,
)
from repro.stream.errors import (
    CheckpointError,
    CheckpointMismatchError,
    InjectedFailureError,
    SessionStateError,
    StreamError,
)
from repro.stream.session import ScanSession, hash_config
from repro.stream.sharded import (
    ShardedResult,
    plan_shards,
    scan_file_sharded,
)

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointMismatchError",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_CHUNK_BYTES",
    "InjectedFailureError",
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "ScanSession",
    "SessionStateError",
    "ShardedResult",
    "StreamCounters",
    "StreamError",
    "StreamResult",
    "build_checkpoint",
    "build_shard_manifest",
    "hash_config",
    "plan_shards",
    "read_checkpoint",
    "read_shard_manifest",
    "scan_file",
    "scan_file_sharded",
    "write_checkpoint",
]
