"""``ScanSession`` — a prefix scan that accepts its input in chunks.

The paper's central object is the O(1) carry state that lets SAM scan
in a single pass: a persistent block only ever needs its per-order,
per-tuple-lane running totals to continue the scan from wherever it
stopped.  A :class:`ScanSession` generalizes that observation across
*time* instead of across blocks: it holds exactly that state — an
``(order, tuple_size)`` accumulator array plus the number of elements
consumed so far — and ``feed(chunk)`` returns the scanned chunk such
that the concatenation of all outputs is **bit-identical** to a
one-shot scan of the concatenation of all inputs, for every operator,
dtype (floats included), order, tuple size, and both inclusive and
exclusive flavors.  Chunk boundaries are arbitrary: empty chunks,
single elements, and edges that fall inside a tuple stride are all
fine, because the lane of a value is determined by its *global*
position, which the session tracks.

How bit-identity is kept
------------------------

Each of the ``order`` scan passes is continued through the shared
:mod:`repro.kernels` layer:

* **Host path (default).**  Integer chunks take the lean in-place
  kernel (:func:`repro.kernels.lane_scan`): one 2-D accumulate over
  all lanes, carry folded in afterwards — exact because fixed-width
  integer arithmetic is truly associative.  Float chunks take the
  exact prepend kernel (:func:`repro.kernels.lane_scan_exact`): the
  carry row is *prepended* to the chunk and the ufunc accumulate —
  a sequential left fold — reproduces the one-shot scan's exact
  sequence of partial results, float rounding included, which mere
  ``op(carry, local_scan)`` folding would change.  Unprimed lanes
  (no elements seen yet) are scanned without a prepend so that even
  non-identities-in-floating-point like ``0.0 + (-0.0)`` cannot leak
  in.

* **Delegated path (``engine=...``).**  For integer dtypes the chunk's
  stage scan is handed to any one-shot engine (the ``repro.parallel``
  pool, ``SamScan``, a baseline...) and the carry is folded on
  afterwards — exact because fixed-width integer arithmetic is truly
  associative (wraparound included).  The inner engine is constructed
  once and reused across chunks, so ``ParallelSamScan``'s warm worker
  pool amortizes over the whole stream.  Float inputs silently take
  the exact path: float addition is only pseudo-associative, and the
  session's contract is bit-identity with the one-shot host scan.

* **Float modes.**  The default float contract above is
  ``float_mode="exact"``.  ``float_mode="compensated"`` switches float
  streams to the error-free-carry kernel
  (:mod:`repro.kernels.compensated`): still bit-identical across any
  chunk split, *additionally* bit-identical across thread counts (so
  ``threads=`` applies to floats too) and batchable by the serve
  layer, and more accurate than the naive fold — at the cost of not
  being bit-identical to the exact mode's output.
  ``float_mode="regrouped"`` opts into the fast in-place integer-style
  fold (regrouped rounding).

Sessions serialize their entire state (:meth:`state_dict` /
:meth:`load_state_dict`) with the carry encoded byte-exactly — the
compensated error carry included — which is what makes the out-of-core
driver's checkpoints possible; a configuration hash guards against
resuming somebody else's state.
"""

from __future__ import annotations

import base64
import hashlib
import json
import time
from typing import Optional

import numpy as np

from repro import kernels
from repro.ops import get_op
from repro.stream.counters import StreamCounters
from repro.stream.errors import CheckpointMismatchError, SessionStateError


def _engine_label(engine) -> str:
    if engine is None:
        return "host"
    if isinstance(engine, str):
        return engine
    return type(engine).__name__


class ScanSession:
    """Persistent carry state for a chunked generalized prefix scan.

    Parameters
    ----------
    op:
        Operator name or :class:`repro.ops.AssociativeOp`.
    order / tuple_size / inclusive:
        The usual scan generalizations; fixed for the session's
        lifetime (they are part of the carry state's meaning).
    dtype:
        Element dtype.  ``None`` locks it on the first non-configured
        ``feed``; checkpoint-backed sessions always pass it explicitly.
    engine:
        Inner one-shot engine for the per-chunk stage scans: ``None``
        (exact host path), a name accepted by
        :func:`repro.api.resolve_engine`, or a constructed engine
        object.  Only consulted for integer dtypes (see module docs).
    threads:
        ``None`` (default) keeps the serial per-chunk kernel.  An int
        or ``"auto"`` routes integer host-path stage scans through the
        slab-parallel in-memory kernel
        (:func:`repro.kernels.threaded_lane_scan`) — bit-identical for
        integers; exact-mode float chunks keep the serial prepend path
        regardless (compensated-mode chunks *do* thread).  Not part of
        :meth:`config`: like the engine, the thread count never changes
        results, so checkpoints stay portable across it.
    float_mode:
        Float handling: ``"exact"`` (default — bit-identical to the
        one-shot serial scan), ``"compensated"`` (error-free carries:
        bit-identical for any chunk split *and* thread count, more
        accurate than the naive fold, parallel- and batch-friendly), or
        ``"regrouped"`` (the fast in-place fold; regroups rounding).
        Integers ignore it.  Part of :meth:`config` when non-default:
        the mode changes emitted bits, so checkpoints must not cross it.
    """

    def __init__(
        self,
        op="add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
        dtype=None,
        engine=None,
        threads=None,
        float_mode: Optional[str] = None,
    ):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if tuple_size < 1:
            raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
        if float_mode is not None and float_mode not in kernels.FLOAT_MODES:
            raise ValueError(
                f"float_mode must be one of {kernels.FLOAT_MODES}, "
                f"got {float_mode!r}"
            )
        self.op = get_op(op)
        self.order = int(order)
        self.tuple_size = int(tuple_size)
        self.inclusive = bool(inclusive)
        self._float_mode_param = float_mode
        # Resolved when the dtype locks (None for integer dtypes).
        self.float_mode: Optional[str] = None
        self._comp: Optional[np.ndarray] = None
        label = _engine_label(engine)
        if isinstance(engine, str):
            from repro.api import resolve_engine

            engine = resolve_engine(engine)
            if engine is None:  # "host" resolves to the exact path
                label = "host"
        self._engine = engine
        # None = serial kernel; "auto"/0/int = threaded slab kernel for
        # integer host-path chunks (resolved per chunk by the kernel).
        self.threads = threads
        self.counters = StreamCounters(engine_used=label)
        self.dtype: Optional[np.dtype] = None
        self._carry: Optional[np.ndarray] = None
        self._offset = 0
        if dtype is not None:
            self._set_dtype(dtype)

    def __repr__(self) -> str:
        return (
            f"ScanSession(op={self.op.name!r}, order={self.order}, "
            f"tuple_size={self.tuple_size}, inclusive={self.inclusive}, "
            f"dtype={None if self.dtype is None else self.dtype.name}, "
            f"offset={self._offset})"
        )

    # -- configuration & state -------------------------------------------

    @property
    def offset(self) -> int:
        """Total elements consumed so far (the stream position)."""
        return self._offset

    def config(self) -> dict:
        """The session's semantic configuration (engine excluded:
        engines are bit-identical, so a checkpoint taken on one engine
        may be resumed on another).  ``float_mode`` appears only when
        non-default — the mode changes emitted bits, but default-mode
        configs must stay byte-compatible with pre-mode checkpoints."""
        config = {
            "op": self.op.name,
            "order": self.order,
            "tuple_size": self.tuple_size,
            "inclusive": self.inclusive,
            "dtype": None if self.dtype is None else self.dtype.name,
        }
        mode = (
            self.float_mode if self.dtype is not None else self._float_mode_param
        )
        if mode in ("compensated", "regrouped"):
            config["float_mode"] = mode
        return config

    def config_hash(self) -> str:
        return hash_config(self.config())

    def state_dict(self) -> dict:
        """Byte-exact snapshot of the session (JSON-serializable)."""
        if self.dtype is None or self._carry is None:
            raise SessionStateError(
                "cannot snapshot a session before its dtype is known "
                "(pass dtype= at construction or feed a chunk first)"
            )
        state = {
            "offset": int(self._offset),
            "carry": base64.b64encode(self._carry.tobytes()).decode("ascii"),
            "config": self.config(),
            "config_hash": self.config_hash(),
        }
        if self._comp is not None:
            state["comp"] = base64.b64encode(self._comp.tobytes()).decode("ascii")
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by a compatibly-configured session."""
        config = state.get("config", {})
        mine = self.config()
        if config != mine:
            diffs = sorted(
                key
                for key in set(config) | set(mine)
                if config.get(key) != mine.get(key)
            )
            raise CheckpointMismatchError(
                f"session state belongs to a different configuration "
                f"(differs in {', '.join(diffs) or 'structure'}: "
                f"saved {config!r}, this session {mine!r})"
            )
        stored_hash = state.get("config_hash")
        if stored_hash is not None and stored_hash != hash_config(config):
            raise CheckpointMismatchError(
                f"session state is internally inconsistent: its config "
                f"hashes to {hash_config(config)!r} but records "
                f"{stored_hash!r} (edited or corrupted snapshot)"
            )
        raw = base64.b64decode(state["carry"])
        expected = self.order * self.tuple_size * self.dtype.itemsize
        if len(raw) != expected:
            raise CheckpointMismatchError(
                f"carry blob is {len(raw)} bytes, expected {expected}"
            )
        self._carry = (
            np.frombuffer(raw, dtype=self.dtype)
            .reshape(self.order, self.tuple_size)
            .copy()
        )
        if self.float_mode == "compensated":
            blob = state.get("comp")
            if blob is None:
                raise CheckpointMismatchError(
                    "compensated session state is missing its 'comp' "
                    "error-carry blob"
                )
            raw = base64.b64decode(blob)
            expected = self.order * 4 * self.tuple_size * self.dtype.itemsize
            if len(raw) != expected:
                raise CheckpointMismatchError(
                    f"comp blob is {len(raw)} bytes, expected {expected}"
                )
            self._comp = (
                np.frombuffer(raw, dtype=self.dtype)
                .reshape(self.order, 4, self.tuple_size)
                .copy()
            )
        self._offset = int(state["offset"])

    def _set_dtype(self, dtype) -> None:
        self.dtype = self.op.check_dtype(dtype)
        identity = self.op.identity(self.dtype)
        self._carry = np.full(
            (self.order, self.tuple_size), identity, dtype=self.dtype
        )
        self.float_mode = kernels.resolve_float_mode(
            self.dtype, self._float_mode_param, None
        )
        if self.float_mode == "compensated":
            from repro.kernels.compensated import check_compensated

            # Raises TypeError for unsupported (op, dtype) pairs.
            check_compensated(self.op, self.dtype)
            self._comp = np.stack(
                [
                    kernels.fresh_state(self.dtype, self.tuple_size)
                    for _ in range(self.order)
                ]
            )

    # -- feeding ---------------------------------------------------------

    def feed(self, chunk) -> np.ndarray:
        """Scan the next chunk; returns the scanned values.

        The concatenation of every returned chunk equals the one-shot
        scan of the concatenation of every fed chunk, bit for bit.
        """
        array = np.asarray(chunk)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D chunk, got shape {array.shape}")
        if self.dtype is None:
            self._set_dtype(array.dtype)
        else:
            resolved = self.op.check_dtype(array.dtype)
            if resolved != self.dtype:
                raise SessionStateError(
                    f"session is locked to dtype {self.dtype.name}, "
                    f"got a {resolved.name} chunk"
                )
        array = array.astype(self.dtype, copy=False)
        if array.size == 0:
            # Empty chunks are scan no-ops but real feed calls: count
            # them so StreamCounters.chunks always equals the number of
            # feed calls (and agrees with the driver's own chunk count).
            self.counters.chunks += 1
            self.counters.bytes_in += array.nbytes
            return array.copy()

        t0 = time.perf_counter()
        if (
            self.order > 1
            and self._engine is None
            and kernels.fused_supported(
                self.op, self.dtype, self.order, self.tuple_size
            )
        ):
            out = self._feed_fused(array)
        else:
            out = array
            for iteration in range(self.order):
                last = iteration == self.order - 1
                out = self._stage_pass(
                    out,
                    iteration,
                    inclusive_output=self.inclusive or not last,
                    # The first pass reads the caller's array (never
                    # mutate it); later passes own their buffer and
                    # scan in place.
                    own=iteration > 0,
                )
        self._offset += len(array)
        self.counters.chunks += 1
        self.counters.elements += len(array)
        self.counters.bytes_in += array.nbytes
        self.counters.seconds_scan += time.perf_counter() - t0
        return out

    # -- internals -------------------------------------------------------

    def _feed_fused(self, array: np.ndarray) -> np.ndarray:
        """Single-pass fused order-q feed (integer ADD, ``s >= 2``).

        The session's ``(order, tuple_size)`` carry *is* the fused
        carry matrix — row ``j-1`` holds the running order-``j`` lane
        totals — so one :func:`repro.kernels.fused_lane_scan` call
        replaces the ``order`` stage passes and advances the identical
        carry, bit for bit: checkpoints taken on either path resume on
        the other.
        """
        s, q, pos = self.tuple_size, self.order, self._offset
        prev_last = self._carry[q - 1].copy() if not self.inclusive else None
        out = array.copy()
        perm = kernels.phase_perm(pos, s)
        carry = np.ascontiguousarray(self._carry[:, perm])
        if self.threads is None:
            kernels.fused_lane_scan(out, self.op, s, q, carry)
        else:
            self.counters.threaded_scans += 1
            kernels.threaded_fused_lane_scan(
                out,
                self.op,
                s,
                q,
                carry,
                threads=None if self.threads in ("auto", 0) else self.threads,
            )
        self._carry[:, perm] = carry
        self.counters.fused_order_scans += 1
        if self.inclusive:
            return out
        heads = prev_last[perm]
        heads[perm >= pos] = self.op.identity(self.dtype)
        return kernels.exclusive_shift(out, heads)

    def _lane_scan(self, values, out, carry_row=None) -> np.ndarray:
        """One lane-scan pass: serial kernel, or slab-parallel when the
        session was opened with ``threads=``."""
        if self.threads is None:
            return kernels.lane_scan(
                values, self.op, self.tuple_size, out=out, carry=carry_row
            )
        self.counters.threaded_scans += 1
        return kernels.threaded_lane_scan(
            values,
            self.op,
            self.tuple_size,
            out=out,
            carry=carry_row,
            threads=None if self.threads in ("auto", 0) else self.threads,
        )

    def _seen_lanes(self) -> np.ndarray:
        """Which global lanes have received at least one element: lane
        ``l`` first appears at global index ``l``, so exactly the lanes
        below the stream offset."""
        return np.arange(self.tuple_size) < self._offset

    def _update_carry(self, iteration: int, scanned: np.ndarray) -> None:
        """Fold a scanned chunk's running totals into ``carry[iteration]``."""
        totals = kernels.phase_totals(scanned, self.tuple_size)
        if totals.size:
            lanes = (self._offset + np.arange(totals.size)) % self.tuple_size
            self._carry[iteration, lanes] = totals

    def _stage_pass(
        self,
        values: np.ndarray,
        iteration: int,
        inclusive_output: bool,
        own: bool,
    ) -> np.ndarray:
        prev_carry = self._carry[iteration].copy()
        incl = self._stage_inclusive(values, iteration, own)
        if inclusive_output:
            return incl
        # Exclusive = the lane-shifted inclusive continuation.  The
        # shifted-in heads are the lanes' pre-chunk running totals (or
        # the identity at the very start of the stream) — exactly the
        # values the one-shot exclusive shift would place there.
        s = self.tuple_size
        perm = kernels.phase_perm(self._offset, s)
        heads = prev_carry[perm]
        heads[perm >= self._offset] = self.op.identity(self.dtype)
        return kernels.exclusive_shift(incl, heads)

    def _stage_inclusive(
        self, values: np.ndarray, iteration: int, own: bool
    ) -> np.ndarray:
        """One inclusive stage pass; updates ``carry[iteration]``."""
        if self._engine is not None and self.dtype.kind in "iu":
            return self._stage_inclusive_delegated(values, iteration)
        return self._stage_inclusive_host(values, iteration, own)

    def _stage_inclusive_host(
        self, values: np.ndarray, iteration: int, own: bool
    ) -> np.ndarray:
        op, s, pos = self.op, self.tuple_size, self._offset
        carry = self._carry[iteration]
        if self.dtype.kind in "iu" or self.float_mode == "regrouped":
            # Fixed-width integers are truly associative, so the lean
            # in-place kernel applies: accumulate all lanes in one 2-D
            # call, fold the carry afterwards — no prepend copies (the
            # ROADMAP port of the sharded driver's ``_LaneKernel``).
            # With threads= requested the same pass runs slab-parallel
            # (bit-identical: integer regrouping is exact).  Regrouped
            # floats opt into the same fold, regrouped rounding and all.
            scan = self._lane_scan
            out = values if own else np.empty_like(values)
            if pos >= s:
                row = carry[kernels.phase_perm(pos, s)] if s > 1 else carry
                scan(values, out, carry_row=row)
            elif pos > 0:
                # Stream younger than one stride: only lanes < pos
                # carry state; fold those lanes alone.
                scan(values, out)
                kernels.fold_lanes(
                    out, op, carry, pos=pos, tuple_size=s, seen=self._seen_lanes()
                )
            else:
                scan(values, out)
        elif self.float_mode == "compensated":
            # Error-free carries: deterministic for any chunk split and
            # thread count, so — unlike the exact prepend path — the
            # compensated pass may thread.
            threads = None
            if self.threads is not None:
                threads = "auto" if self.threads in ("auto", 0) else self.threads
                self.counters.threaded_scans += 1
            out = kernels.lane_scan_compensated(
                values, op, s, self._comp[iteration], pos, threads=threads
            )
        else:
            # Floats are only pseudo-associative: bit-identity needs
            # the exact prepend continuation (vectorized across lanes).
            out = kernels.lane_scan_exact(
                values, op, s, carry, self._seen_lanes(), pos
            )
        self._update_carry(iteration, out)
        return out

    def _stage_inclusive_delegated(
        self, values: np.ndarray, iteration: int
    ) -> np.ndarray:
        # A stride-s local scan does not depend on how lanes are
        # *labelled*, only on the stride — so the inner engine can scan
        # any chunk alignment; the carry fold below maps global lane l
        # to its in-chunk phase.
        result = self._engine.run(
            values,
            order=1,
            tuple_size=self.tuple_size,
            op=self.op,
            inclusive=True,
        )
        local = np.asarray(result.values)
        if not local.flags.writeable:
            local = local.copy()
        self.counters.delegated_stage_scans += 1
        s, pos = self.tuple_size, self._offset
        carry = self._carry[iteration]
        if pos > 0:
            kernels.fold_lanes(
                local,
                self.op,
                carry,
                pos=pos,
                tuple_size=s,
                seen=None if pos >= s else self._seen_lanes(),
            )
        self._update_carry(iteration, local)
        return local


def hash_config(config: dict) -> str:
    """Stable hash of a session configuration (used by checkpoints)."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
