"""``ScanSession`` — a prefix scan that accepts its input in chunks.

The paper's central object is the O(1) carry state that lets SAM scan
in a single pass: a persistent block only ever needs its per-order,
per-tuple-lane running totals to continue the scan from wherever it
stopped.  A :class:`ScanSession` generalizes that observation across
*time* instead of across blocks: it holds exactly that state — an
``(order, tuple_size)`` accumulator array plus the number of elements
consumed so far — and ``feed(chunk)`` returns the scanned chunk such
that the concatenation of all outputs is **bit-identical** to a
one-shot scan of the concatenation of all inputs, for every operator,
dtype (floats included), order, tuple size, and both inclusive and
exclusive flavors.  Chunk boundaries are arbitrary: empty chunks,
single elements, and edges that fall inside a tuple stride are all
fine, because the lane of a value is determined by its *global*
position, which the session tracks.

How bit-identity is kept
------------------------

Each of the ``order`` scan passes is continued per tuple lane:

* **Exact path (default).**  The lane's carry is *prepended* to the
  lane's chunk values and ``op.accumulate`` runs over the extended
  array.  numpy's ufunc ``accumulate`` is a sequential left fold, so
  this reproduces the one-shot accumulate's exact sequence of partial
  results — including float rounding, which mere
  ``op(carry, local_scan)`` folding would change.  Unprimed lanes
  (no elements seen yet) are scanned without a prepend so that even
  non-identities-in-floating-point like ``0.0 + (-0.0)`` cannot leak
  in.

* **Delegated path (``engine=...``).**  For integer dtypes the chunk's
  stage scan is handed to any one-shot engine (the ``repro.parallel``
  pool, ``SamScan``, a baseline...) and the carry is folded on
  afterwards — exact because fixed-width integer arithmetic is truly
  associative (wraparound included).  The inner engine is constructed
  once and reused across chunks, so ``ParallelSamScan``'s warm worker
  pool amortizes over the whole stream.  Float inputs silently take
  the exact path: float addition is only pseudo-associative, and the
  session's contract is bit-identity with the one-shot host scan.

Sessions serialize their entire state (:meth:`state_dict` /
:meth:`load_state_dict`) with the carry encoded byte-exactly, which is
what makes the out-of-core driver's checkpoints possible; a
configuration hash guards against resuming somebody else's state.
"""

from __future__ import annotations

import base64
import hashlib
import json
import time
from typing import Optional

import numpy as np

from repro.ops import get_op
from repro.stream.counters import StreamCounters
from repro.stream.errors import CheckpointMismatchError, SessionStateError


def _engine_label(engine) -> str:
    if engine is None:
        return "host"
    if isinstance(engine, str):
        return engine
    return type(engine).__name__


class ScanSession:
    """Persistent carry state for a chunked generalized prefix scan.

    Parameters
    ----------
    op:
        Operator name or :class:`repro.ops.AssociativeOp`.
    order / tuple_size / inclusive:
        The usual scan generalizations; fixed for the session's
        lifetime (they are part of the carry state's meaning).
    dtype:
        Element dtype.  ``None`` locks it on the first non-configured
        ``feed``; checkpoint-backed sessions always pass it explicitly.
    engine:
        Inner one-shot engine for the per-chunk stage scans: ``None``
        (exact host path), a name accepted by
        :func:`repro.api.resolve_engine`, or a constructed engine
        object.  Only consulted for integer dtypes (see module docs).
    """

    def __init__(
        self,
        op="add",
        order: int = 1,
        tuple_size: int = 1,
        inclusive: bool = True,
        dtype=None,
        engine=None,
    ):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if tuple_size < 1:
            raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
        self.op = get_op(op)
        self.order = int(order)
        self.tuple_size = int(tuple_size)
        self.inclusive = bool(inclusive)
        label = _engine_label(engine)
        if isinstance(engine, str):
            from repro.api import resolve_engine

            engine = resolve_engine(engine)
            if engine is None:  # "host" resolves to the exact path
                label = "host"
        self._engine = engine
        self.counters = StreamCounters(engine_used=label)
        self.dtype: Optional[np.dtype] = None
        self._carry: Optional[np.ndarray] = None
        self._offset = 0
        if dtype is not None:
            self._set_dtype(dtype)

    def __repr__(self) -> str:
        return (
            f"ScanSession(op={self.op.name!r}, order={self.order}, "
            f"tuple_size={self.tuple_size}, inclusive={self.inclusive}, "
            f"dtype={None if self.dtype is None else self.dtype.name}, "
            f"offset={self._offset})"
        )

    # -- configuration & state -------------------------------------------

    @property
    def offset(self) -> int:
        """Total elements consumed so far (the stream position)."""
        return self._offset

    def config(self) -> dict:
        """The session's semantic configuration (engine excluded:
        engines are bit-identical, so a checkpoint taken on one engine
        may be resumed on another)."""
        return {
            "op": self.op.name,
            "order": self.order,
            "tuple_size": self.tuple_size,
            "inclusive": self.inclusive,
            "dtype": None if self.dtype is None else self.dtype.name,
        }

    def config_hash(self) -> str:
        return hash_config(self.config())

    def state_dict(self) -> dict:
        """Byte-exact snapshot of the session (JSON-serializable)."""
        if self.dtype is None or self._carry is None:
            raise SessionStateError(
                "cannot snapshot a session before its dtype is known "
                "(pass dtype= at construction or feed a chunk first)"
            )
        return {
            "offset": int(self._offset),
            "carry": base64.b64encode(self._carry.tobytes()).decode("ascii"),
            "config": self.config(),
            "config_hash": self.config_hash(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by a compatibly-configured session."""
        config = state.get("config", {})
        mine = self.config()
        if config != mine:
            diffs = sorted(
                key
                for key in set(config) | set(mine)
                if config.get(key) != mine.get(key)
            )
            raise CheckpointMismatchError(
                f"session state belongs to a different configuration "
                f"(differs in {', '.join(diffs) or 'structure'}: "
                f"saved {config!r}, this session {mine!r})"
            )
        raw = base64.b64decode(state["carry"])
        expected = self.order * self.tuple_size * self.dtype.itemsize
        if len(raw) != expected:
            raise CheckpointMismatchError(
                f"carry blob is {len(raw)} bytes, expected {expected}"
            )
        self._carry = (
            np.frombuffer(raw, dtype=self.dtype)
            .reshape(self.order, self.tuple_size)
            .copy()
        )
        self._offset = int(state["offset"])

    def _set_dtype(self, dtype) -> None:
        self.dtype = self.op.check_dtype(dtype)
        identity = self.op.identity(self.dtype)
        self._carry = np.full(
            (self.order, self.tuple_size), identity, dtype=self.dtype
        )

    # -- feeding ---------------------------------------------------------

    def feed(self, chunk) -> np.ndarray:
        """Scan the next chunk; returns the scanned values.

        The concatenation of every returned chunk equals the one-shot
        scan of the concatenation of every fed chunk, bit for bit.
        """
        array = np.asarray(chunk)
        if array.ndim != 1:
            raise ValueError(f"expected a 1-D chunk, got shape {array.shape}")
        if self.dtype is None:
            self._set_dtype(array.dtype)
        else:
            resolved = self.op.check_dtype(array.dtype)
            if resolved != self.dtype:
                raise SessionStateError(
                    f"session is locked to dtype {self.dtype.name}, "
                    f"got a {resolved.name} chunk"
                )
        array = array.astype(self.dtype, copy=False)
        if array.size == 0:
            # Empty chunks are scan no-ops but real feed calls: count
            # them so StreamCounters.chunks always equals the number of
            # feed calls (and agrees with the driver's own chunk count).
            self.counters.chunks += 1
            self.counters.bytes_in += array.nbytes
            return array.copy()

        t0 = time.perf_counter()
        out = array
        for iteration in range(self.order):
            last = iteration == self.order - 1
            out = self._stage_pass(
                out, iteration, inclusive_output=self.inclusive or not last
            )
        self._offset += len(array)
        self.counters.chunks += 1
        self.counters.elements += len(array)
        self.counters.bytes_in += array.nbytes
        self.counters.seconds_scan += time.perf_counter() - t0
        return out

    # -- internals -------------------------------------------------------

    def _lane_seen(self, lane: int) -> bool:
        """Has global lane ``lane`` received at least one element yet?"""
        s = self.tuple_size
        return (self._offset // s) + (1 if self._offset % s > lane else 0) > 0

    def _lane_slice(self, lane: int) -> slice:
        """Chunk positions belonging to global lane ``lane``.

        Global index ``offset + i`` is in lane ``(offset + i) % s``, so
        the lane's first in-chunk position is ``(lane - offset) % s``.
        """
        return slice((lane - self._offset) % self.tuple_size, None, self.tuple_size)

    def _stage_pass(
        self, values: np.ndarray, iteration: int, inclusive_output: bool
    ) -> np.ndarray:
        prev_carry = self._carry[iteration].copy()
        incl = self._stage_inclusive(values, iteration)
        if inclusive_output:
            return incl
        # Exclusive = the lane-shifted inclusive continuation.  The
        # shifted-in head is the lane's pre-chunk running total (or the
        # identity at the very start of the stream) — exactly the value
        # the one-shot exclusive shift would place there.
        identity = self.op.identity(self.dtype)
        out = np.empty_like(incl)
        for lane in range(self.tuple_size):
            sl = self._lane_slice(lane)
            lane_incl = incl[sl]
            if lane_incl.size == 0:
                continue
            shifted = np.empty_like(lane_incl)
            shifted[0] = prev_carry[lane] if self._lane_seen(lane) else identity
            shifted[1:] = lane_incl[:-1]
            out[sl] = shifted
        return out

    def _stage_inclusive(self, values: np.ndarray, iteration: int) -> np.ndarray:
        """One inclusive stage pass; updates ``carry[iteration]``."""
        if self._engine is not None and self.dtype.kind in "iu":
            return self._stage_inclusive_delegated(values, iteration)
        return self._stage_inclusive_exact(values, iteration)

    def _stage_inclusive_exact(
        self, values: np.ndarray, iteration: int
    ) -> np.ndarray:
        op = self.op
        out = np.empty_like(values)
        for lane in range(self.tuple_size):
            sl = self._lane_slice(lane)
            lane_vals = values[sl]
            if lane_vals.size == 0:
                continue
            if self._lane_seen(lane):
                extended = np.empty(lane_vals.size + 1, dtype=self.dtype)
                extended[0] = self._carry[iteration, lane]
                extended[1:] = lane_vals
                lane_incl = op.accumulate(extended)[1:]
            else:
                lane_incl = op.accumulate(lane_vals)
            out[sl] = lane_incl
            self._carry[iteration, lane] = lane_incl[-1]
        return out

    def _stage_inclusive_delegated(
        self, values: np.ndarray, iteration: int
    ) -> np.ndarray:
        # A stride-s local scan does not depend on how lanes are
        # *labelled*, only on the stride — so the inner engine can scan
        # any chunk alignment; the carry fold below maps global lane l
        # to its in-chunk phase.
        result = self._engine.run(
            values,
            order=1,
            tuple_size=self.tuple_size,
            op=self.op,
            inclusive=True,
        )
        local = np.asarray(result.values)
        if not local.flags.writeable:
            local = local.copy()
        self.counters.delegated_stage_scans += 1
        for lane in range(self.tuple_size):
            sl = self._lane_slice(lane)
            lane_local = local[sl]
            if lane_local.size == 0:
                continue
            if self._lane_seen(lane):
                lane_local[...] = self.op.apply(
                    self._carry[iteration, lane], lane_local
                )
            self._carry[iteration, lane] = lane_local[-1]
        return local


def hash_config(config: dict) -> str:
    """Stable hash of a session configuration (used by checkpoints)."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
