"""Sharded out-of-core scans: the carry splice across *space*.

:func:`scan_file_sharded` is the host-scale analogue of SAM's two-level
carry propagation.  Where :func:`repro.stream.scan_file` proves that
one pass plus O(1) carry state suffices across *time* (chunks of one
stream), this driver proves it across *space*: the input is cut into
``S`` contiguous shards, each shard is scanned independently (phase 1),
the per-order, per-tuple-lane shard aggregates are spliced by a tiny
exclusive scan on the host (phase 2 — the same second-level scan
LightScan and the SIMD partition scans use), and each shard folds its
spliced carry into its output region (phase 3).  Higher orders iterate
the three phases exactly as SAM iterates only the computation stage:
order ``q`` runs ``q`` scan passes with a splice between passes —
*except* inside the fused gate (:func:`repro.kernels.fused_supported`:
integer ADD, ``q >= 2``, ``s >= 2``), where each shard runs the
single-pass fused tile kernel instead, its aggregate grows to the full
``(q, s)`` order-total matrix, the splice chains those matrices with
the binomial identity (:func:`repro.kernels.fused_combine`), and the
fold applies the spliced matrix with binomial weight columns.  One
pass over the data instead of ``q``, no scratch file, bit-identical
output.

Two properties keep the driver fast where plain three-phase scans are
not:

* **Carry priming.**  A shard whose predecessors have all finished the
  current pass learns its spliced carry *before* scanning, bakes it
  into the scan directly, and skips its fold entirely.  With one
  worker every shard is primed and the job degenerates to a single
  pass — the same degeneration decoupled lookback exhibits when blocks
  run in order.
* **A lean integer kernel.**  Fixed-width integer arithmetic is truly
  associative (wraparound included), so shard passes accumulate each
  lane *in place* and fold the running carry in place — none of the
  prepend copies the bit-exact float path needs.  The kernel is the
  shared :class:`repro.kernels.LaneKernel` (born here as a private
  class, now the layer every engine's host path calls).

Bit-identity: for integer dtypes the output is bit-identical to the
one-shot host scan for every op / order / tuple size, inclusive and
exclusive.  Floats are only pseudo-associative, so they pick one of
three ``float_mode`` contracts: ``"exact"`` (the default — fall back
to the sequential bit-exact session path), ``"regrouped"`` (shard
anyway and accept carry-fold rounding; the legacy ``exact=False``),
or ``"compensated"`` — shard on the fixed segment grid of
:mod:`repro.kernels.compensated`, collect per-segment ``(T, F)``
totals in the scan pass, replay the global double-double chain as the
splice, and render in the fold pass.  Compensated results are
bit-identical for every shard count *and* more accurate than the
serial naive fold (the per-step rounding errors are recovered exactly
and re-injected).

Durability: progress is tracked in a **per-shard manifest** (see
:mod:`repro.stream.checkpoint`).  Passes ping-pong between the output
file and a scratch file so the source of every pass stays intact;
a killed job re-runs only its unfinished shards under ``resume=True``
(an interrupted in-place fold is rebuilt by re-scanning that shard
from the intact pass source, then folding again).
"""

from __future__ import annotations

import base64
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.kernels import LaneKernel, ThreadedLaneKernel, resolve_threads
from repro.ops import get_op
from repro.stream.checkpoint import (
    build_shard_manifest,
    read_shard_manifest,
    write_checkpoint,
)
from repro.stream.counters import StreamCounters

# The adaptive chunker was born here and moved to the single-session
# driver when it grew adaptive_chunks= too; re-exported for back-compat.
from repro.compression.stream import BlockedFileReader, BlockedIndex, read_index
from repro.stream.driver import (  # noqa: F401 - re-exports
    ADAPT_HIGH_SECONDS,
    ADAPT_LOW_SECONDS,
    ADAPT_MAX_CHUNK_BYTES,
    ADAPT_MIN_CHUNK_BYTES,
    DEFAULT_CHUNK_BYTES,
    _AdaptiveChunker,
    resolve_input_format,
    scan_file,
)
from repro.stream.errors import (
    CheckpointMismatchError,
    InjectedFailureError,
    StreamError,
)
from repro.stream.session import ScanSession

#: Delegated inner engines (e.g. the shared ``repro.parallel`` pool)
#: are one resource: concurrent shard threads take turns using them.
_DELEGATE_LOCK = threading.Lock()


@dataclass
class ShardedResult:
    """Outcome of one :func:`scan_file_sharded` job."""

    elements: int
    dtype: str
    output_path: str
    counters: StreamCounters
    shards: List[Tuple[int, int]]
    passes: int
    shard_counters: List[StreamCounters] = field(default_factory=list)
    resumed_shards: int = 0
    fallback_reason: Optional[str] = None
    input_format: str = "raw"

    @property
    def engine_used(self) -> str:
        return self.counters.engine_used

    @property
    def num_shards(self) -> int:
        return len(self.shards)


# -- shard geometry ------------------------------------------------------


def plan_shards(total_elements: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal shard bounds (never an empty shard)."""
    shards = max(1, min(int(shards), total_elements)) if total_elements else 1
    base, rem = divmod(total_elements, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _lane_counts(lo: int, hi: int, tuple_size: int) -> np.ndarray:
    """How many elements of [lo, hi) fall in each global tuple lane."""
    lanes = np.arange(tuple_size)
    return (hi - lanes + tuple_size - 1) // tuple_size - (
        lo - lanes + tuple_size - 1
    ) // tuple_size


def _seen_before(lo: int, tuple_size: int) -> np.ndarray:
    """Lanes that have at least one element at a global index < lo."""
    return np.arange(tuple_size) < lo


# -- per-shard kernels ---------------------------------------------------


class _SessionKernel:
    """Shard kernel delegating chunk scans to an inner one-shot engine.

    Wraps a single-pass :class:`ScanSession` whose offset is preloaded
    to the shard's global start (so tuple lanes are labelled globally)
    and whose carry is optionally primed.  Delegated engines are shared
    resources, so feeds are serialized across shard threads.
    """

    def __init__(self, op, dtype, tuple_size, lo, prime, engine):
        self.session = ScanSession(
            op=op, order=1, tuple_size=tuple_size, inclusive=True,
            dtype=dtype, engine=engine,
        )
        identity = op.identity(dtype)
        carry = np.full(tuple_size, identity, dtype=dtype)
        if prime is not None:
            carry[:] = prime
        self.session.load_state_dict({
            "offset": int(lo),
            "carry": base64.b64encode(carry.tobytes()).decode("ascii"),
            "config": self.session.config(),
            "config_hash": self.session.config_hash(),
        })

    def feed(self, chunk: np.ndarray) -> np.ndarray:
        with _DELEGATE_LOCK:
            return self.session.feed(chunk)

    @property
    def carry(self) -> np.ndarray:
        return self.session._carry[0]

    @property
    def delegated_stage_scans(self) -> int:
        return self.session.counters.delegated_stage_scans


def _fold_chunk(op, chunk, carry, pos, tuple_size, seen) -> None:
    """In-place ``op(carry[lane], x)`` over the chunk's seen lanes."""
    kernels.fold_lanes(chunk, op, carry, pos=pos, tuple_size=tuple_size, seen=seen)


def _exclusive_shift(op, chunk, prev, pos, tuple_size) -> np.ndarray:
    """Lane-shift a folded inclusive chunk; ``prev`` carries lane heads
    across chunk boundaries (updated in place)."""
    perm = kernels.phase_perm(pos, tuple_size)
    out = kernels.exclusive_shift(chunk, prev[perm])
    totals = kernels.phase_totals(chunk, tuple_size)
    if totals.size:
        prev[perm[: totals.size]] = totals
    return out


# -- the splice ----------------------------------------------------------


def _splice(op, dtype, tuple_size, shards, aggregates, baked) -> np.ndarray:
    """Phase 2: exclusive scan of shard aggregates, per tuple lane.

    Returns ``carries[i]`` — the absolute carry at shard ``i``'s start
    for the current pass.  Baked shards report absolute aggregates
    (their carry is already inside), so they *reset* the running value
    instead of combining into it.  A trailing ``None`` aggregate is
    allowed (``try_prime`` only needs the carry *at* that shard).
    """
    identity = op.identity(dtype)
    running = np.full(tuple_size, identity, dtype=dtype)
    carries = np.empty((len(shards), tuple_size), dtype=dtype)
    for i, (lo, hi) in enumerate(shards):
        carries[i] = running
        present = _lane_counts(lo, hi, tuple_size) > 0
        if not present.any():
            continue
        agg = aggregates[i]
        if agg is None:
            continue
        if baked[i]:
            running = np.where(present, agg, running)
        else:
            seen = _seen_before(lo, tuple_size)
            combined = np.where(seen, op.apply(running, agg), agg)
            running = np.where(present, combined, running)
    return carries


def _splice_compensated(job, aggregates) -> list:
    """Phase 2 in compensated mode: replay the double-double chain.

    Concatenates every shard's ``(K_i, 2, s)`` segment totals in shard
    order and replays the global ``dd_add`` chain over them — the
    canonical order, so the result is bit-identical for any shard
    count.  Returns ``carries[i] = (chain_i, head_i)``: the shard's
    slice of per-segment ``(H, G)`` chain states (what its fold kernel
    renders with) and the *rendered* per-lane running totals at its
    start (the exclusive-shift heads; ``None`` for shard 0).
    """
    from repro.kernels.compensated import HI, LO, _dd_render

    s = job.tuple_size
    dtype = job.dtype
    span = kernels.segment_span(s)
    stacks = [np.asarray(agg) for agg in aggregates]
    totals = (
        np.concatenate(stacks)
        if stacks
        else np.empty((0, 2, s), dtype=dtype)
    )
    state = kernels.fresh_state(dtype, s)
    chain_hi, chain_lo, _, _ = kernels.chain_segments(
        state[HI], state[LO], totals[:, 0], totals[:, 1]
    )
    carries = []
    head = None  # shard 0 has no seen lanes
    k = 0
    for lo, hi in job.shards:
        segments = -(-(hi - lo) // span)
        chain = np.stack(
            [chain_hi[k : k + segments], chain_lo[k : k + segments]], axis=1
        )
        carries.append((chain, head))
        if segments:
            # The next shard's heads are this shard's rendered last row
            # per lane: its final segment's totals under that segment's
            # chain state (shard bounds are segment-aligned, so the
            # final segment of an interior shard is always complete).
            last = k + segments - 1
            head = np.empty(s, dtype=dtype)
            _dd_render(
                totals[last, 0], totals[last, 1],
                chain_hi[last], chain_lo[last], head,
            )
        k += segments
    return carries


def _splice_fused(dtype, order, tuple_size, shards, aggregates, baked):
    """Phase 2 in fused mode: chain ``(q, s)`` order-total matrices.

    The exclusive scan over shard aggregates, but each aggregate is the
    shard's full order-total matrix (scanned locally from zero carry)
    and the combine is the binomial splice identity
    (:func:`repro.kernels.fused_combine`) with the shard's *per-lane*
    element counts — shard bounds are arbitrary, so lanes differ by at
    most one element.  Baked shards reset the running matrix (their
    carry is already inside).  Returns ``carries[i]``: the absolute
    ``(q, s)`` matrix at shard ``i``'s start, lanes in global order.
    """
    q, s = order, tuple_size
    running = np.zeros((q, s), dtype=dtype)
    carries = np.empty((len(shards), q, s), dtype=dtype)
    for i, (lo, hi) in enumerate(shards):
        carries[i] = running
        counts = _lane_counts(lo, hi, s)
        if not counts.any():
            continue
        agg = aggregates[i]
        if agg is None:
            continue
        if baked[i]:
            running = np.where(counts > 0, agg, running)
        else:
            running = kernels.fused_combine(running, agg, counts)
    return carries


def _job_splice(job, aggregates, baked):
    """Dispatch phase 2 on the job's mode."""
    if job.float_mode == "compensated":
        return _splice_compensated(job, aggregates)
    if job.fused:
        return _splice_fused(
            job.dtype, job.order, job.tuple_size, job.shards, aggregates,
            baked,
        )
    return _splice(
        job.op, job.dtype, job.tuple_size, job.shards, aggregates, baked
    )


# -- manifest encoding ---------------------------------------------------


def _encode_row(row: np.ndarray) -> str:
    return base64.b64encode(row.tobytes()).decode("ascii")


def _decode_row(blob: str, dtype, tuple_size) -> np.ndarray:
    raw = base64.b64decode(blob)
    expected = tuple_size * dtype.itemsize
    if len(raw) != expected:
        raise StreamError(
            f"manifest aggregate row is {len(raw)} bytes, expected {expected}"
        )
    return np.frombuffer(raw, dtype=dtype).copy()


# -- the driver ----------------------------------------------------------


class _ShardedJob:
    """All state of one sharded run (paths, plan, progress, manifest)."""

    def __init__(
        self, *, input_path, output_path, op, dtype, order, tuple_size,
        inclusive, engine, shards, chunk_bytes, adaptive_chunks,
        checkpoint, workers, shard_threads=1, input_format="raw",
        blocked_index=None, float_mode=None, fused=False,
    ):
        self.input_path = input_path
        self.output_path = output_path
        self.input_format = input_format
        self.blocked_index: Optional[BlockedIndex] = blocked_index
        self.scratch_path = f"{output_path}.scratch"
        self.op = op
        self.dtype = dtype
        self.order = order
        self.tuple_size = tuple_size
        self.inclusive = inclusive
        self.engine = engine
        self.shards = shards
        self.chunk_bytes = chunk_bytes
        self.adaptive_chunks = adaptive_chunks
        self.checkpoint = checkpoint
        self.workers = workers
        self.shard_threads = max(1, int(shard_threads))
        #: ``"compensated"`` routes the scan/splice/fold phases through
        #: the error-free-carry kernels; ``None`` is the classic
        #: regrouping driver (integers, and floats under exact=False).
        self.float_mode = float_mode
        #: Fused order-q mode: one scan pass with ``(q, s)`` aggregates
        #: instead of ``order`` passes with one carry row each.
        self.fused = bool(fused)
        self.passes = 1 if self.fused else order
        self.itemsize = dtype.itemsize
        self.total_elements = shards[-1][1] if shards else 0

        # Progress (mirrors the manifest's "state" document).
        self.completed_passes: List[dict] = []  # {"aggregates": [...], "baked": [...]}
        self.phase = {"kind": "scan", "pass": 1}
        self.done = [False] * len(shards)
        self.baked: List[Optional[bool]] = [None] * len(shards)
        self.aggregates: List[Optional[np.ndarray]] = [None] * len(shards)
        self.carried = StreamCounters(engine_used=self._engine_label())
        self.shard_counters: List[StreamCounters] = []
        self.resumed_shards = 0
        self.completions = 0
        self.fail_after_shards: Optional[int] = None
        self.lock = threading.Lock()

    # -- config & manifest ----------------------------------------------

    def _engine_label(self) -> str:
        if self.engine is None:
            return "host"
        if isinstance(self.engine, str):
            return self.engine
        return type(self.engine).__name__

    def config(self) -> dict:
        config = {
            "op": self.op.name,
            "order": self.order,
            "tuple_size": self.tuple_size,
            "inclusive": self.inclusive,
            "dtype": self.dtype.name,
        }
        # Only the compensated mode changes the on-disk pass layout, so
        # only it is stamped — integer manifests keep their old shape.
        if self.float_mode == "compensated":
            config["float_mode"] = self.float_mode
        # Likewise the fused layout: a single pass with (q, s) matrix
        # aggregates cannot resume a pass-per-order manifest or vice
        # versa, so fused manifests carry the stamp.
        if self.fused:
            config["layout"] = "fused"
        return config

    def needs_scratch(self) -> bool:
        return self.passes >= 2

    def target_path(self, pass_index: int) -> str:
        # The last pass always lands in the output file (the fold then
        # runs in place there); earlier passes ping-pong so every
        # pass's source file stays intact for crash-redo.
        if (self.passes - pass_index) % 2 == 0:
            return self.output_path
        return self.scratch_path

    def source_path(self, pass_index: int) -> str:
        if pass_index == 1:
            return self.input_path
        return self.target_path(pass_index - 1)

    def state_dict(self) -> dict:
        return {
            "phase": dict(self.phase),
            "done": list(self.done),
            "baked": list(self.baked),
            "aggregates": [
                None if row is None else _encode_row(row)
                for row in self.aggregates
            ],
            "completed_passes": [
                {
                    "aggregates": [_encode_row(r) for r in rec["aggregates"]],
                    "baked": list(rec["baked"]),
                }
                for rec in self.completed_passes
            ],
            "counters": self.counters_so_far().as_dict(),
        }

    def counters_so_far(self) -> StreamCounters:
        return StreamCounters.aggregate(
            [self.carried, *self.shard_counters],
            engine_used=self._engine_label(),
        )

    def write_manifest(self) -> None:
        if self.checkpoint is None:
            return
        t0 = time.perf_counter()
        io = None
        if self.input_format != "raw":
            io = {"input_format": self.input_format}
        payload = build_shard_manifest(
            self.config(), self.total_elements, self.shards, self.state_dict(),
            io=io,
        )
        write_checkpoint(self.checkpoint, payload)
        self.carried.checkpoint_writes += 1
        self.carried.seconds_checkpoint += time.perf_counter() - t0

    def load_manifest(self, payload: dict) -> None:
        config = payload["config"]
        mine = self.config()
        if config != mine:
            diffs = sorted(
                key for key in set(config) | set(mine)
                if config.get(key) != mine.get(key)
            )
            raise CheckpointMismatchError(
                f"shard manifest {self.checkpoint!r} belongs to a different "
                f"configuration (differs in {', '.join(diffs) or 'structure'}: "
                f"saved {config!r}, this job {mine!r})"
            )
        if payload["input_elements"] != self.total_elements:
            raise CheckpointMismatchError(
                f"shard manifest {self.checkpoint!r} was taken against an "
                f"input of {payload['input_elements']} elements; this input "
                f"has {self.total_elements}"
            )
        saved_format = payload.get("io", {}).get("input_format", "raw")
        if saved_format != self.input_format:
            raise CheckpointMismatchError(
                f"shard manifest {self.checkpoint!r} was taken against a "
                f"{saved_format!r} input; this job reads {self.input_format!r}"
            )
        # Resume continues the *stored* plan: shard boundaries are part
        # of the on-disk layout, unlike chunk size or engine.
        self.shards = [(int(lo), int(hi)) for lo, hi in payload["shards"]]
        state = payload["state"]
        self.phase = dict(state["phase"])
        self.done = list(state["done"])
        self.baked = list(state["baked"])
        self.aggregates = [
            None if row is None else self._decode_aggregate(row, i)
            for i, row in enumerate(state["aggregates"])
        ]
        self.completed_passes = [
            {
                "aggregates": [
                    self._decode_aggregate(r, i)
                    for i, r in enumerate(rec["aggregates"])
                ],
                "baked": list(rec["baked"]),
            }
            for rec in state["completed_passes"]
        ]
        self.carried = StreamCounters.from_dict(state.get("counters", {}))
        self.carried.engine_used = self._engine_label()
        self.carried.resumes += 1
        self.resumed_shards = sum(bool(flag) for flag in self.done)

    def _decode_aggregate(self, blob: str, shard_index: int) -> np.ndarray:
        """Decode one manifest aggregate: a ``(tuple_size,)`` carry row
        classically, an ``(order, tuple_size)`` order-total matrix in
        fused mode, a ``(K, 2, tuple_size)`` segment-totals stack in
        compensated mode (``K`` derives from the stored shard bounds,
        so :meth:`load_manifest` restores ``self.shards`` first)."""
        if self.fused:
            raw = base64.b64decode(blob)
            expected = self.order * self.tuple_size * self.itemsize
            if len(raw) != expected:
                raise StreamError(
                    f"manifest aggregate for shard {shard_index} is "
                    f"{len(raw)} bytes, expected {expected} "
                    f"(an ({self.order}, {self.tuple_size}) matrix)"
                )
            return (
                np.frombuffer(raw, dtype=self.dtype)
                .reshape(self.order, self.tuple_size)
                .copy()
            )
        if self.float_mode != "compensated":
            return _decode_row(blob, self.dtype, self.tuple_size)
        lo, hi = self.shards[shard_index]
        span = kernels.segment_span(self.tuple_size)
        segments = -(-(hi - lo) // span)
        raw = base64.b64decode(blob)
        expected = segments * 2 * self.tuple_size * self.itemsize
        if len(raw) != expected:
            raise StreamError(
                f"manifest aggregate for shard {shard_index} is {len(raw)} "
                f"bytes, expected {expected} ({segments} segment totals)"
            )
        return (
            np.frombuffer(raw, dtype=self.dtype)
            .reshape(segments, 2, self.tuple_size)
            .copy()
        )

    # -- progress --------------------------------------------------------

    def try_prime(self, shard_index: int) -> Optional[np.ndarray]:
        """Phase-1.5 shortcut: the absolute carry for ``shard_index`` in
        the current pass, if every predecessor already finished it."""
        if self.float_mode == "compensated":
            # Priming skips the fold, but the compensated fold is the
            # *render* — it must run regardless, so a primed scan would
            # save nothing (the naive pass never folds carries in).
            return None
        with self.lock:
            if not all(self.done[:shard_index]):
                return None
            if self.fused:
                if shard_index == 0:
                    return np.zeros(
                        (self.order, self.tuple_size), dtype=self.dtype
                    )
                carries = _splice_fused(
                    self.dtype, self.order, self.tuple_size,
                    self.shards[: shard_index + 1],
                    [self.aggregates[j] for j in range(shard_index)] + [None],
                    [self.baked[j] for j in range(shard_index)] + [False],
                )
                return carries[shard_index]
            if shard_index == 0:
                identity = self.op.identity(self.dtype)
                return np.full(self.tuple_size, identity, dtype=self.dtype)
            carries = _splice(
                self.op, self.dtype, self.tuple_size,
                self.shards[: shard_index + 1],
                [self.aggregates[j] for j in range(shard_index)] + [None],
                [self.baked[j] for j in range(shard_index)] + [False],
            )
            return carries[shard_index]

    def record_completion(
        self, shard_index, counters, aggregate=None, baked=None
    ) -> None:
        """Main-thread bookkeeping after one shard task finishes."""
        with self.lock:
            self.done[shard_index] = True
            if aggregate is not None:
                self.aggregates[shard_index] = aggregate
            if baked is not None:
                self.baked[shard_index] = baked
            self.shard_counters.append(counters)
        self.write_manifest()
        self.completions += 1
        if (
            self.fail_after_shards is not None
            and self.completions >= self.fail_after_shards
            and not (all(self.done) and self.phase["kind"] == "fold")
        ):
            raise InjectedFailureError(
                f"injected failure after {self.completions} shard completions "
                f"(phase {self.phase})"
            )

    def begin_phase(self, phase: dict, done=None, baked_reset=True) -> None:
        with self.lock:
            self.phase = dict(phase)
            self.done = list(done) if done is not None else [False] * len(self.shards)
            if baked_reset:
                self.baked = [None] * len(self.shards)
                self.aggregates = [None] * len(self.shards)


def _splice_none_guard(aggregates) -> None:
    missing = [i for i, row in enumerate(aggregates) if row is None]
    if missing:  # pragma: no cover - internal invariant
        raise StreamError(f"splice ran before shards {missing} finished")


# -- shard tasks (run on executor threads) -------------------------------


def _scan_shard(
    job: _ShardedJob, pass_index, shard_index, fold_carry, prime,
    publish=True,
):
    """One shard's order-1 scan pass.

    Reads its region of the pass source, folds ``fold_carry`` (the
    previous pass's spliced carry) into the values, scans each lane as
    a continuation, and writes the result to the same region of the
    pass target.  Returns ``(aggregate_row, baked, counters)``.

    With ``publish`` the task records its aggregate and done flag
    itself (under the job lock) *before* returning, so a successor
    shard picked up by the same worker can prime off it immediately —
    the main thread only learns of the completion at its next
    ``as_completed`` wakeup, too late for sequential priming.  The
    crash-recovery rescan passes ``publish=False``: during the fold
    phase the done flags mean "folded", which a rescan is not.
    """
    lo, hi = job.shards[shard_index]
    op, dtype, s = job.op, job.dtype, job.tuple_size
    # Fused mode runs its single pass at the full order; classic passes
    # are each order-1 with the splice iterated between them.
    kernel_order = job.order if job.fused else 1
    counters = StreamCounters(engine_used=job._engine_label())
    if isinstance(prime, str) and prime == "auto":
        prime = job.try_prime(shard_index)
    baked = prime is not None
    if job.float_mode == "compensated":
        # Naive continuation + segment-totals collection; the render
        # happens in the fold pass once the global chain exists.  The
        # kernel is serial per shard (the shard plan itself is the
        # parallelism; whole-segment slab threading belongs to the
        # in-memory path).
        kernel = kernels.CompensatedCollectKernel(op, dtype, s, start=lo)
    elif job.engine is not None and dtype.kind in "iu":
        kernel = _SessionKernel(op, dtype, s, lo, prime, job.engine)
    elif job.shard_threads > 1:
        # Slab-parallel intra-chunk scans under the shard pool.  The
        # per-shard thread budget already divides the caller's total by
        # the worker count (the combined-oversubscription guard), so
        # shards × threads never exceeds what was asked for.
        kernel = ThreadedLaneKernel(
            op, dtype, s, start=lo, prime=prime, exact=False,
            threads=job.shard_threads, order=kernel_order,
        )
        counters.threaded_scans += 1
    else:
        # The shared in-place kernel (repro.kernels); exact=False is the
        # sharded contract — bit-exact for integers, carry-fold rounding
        # for floats (which only get here under ``exact=False``).
        kernel = LaneKernel(
            op, dtype, s, start=lo, prime=prime, exact=False,
            order=kernel_order,
        )
    seen = _seen_before(lo, s)
    # Pass 1 of a compressed job reads blocks through the shared index
    # (each task opens its own file handle; the parsed metadata is one
    # object); later passes ping-pong between raw scratch/output files.
    reader = None
    source = None
    prefetch = None
    if pass_index == 1 and job.blocked_index is not None:
        reader = BlockedFileReader(job.input_path, index=job.blocked_index)
        # One-deep decode pipeline: the next chunk's blocks decode on a
        # side thread while the current chunk scans, so decode work
        # hides under scan wall-clock.  Depth 1 means read_range calls
        # never overlap each other (the reader's handle stays
        # single-threaded); values are unaffected — container inputs
        # are integers, and integer scans are split-invariant.
        prefetch = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="shard-decode"
        )
    else:
        source = np.memmap(job.source_path(pass_index), dtype=dtype, mode="r")
    chunker = _AdaptiveChunker(
        max(1, job.chunk_bytes // job.itemsize), job.itemsize,
        job.adaptive_chunks, counters,
    )
    out_fh = open(job.target_path(pass_index), "r+b")
    try:
        out_fh.seek(lo * job.itemsize)
        pos = lo
        pending = None  # (future, element count) of the prefetched chunk
        while pos < hi:
            chunk_start = time.perf_counter()
            if pending is not None:
                future, take = pending
                pending = None
                chunk = future.result()
                counters.overlapped_decodes += 1
            else:
                take = min(chunker.elements, hi - pos)
                if reader is not None:
                    chunk = reader.read_range(pos, pos + take)
                else:
                    chunk = np.array(source[pos : pos + take], copy=True)
            t_read = time.perf_counter()
            counters.seconds_read += t_read - chunk_start
            if prefetch is not None and pos + take < hi:
                nxt = min(chunker.elements, hi - (pos + take))
                pending = (
                    prefetch.submit(
                        reader.read_range, pos + take, pos + take + nxt
                    ),
                    nxt,
                )
            if fold_carry is not None:
                _fold_chunk(op, chunk, fold_carry, pos, s, seen)
                t_fold = time.perf_counter()
                counters.seconds_fold += t_fold - t_read
                t_read = t_fold
            chunk = kernel.feed(chunk)
            t_scan = time.perf_counter()
            counters.seconds_scan += t_scan - t_read
            out_fh.write(memoryview(chunk).cast("B"))
            t_write = time.perf_counter()
            counters.seconds_write += t_write - t_scan
            counters.chunks += 1
            counters.bytes_in += chunk.nbytes
            counters.bytes_out += chunk.nbytes
            if reader is not None:
                counters.decoded_bytes_in += chunk.nbytes
            if pass_index == 1:
                counters.elements += len(chunk)
            pos += take
            chunker.observe(t_write - chunk_start)
        t0 = time.perf_counter()
        out_fh.flush()
        os.fsync(out_fh.fileno())
        counters.seconds_write += time.perf_counter() - t0
    finally:
        out_fh.close()
        if prefetch is not None:
            prefetch.shutdown(wait=True, cancel_futures=True)
        if reader is not None:
            # read_range was timed under seconds_read; reattribute its
            # decode share so the phases decompose like the fused
            # driver.  Prefetched decodes ran off the loop's clock
            # entirely (their wall-clock hid under the scan), so the
            # subtraction clamps at zero rather than going negative.
            counters.compressed_bytes_in += reader.payload_bytes_read
            counters.seconds_decode += reader.decode_seconds
            counters.seconds_read = max(
                0.0, counters.seconds_read - reader.decode_seconds
            )
            reader.close()
        del source
    counters.shards += 1
    counters.primed_shards += int(baked)
    counters.delegated_stage_scans += kernel.delegated_stage_scans
    if job.fused:
        counters.fused_order_scans += 1
    if job.float_mode == "compensated":
        aggregate = kernel.segment_totals()
    else:
        aggregate = np.asarray(kernel.carry).copy()
    if publish:
        with job.lock:
            job.done[shard_index] = True
            job.aggregates[shard_index] = aggregate
            job.baked[shard_index] = baked
    return aggregate, baked, counters


def _fold_shard(job: _ShardedJob, shard_index, carry, do_fold):
    """Phase 3 for one shard: fold the spliced carry into the output
    region in place (and lane-shift it when the scan is exclusive)."""
    if job.float_mode == "compensated":
        return _fold_shard_compensated(job, shard_index, carry)
    if job.fused:
        return _fold_shard_fused(job, shard_index, carry, do_fold)
    lo, hi = job.shards[shard_index]
    op, dtype, s = job.op, job.dtype, job.tuple_size
    counters = StreamCounters(engine_used=job._engine_label())
    seen = _seen_before(lo, s)
    identity = op.identity(dtype)
    prev = np.where(seen, carry, np.full(s, identity, dtype=dtype)).astype(dtype)
    source = np.memmap(job.output_path, dtype=dtype, mode="r")
    chunker = _AdaptiveChunker(
        max(1, job.chunk_bytes // job.itemsize), job.itemsize,
        job.adaptive_chunks, counters,
    )
    out_fh = open(job.output_path, "r+b")
    try:
        out_fh.seek(lo * job.itemsize)
        pos = lo
        while pos < hi:
            chunk_start = time.perf_counter()
            take = min(chunker.elements, hi - pos)
            chunk = np.array(source[pos : pos + take], copy=True)
            if do_fold:
                _fold_chunk(op, chunk, carry, pos, s, seen)
            if not job.inclusive:
                chunk = _exclusive_shift(op, chunk, prev, pos, s)
            out_fh.write(memoryview(chunk).cast("B"))
            counters.chunks += 1
            pos += take
            elapsed = time.perf_counter() - chunk_start
            counters.seconds_fold += elapsed
            chunker.observe(elapsed)
        t0 = time.perf_counter()
        out_fh.flush()
        os.fsync(out_fh.fileno())
        counters.seconds_fold += time.perf_counter() - t0
    finally:
        out_fh.close()
        del source
    counters.folded_shards += 1
    return counters


def _fold_shard_fused(job: _ShardedJob, shard_index, carry, do_fold):
    """Phase 3 in fused mode: apply a ``(q, s)`` carry matrix in place.

    A carry ``T_j`` entering the shard contributes
    ``C(d + q - j, q - j) * T_j`` to the order-``q`` value at local
    lane depth ``d`` (:func:`repro.kernels.fused_weights`), so the fold
    is ``q`` weighted rank-1 updates per chunk instead of one constant
    fold per pass.  Chunk takes stay multiples of ``s`` relative to the
    shard start so every reshaped row sits at one uniform depth; the
    columns are the shard's fixed lane permutation ``phase_perm(lo)``.
    Exact mod ``2**w`` — the fused gate admits only integer ADD.
    """
    lo, hi = job.shards[shard_index]
    op, dtype, s, q = job.op, job.dtype, job.tuple_size, job.order
    counters = StreamCounters(engine_used=job._engine_label())
    seen = _seen_before(lo, s)
    identity = op.identity(dtype)
    # Exclusive heads: the order-q running totals (row q-1) at lo.
    prev = np.where(
        seen, carry[q - 1], np.full(s, identity, dtype=dtype)
    ).astype(dtype)
    local = np.ascontiguousarray(carry[:, kernels.phase_perm(lo, s)])
    fold_needed = do_fold and bool(local.any())
    source = np.memmap(job.output_path, dtype=dtype, mode="r")
    chunker = _AdaptiveChunker(
        max(1, job.chunk_bytes // job.itemsize), job.itemsize,
        job.adaptive_chunks, counters,
    )
    out_fh = open(job.output_path, "r+b")
    try:
        out_fh.seek(lo * job.itemsize)
        pos = lo
        while pos < hi:
            chunk_start = time.perf_counter()
            take = min(chunker.elements, hi - pos)
            if pos + take < hi and take % s:
                # Keep interior takes row-aligned to the shard grid so
                # depths are uniform per reshaped row (the last take
                # soaks up the n % s tail).
                take = take - take % s or min(s, hi - pos)
            chunk = np.array(source[pos : pos + take], copy=True)
            if fold_needed:
                rel = pos - lo
                m, r = divmod(chunk.size, s)
                with np.errstate(over="ignore"):
                    if m:
                        blk = chunk[: m * s].reshape(m, s)
                        W = kernels.fused_weights(m, q, dtype, d0=rel // s)
                        for k in range(q):
                            blk += W[:, k : k + 1] * local[q - 1 - k]
                    if r:
                        Wt = kernels.fused_weights(
                            1, q, dtype, d0=rel // s + m
                        )
                        tail = chunk[m * s :]
                        for k in range(q):
                            tail += Wt[0, k] * local[q - 1 - k, :r]
            if not job.inclusive:
                chunk = _exclusive_shift(op, chunk, prev, pos, s)
            out_fh.write(memoryview(chunk).cast("B"))
            counters.chunks += 1
            pos += take
            elapsed = time.perf_counter() - chunk_start
            counters.seconds_fold += elapsed
            chunker.observe(elapsed)
        t0 = time.perf_counter()
        out_fh.flush()
        os.fsync(out_fh.fileno())
        counters.seconds_fold += time.perf_counter() - t0
    finally:
        out_fh.close()
        del source
    counters.folded_shards += 1
    return counters


def _fold_shard_compensated(job: _ShardedJob, shard_index, carry):
    """Phase 3 in compensated mode: the render pass.

    Re-reads the shard's naive continuation from the output, the raw
    values from the input, re-derives the exact per-step errors
    (``two_sum_err`` needs only ``prev + x -> L``, all on disk), and
    renders in place with the spliced per-segment chain.  Runs for
    *every* shard — even shard 0's carry-free region needs its local
    compensation re-injected — which is why compensated shards never
    bake or prime.
    """
    lo, hi = job.shards[shard_index]
    op, dtype, s = job.op, job.dtype, job.tuple_size
    chain, head = carry
    counters = StreamCounters(engine_used=job._engine_label())
    kernel = kernels.CompensatedFoldKernel(dtype, s, lo, chain)
    identity = op.identity(dtype)
    prev = np.full(s, identity, dtype=dtype)
    if head is not None:
        prev[:] = head  # segment-aligned bounds: all lanes seen
    source = np.memmap(job.output_path, dtype=dtype, mode="r")
    raw = np.memmap(job.input_path, dtype=dtype, mode="r")
    chunker = _AdaptiveChunker(
        max(1, job.chunk_bytes // job.itemsize), job.itemsize,
        job.adaptive_chunks, counters,
    )
    out_fh = open(job.output_path, "r+b")
    try:
        out_fh.seek(lo * job.itemsize)
        pos = lo
        while pos < hi:
            chunk_start = time.perf_counter()
            take = min(chunker.elements, hi - pos)
            chunk = np.array(source[pos : pos + take], copy=True)
            kernel.fold(chunk, raw[pos : pos + take])
            if not job.inclusive:
                chunk = _exclusive_shift(op, chunk, prev, pos, s)
            out_fh.write(memoryview(chunk).cast("B"))
            counters.chunks += 1
            pos += take
            elapsed = time.perf_counter() - chunk_start
            counters.seconds_fold += elapsed
            chunker.observe(elapsed)
        t0 = time.perf_counter()
        out_fh.flush()
        os.fsync(out_fh.fileno())
        counters.seconds_fold += time.perf_counter() - t0
    finally:
        out_fh.close()
        del source
        del raw
    counters.folded_shards += 1
    return counters


# -- public entry point --------------------------------------------------


def scan_file_sharded(
    input_path,
    output_path,
    *,
    dtype="int32",
    op="add",
    order: int = 1,
    tuple_size: int = 1,
    inclusive: bool = True,
    engine=None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    adaptive_chunks: bool = True,
    checkpoint=None,
    resume: bool = False,
    exact: bool = True,
    float_mode: Optional[str] = None,
    threads=None,
    input_format: str = "auto",
    fail_after_shards: Optional[int] = None,
) -> ShardedResult:
    """Scan a raw binary file out of core across ``shards`` partitions.

    Parameters mirror :func:`repro.stream.scan_file` plus the sharding
    knobs: ``shards`` (contiguous partitions; default the CPU count),
    ``workers`` (concurrent shard tasks; default ``min(shards, cpus)``),
    ``adaptive_chunks`` (per-shard chunk sizing driven by measured
    per-chunk phase seconds), and the float-mode pair: ``float_mode``
    picks ``"exact"`` (sequential bit-exact fallback, the default),
    ``"compensated"`` (shard floats on the fixed segment grid with
    error-free carries — bit-identical for any shard count, *more*
    accurate than the serial fold; ``add``/order-1/raw-input only,
    anything else falls back sequentially with a ``fallback_reason``),
    or ``"regrouped"`` (shard anyway, accept carry-fold rounding).
    The legacy ``exact`` tri-state still works (``True -> "exact"``,
    ``False -> "regrouped"``) but ``float_mode`` wins when both are
    given.  ``threads``
    adds slab-parallel intra-chunk scans *inside* each shard task: the
    total budget (an int, or ``"auto"`` for the CPU count) is divided
    by the shard worker count so shards × intra-chunk threads never
    oversubscribes beyond the request; ``None`` keeps shard tasks
    serial.  ``checkpoint`` names the per-shard manifest; a killed job
    re-runs only its unfinished shards under ``resume=True``.
    ``fail_after_shards`` is a test-only hook aborting the job after N
    shard completions.

    Inside the fused gate (integer ADD, ``order >= 2``,
    ``tuple_size >= 2``, no delegated engine) the job runs a **single**
    scan pass: each shard's fused tile kernel produces all ``q`` orders
    in one sweep, aggregates are ``(order, tuple_size)`` matrices
    spliced with the binomial identity, and the fold applies binomial
    weight columns — bit-identical to the ``q``-pass layout, with no
    scratch file and ``ShardedResult.passes == 1``.

    ``input_format`` mirrors :func:`scan_file`: ``"auto"`` (sniff the
    ``SAMB`` magic), ``"raw"``, or ``"blocked"``.  A blocked input's
    dtype and element count come from its container header (the
    ``dtype`` argument is ignored), the shard plan is aligned to the
    container's block size so no two shards decode the same block, and
    pass 1 of every shard decodes its block range through one shared
    index.  Later passes and the fold are raw-byte, unchanged.
    Compressed *output* is a single-session feature
    (:func:`scan_file`'s ``output_format``) — sharded folds rewrite
    the output in place, which a compressed container cannot do.
    """
    if chunk_bytes < 1:
        raise ValueError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if tuple_size < 1:
        raise ValueError(f"tuple_size must be >= 1, got {tuple_size}")
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    input_path = os.fspath(input_path)
    output_path = os.fspath(output_path)

    input_format = resolve_input_format(input_path, input_format)
    resolved_op = get_op(op)
    blocked_index = None
    if input_format == "blocked":
        # The container header is authoritative for dtype and count;
        # raw-byte divisibility does not apply to compressed payloads.
        blocked_index = read_index(input_path)
        resolved_dtype = resolved_op.check_dtype(blocked_index.dtype)
        itemsize = resolved_dtype.itemsize
        total_elements = blocked_index.count
    else:
        resolved_dtype = resolved_op.check_dtype(dtype)
        itemsize = resolved_dtype.itemsize
        input_bytes = os.path.getsize(input_path)
        if input_bytes % itemsize:
            raise ValueError(
                f"{input_path!r} is {input_bytes} bytes, not a multiple of "
                f"{resolved_dtype.name}'s {itemsize}-byte item size"
            )
        total_elements = input_bytes // itemsize

    mode = kernels.resolve_float_mode(resolved_dtype, float_mode, exact)
    if mode == "compensated":
        from repro.kernels.compensated import check_compensated

        check_compensated(resolved_op, resolved_dtype)
    fallback_reason = None
    if mode == "exact":
        # Floats are only pseudo-associative: regrouped carries would
        # round differently from the one-shot scan.  The sequential
        # session path is bit-exact; float_mode="regrouped" (or the
        # legacy exact=False) opts into sharding anyway, and
        # float_mode="compensated" shards *and* keeps determinism.
        fallback_reason = (
            "float dtype: bit-exactness requires the sequential exact "
            "path (float_mode='compensated' shards floats "
            "deterministically; 'regrouped' shards with carry-fold "
            "rounding)"
        )
    elif mode == "compensated" and order > 1:
        # Pass q >= 2 rescans the pass-(q-1) *output*, whose naive form
        # is not on disk once rendered — the per-element error recovery
        # has nothing exact to re-derive from.  Sequential compensated
        # scanning handles any order.
        fallback_reason = (
            "compensated float mode shards order-1 scans only; "
            "higher orders run the sequential compensated session"
        )
    elif mode == "compensated" and input_format == "blocked":
        # Shard bounds would need to align to container blocks *and*
        # the fixed segment grid at once, and the render pass re-reads
        # raw input bytes by offset — neither holds for a compressed
        # container.
        fallback_reason = (
            "compensated float mode shards raw inputs only; blocked "
            "containers run the sequential compensated session"
        )
    if fallback_reason is not None:
        result = scan_file(
            input_path, output_path, dtype=resolved_dtype, op=resolved_op,
            order=order, tuple_size=tuple_size, inclusive=inclusive,
            engine=engine, chunk_bytes=chunk_bytes, checkpoint=checkpoint,
            resume=resume, threads=threads, input_format=input_format,
            float_mode=mode if mode != "regrouped" else None,
        )
        return ShardedResult(
            elements=result.elements,
            dtype=result.dtype,
            output_path=output_path,
            counters=result.counters,
            shards=[(0, result.elements)],
            passes=order,
            shard_counters=[result.counters],
            resumed_shards=int(bool(result.resumed_from)),
            fallback_reason=fallback_reason,
            input_format=input_format,
        )

    # Single-pass fused order-q mode: integer ADD at order >= 2 with
    # s >= 2 shards in ONE pass of (q, s) matrix aggregates instead of
    # q ping-pong passes.  Delegated engines keep the classic layout
    # (their inner sessions are order-1 continuations).
    fused = (
        engine is None
        and mode is None
        and kernels.fused_supported(resolved_op, resolved_dtype, order, tuple_size)
    )

    if shards is None:
        shards = os.cpu_count() or 1
    if mode == "compensated" and total_elements:
        # The compensated contract fixes segment boundaries as a pure
        # function of the global index; shard bounds snap to that grid
        # so every shard's totals line up with the global chain.
        span = kernels.segment_span(tuple_size)
        plan = [
            (k_lo * span, min(k_hi * span, total_elements))
            for k_lo, k_hi in plan_shards(-(-total_elements // span), shards)
        ]
    elif blocked_index is not None and total_elements:
        # Align shard bounds to container blocks so no two shards decode
        # the same block: plan over blocks, scale back to elements.
        be = blocked_index.block_elements
        plan = [
            (b_lo * be, min(b_hi * be, total_elements))
            for b_lo, b_hi in plan_shards(blocked_index.num_blocks, shards)
        ]
    else:
        plan = plan_shards(total_elements, shards)
    if workers is None:
        workers = min(len(plan), os.cpu_count() or 1)
    # Combined-oversubscription guard: the caller's thread budget is for
    # the whole job, so each of the ``workers`` concurrent shard tasks
    # gets an equal slice of it for its intra-chunk slab threads.
    shard_threads = 1
    if threads is not None:
        budget = resolve_threads(threads)
        shard_threads = max(1, budget // max(1, workers))

    job = _ShardedJob(
        input_path=input_path, output_path=output_path, op=resolved_op,
        dtype=resolved_dtype, order=order, tuple_size=tuple_size,
        inclusive=inclusive, engine=engine, shards=plan,
        chunk_bytes=chunk_bytes, adaptive_chunks=adaptive_chunks,
        checkpoint=checkpoint, workers=workers, shard_threads=shard_threads,
        input_format=input_format, blocked_index=blocked_index,
        float_mode=mode if mode == "compensated" else None, fused=fused,
    )
    job.fail_after_shards = fail_after_shards

    if total_elements == 0:
        open(output_path, "wb").close()
        if checkpoint is not None and os.path.exists(checkpoint):
            os.remove(checkpoint)
        return ShardedResult(
            elements=0, dtype=resolved_dtype.name, output_path=output_path,
            counters=job.counters_so_far(), shards=[], passes=job.passes,
            input_format=input_format,
        )

    resumed = False
    if resume and checkpoint is not None and os.path.exists(checkpoint):
        job.load_manifest(read_shard_manifest(checkpoint))
        _check_resume_files(job)
        resumed = True
    elif checkpoint is not None and os.path.exists(checkpoint):
        # Same stale-checkpoint rule as the unsharded driver: a fresh
        # start must not leave a previous job's manifest around.
        os.remove(checkpoint)

    if not resumed:
        _preallocate(job.output_path, total_elements * itemsize)
        if job.needs_scratch():
            _preallocate(job.scratch_path, total_elements * itemsize)
        job.write_manifest()

    with ThreadPoolExecutor(max_workers=workers) as executor:
        try:
            _run(job, executor, resumed)
        except BaseException:
            executor.shutdown(wait=True, cancel_futures=True)
            raise

    if checkpoint is not None and os.path.exists(checkpoint):
        os.remove(checkpoint)
    if job.needs_scratch() and os.path.exists(job.scratch_path):
        os.remove(job.scratch_path)
    return ShardedResult(
        elements=total_elements,
        dtype=resolved_dtype.name,
        output_path=output_path,
        counters=job.counters_so_far(),
        shards=list(job.shards),
        passes=job.passes,
        shard_counters=list(job.shard_counters),
        resumed_shards=job.resumed_shards,
        input_format=input_format,
    )


def _preallocate(path: str, nbytes: int) -> None:
    with open(path, "wb") as fh:
        fh.truncate(nbytes)


def _check_resume_files(job: _ShardedJob) -> None:
    expected = job.total_elements * job.itemsize
    paths = [job.output_path]
    if job.needs_scratch():
        paths.append(job.scratch_path)
    for path in paths:
        if not os.path.exists(path):
            raise StreamError(
                f"cannot resume: shard manifest exists but {path!r} does not"
            )
        size = os.path.getsize(path)
        if size != expected:
            raise StreamError(
                f"cannot resume: {path!r} is {size} bytes, the manifest "
                f"expects {expected}; the manifest and files are out of sync"
            )


def _run(job: _ShardedJob, executor, resumed: bool) -> None:
    """Drive the pass/splice/fold pipeline over the shard plan."""
    start_pass = 1 + len(job.completed_passes)
    resumed_into_fold = resumed and job.phase["kind"] == "fold"

    carries = None
    for pass_index in range(1, job.passes + 1):
        if pass_index < start_pass or resumed_into_fold:
            rec = job.completed_passes[pass_index - 1]
            carries = _job_splice(job, rec["aggregates"], rec["baked"])
            continue
        if not (
            resumed
            and job.phase == {"kind": "scan", "pass": pass_index}
        ):
            job.begin_phase({"kind": "scan", "pass": pass_index})
        _run_scan_pass(job, executor, pass_index, carries)
        rec = {
            "aggregates": [row for row in job.aggregates],
            "baked": [bool(flag) for flag in job.baked],
        }
        _splice_none_guard(rec["aggregates"])
        t0 = time.perf_counter()
        carries = _job_splice(job, rec["aggregates"], rec["baked"])
        job.carried.seconds_splice += time.perf_counter() - t0
        job.completed_passes.append(rec)
        resumed = False  # later passes always start from a clean phase

    final = job.completed_passes[job.passes - 1]
    needs_fold = [
        (not final["baked"][i]) or (not job.inclusive)
        for i in range(len(job.shards))
    ]
    if resumed_into_fold:
        fold_done = list(job.done)
    else:
        fold_done = [not need for need in needs_fold]
        job.begin_phase({"kind": "fold"}, done=fold_done, baked_reset=False)
        if not all(fold_done):
            job.write_manifest()
    if all(fold_done):
        return

    # A resumed fold must rebuild unfinished shards first: the fold is
    # an in-place read-modify-write, so a crash mid-fold leaves a mixed
    # region.  The final pass's source file is intact (ping-pong), so
    # re-running the recorded scan reproduces the pre-fold bytes.
    prev_carries = None
    if job.passes >= 2:
        prev_rec = job.completed_passes[job.passes - 2]
        prev_carries = _job_splice(job, prev_rec["aggregates"], prev_rec["baked"])

    futures = {}
    for i in range(len(job.shards)):
        if fold_done[i]:
            continue
        futures[executor.submit(
            _rescan_and_fold_shard if resumed_into_fold else _fold_only_shard,
            job, i, carries, final, prev_carries,
        )] = i
    for future in as_completed(futures):
        i = futures[future]
        counters = future.result()
        job.record_completion(i, counters)


def _fold_only_shard(job, shard_index, carries, final, prev_carries):
    return _fold_shard(
        job, shard_index, carries[shard_index],
        do_fold=not final["baked"][shard_index],
    )


def _rescan_and_fold_shard(job, shard_index, carries, final, prev_carries):
    """Redo a shard's final scan pass (from the intact source), then
    fold — the crash-recovery path for interrupted in-place folds."""
    fold_carry = _pass_fold_carry(job, job.passes, prev_carries, shard_index)
    prime = carries[shard_index] if final["baked"][shard_index] else None
    _, _, scan_counters = _scan_shard(
        job, job.passes, shard_index, fold_carry, prime, publish=False
    )
    fold_counters = _fold_shard(
        job, shard_index, carries[shard_index],
        do_fold=not final["baked"][shard_index],
    )
    return StreamCounters.aggregate(
        [scan_counters, fold_counters], engine_used=scan_counters.engine_used
    )


def _pass_fold_carry(job, pass_index, prev_carries, shard_index):
    """The previous pass's carry to fold while *reading* this shard —
    ``None`` for pass 1 and for shards whose previous pass was baked."""
    if pass_index == 1 or prev_carries is None:
        return None
    prev_baked = job.completed_passes[pass_index - 2]["baked"]
    if prev_baked[shard_index]:
        return None
    return prev_carries[shard_index]


def _run_scan_pass(job: _ShardedJob, executor, pass_index, prev_carries) -> None:
    futures = {}
    for i in range(len(job.shards)):
        if job.done[i]:
            continue
        fold_carry = _pass_fold_carry(job, pass_index, prev_carries, i)
        futures[executor.submit(
            _scan_shard, job, pass_index, i, fold_carry, "auto"
        )] = i
    for future in as_completed(futures):
        i = futures[future]
        aggregate, baked, counters = future.result()
        job.record_completion(i, counters, aggregate=aggregate, baked=baked)
