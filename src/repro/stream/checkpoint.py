"""Durable checkpoints for out-of-core streaming scans.

A checkpoint is a small JSON document holding everything needed to
continue an interrupted job: the session's byte-exact carry state and
stream offset (:meth:`ScanSession.state_dict`), the input's element
count (so a checkpoint cannot be replayed against the wrong file), the
cumulative counters, and a configuration hash that both proves the
file's integrity and identifies the job it belongs to.

Writes are **atomic**: the document is written to a same-directory
temporary file, flushed, fsync'd, and ``os.replace``'d over the target,
so a crash mid-write leaves either the previous checkpoint or the new
one — never a torn file.  The driver additionally fsyncs the *output*
file before every checkpoint write, so a checkpoint never claims more
progress than is durably on disk.
"""

from __future__ import annotations

import json
import os

from repro.stream.errors import CheckpointError
from repro.stream.session import hash_config

CHECKPOINT_KIND = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1


def build_checkpoint(session_state: dict, input_elements: int, counters: dict) -> dict:
    """Assemble the checkpoint document for one progress point."""
    return {
        "kind": CHECKPOINT_KIND,
        "version": CHECKPOINT_VERSION,
        "input_elements": int(input_elements),
        "session": session_state,
        "counters": counters,
    }


def write_checkpoint(path, payload: dict) -> None:
    """Atomically persist ``payload`` to ``path`` (tmp + fsync + rename)."""
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    blob = json.dumps(payload, indent=2, sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(blob + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_checkpoint(path) -> dict:
    """Load and structurally validate a checkpoint document.

    Raises :class:`CheckpointError` on unreadable/foreign/corrupt
    files; configuration *mismatches* against the resuming job are the
    driver's to detect (it knows the job).
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"{path!r} is not a repro stream checkpoint")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {payload.get('version')!r}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    session = payload.get("session")
    if not isinstance(session, dict):
        raise CheckpointError(f"checkpoint {path!r} lacks a session state")
    for key in ("offset", "carry", "config", "config_hash"):
        if key not in session:
            raise CheckpointError(
                f"checkpoint {path!r} session state lacks {key!r}"
            )
    if hash_config(session["config"]) != session["config_hash"]:
        raise CheckpointError(
            f"checkpoint {path!r} failed its integrity check "
            f"(config hash does not match the stored configuration)"
        )
    return payload
