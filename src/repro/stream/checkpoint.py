"""Durable checkpoints for out-of-core streaming scans.

A checkpoint is a small JSON document holding everything needed to
continue an interrupted job: the session's byte-exact carry state and
stream offset (:meth:`ScanSession.state_dict`), the input's element
count (so a checkpoint cannot be replayed against the wrong file), the
cumulative counters, and a configuration hash that both proves the
file's integrity and identifies the job it belongs to.

Writes are **atomic and durable**: the document is written to a
same-directory temporary file, flushed, fsync'd, ``os.replace``'d over
the target, and finally the *containing directory* is fsync'd — the
rename itself is metadata held by the directory, so without the
directory fsync a crash immediately after ``os.replace`` could roll
the rename back and resurrect the previous checkpoint (or none at
all).  A crash at any point therefore leaves either the previous
checkpoint or the new one — never a torn file, and never an
un-renamed one claimed as written.  The driver additionally fsyncs the
*output* file before every checkpoint write, so a checkpoint never
claims more progress than is durably on disk.

The same machinery persists the **per-shard manifest** of the sharded
driver (:mod:`repro.stream.sharded`): a manifest is a checkpoint-like
document recording the shard plan, the per-pass per-shard aggregates
and carry-baking flags, and which shards of the current phase are
done — enough for a killed sharded job to resume only its unfinished
shards.
"""

from __future__ import annotations

import json
import os
import stat

from repro.stream.errors import CheckpointError
from repro.stream.session import hash_config

CHECKPOINT_KIND = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1

MANIFEST_KIND = "repro-stream-shard-manifest"
MANIFEST_VERSION = 1


def build_checkpoint(
    session_state: dict,
    input_elements: int,
    counters: dict,
    io: dict = None,
) -> dict:
    """Assemble the checkpoint document for one progress point.

    ``io`` is the optional compressed-streaming record — input/output
    container formats plus the blocked writer's cursor — absent for
    raw-byte jobs, so their checkpoints are unchanged from version 1.
    """
    payload = {
        "kind": CHECKPOINT_KIND,
        "version": CHECKPOINT_VERSION,
        "input_elements": int(input_elements),
        "session": session_state,
        "counters": counters,
    }
    if io is not None:
        payload["io"] = dict(io)
    return payload


def _fsync_directory(path: str) -> None:
    """fsync the directory holding ``path`` so a rename into it is durable.

    Directory fds are a POSIX affordance; on platforms that cannot open
    a directory for reading (notably Windows) this silently degrades to
    the pre-fsync behavior rather than failing the checkpoint.
    """
    directory = os.path.dirname(path) or "."
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        dir_fd = os.open(directory, flags)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        if stat.S_ISDIR(os.fstat(dir_fd).st_mode):
            os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(dir_fd)


def write_checkpoint(path, payload: dict) -> None:
    """Atomically and durably persist ``payload`` to ``path``
    (tmp + fsync + rename + directory fsync)."""
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    blob = json.dumps(payload, indent=2, sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(blob + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # The rename lives in the directory's metadata: without this fsync
    # a crash can durably keep the tmp write yet lose the rename.
    _fsync_directory(path)


def read_checkpoint(path) -> dict:
    """Load and structurally validate a checkpoint document.

    Raises :class:`CheckpointError` on unreadable/foreign/corrupt
    files; configuration *mismatches* against the resuming job are the
    driver's to detect (it knows the job).
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"{path!r} is not a repro stream checkpoint")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {payload.get('version')!r}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    session = payload.get("session")
    if not isinstance(session, dict):
        raise CheckpointError(f"checkpoint {path!r} lacks a session state")
    for key in ("offset", "carry", "config", "config_hash"):
        if key not in session:
            raise CheckpointError(
                f"checkpoint {path!r} session state lacks {key!r}"
            )
    if hash_config(session["config"]) != session["config_hash"]:
        raise CheckpointError(
            f"checkpoint {path!r} failed its integrity check "
            f"(config hash does not match the stored configuration)"
        )
    return payload


def build_shard_manifest(
    config: dict,
    input_elements: int,
    shards: list,
    state: dict,
    io: dict = None,
) -> dict:
    """Assemble the sharded driver's manifest document.

    ``state`` is the sharded driver's progress record (current phase,
    per-shard done flags, per-pass aggregates); the manifest wraps it
    with the identity fields every resume must validate first.  ``io``
    (optional) records the input container format for compressed-input
    jobs.
    """
    payload = {
        "kind": MANIFEST_KIND,
        "version": MANIFEST_VERSION,
        "input_elements": int(input_elements),
        "config": dict(config),
        "config_hash": hash_config(config),
        "shards": [[int(lo), int(hi)] for lo, hi in shards],
        "state": state,
    }
    if io is not None:
        payload["io"] = dict(io)
    return payload


def read_shard_manifest(path) -> dict:
    """Load and structurally validate a shard manifest document."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read shard manifest {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != MANIFEST_KIND:
        raise CheckpointError(f"{path!r} is not a repro shard manifest")
    if payload.get("version") != MANIFEST_VERSION:
        raise CheckpointError(
            f"shard manifest {path!r} has version {payload.get('version')!r}, "
            f"this build reads version {MANIFEST_VERSION}"
        )
    for key in ("input_elements", "config", "config_hash", "shards", "state"):
        if key not in payload:
            raise CheckpointError(f"shard manifest {path!r} lacks {key!r}")
    if hash_config(payload["config"]) != payload["config_hash"]:
        raise CheckpointError(
            f"shard manifest {path!r} failed its integrity check "
            f"(config hash does not match the stored configuration)"
        )
    return payload
