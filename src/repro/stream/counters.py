"""Counters for streaming scans, analogous to ``parallel.counters``.

A streaming job's wall-clock decomposes into phases the one-shot
engines do not have — reading chunks out of the memory map, scanning
them, writing scanned bytes back out, and persisting checkpoints — so
:class:`StreamCounters` records each phase separately, plus the event
counts (chunks, bytes, checkpoint writes, resumes) that determine
whether an out-of-core run behaved as configured.  The shape follows
:class:`repro.parallel.counters.ParallelCounters`: a dataclass with
aggregate properties, ``as_dict`` for JSON benchmarks, and a compact
``__str__`` for logs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class StreamCounters:
    """Event counts and per-phase wall-clock for one streaming job.

    ``chunks`` / ``elements`` / ``bytes_in`` are filled by
    :meth:`repro.stream.ScanSession.feed`; the read / write /
    checkpoint phases and ``bytes_out`` are filled by the out-of-core
    driver.  ``engine_used`` names the inner engine chunks were scanned
    on (``"host"`` when no engine was delegated to), and
    ``delegated_stage_scans`` counts how many stage scans actually went
    through it (float inputs always take the exact host path, see
    :mod:`repro.stream.session`).  A resumed job *restores* the
    counters persisted in the checkpoint, so totals are cumulative
    across interruptions; ``resumes`` says how often that happened.
    """

    chunks: int = 0
    elements: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    checkpoint_writes: int = 0
    resumes: int = 0
    delegated_stage_scans: int = 0
    engine_used: str = "host"
    seconds_read: float = 0.0
    seconds_scan: float = 0.0
    seconds_write: float = 0.0
    seconds_checkpoint: float = 0.0

    # -- aggregates ------------------------------------------------------

    @property
    def seconds_total(self) -> float:
        return (
            self.seconds_read
            + self.seconds_scan
            + self.seconds_write
            + self.seconds_checkpoint
        )

    def as_dict(self) -> dict:
        data = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        data["seconds_total"] = self.seconds_total
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StreamCounters":
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    def __str__(self) -> str:
        return (
            f"StreamCounters(engine={self.engine_used}, "
            f"chunks={self.chunks}, elements={self.elements}, "
            f"bytes={self.bytes_in}->{self.bytes_out}, "
            f"checkpoints={self.checkpoint_writes}, resumes={self.resumes}, "
            f"wall={self.seconds_total:.4f}s "
            f"[read {self.seconds_read:.4f} scan {self.seconds_scan:.4f} "
            f"write {self.seconds_write:.4f} ckpt {self.seconds_checkpoint:.4f}])"
        )
