"""Counters for streaming scans, analogous to ``parallel.counters``.

A streaming job's wall-clock decomposes into phases the one-shot
engines do not have — reading chunks out of the memory map, scanning
them, writing scanned bytes back out, and persisting checkpoints — so
:class:`StreamCounters` records each phase separately, plus the event
counts (chunks, bytes, checkpoint writes, resumes) that determine
whether an out-of-core run behaved as configured.  The shape follows
:class:`repro.parallel.counters.ParallelCounters`: a dataclass with
aggregate properties, ``as_dict`` for JSON benchmarks, and a compact
``__str__`` for logs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class StreamCounters:
    """Event counts and per-phase wall-clock for one streaming job.

    ``chunks`` / ``elements`` / ``bytes_in`` are filled by
    :meth:`repro.stream.ScanSession.feed`; the read / write /
    checkpoint phases and ``bytes_out`` are filled by the out-of-core
    driver.  ``engine_used`` names the inner engine chunks were scanned
    on (``"host"`` when no engine was delegated to), and
    ``delegated_stage_scans`` counts how many stage scans actually went
    through it (float inputs always take the exact host path, see
    :mod:`repro.stream.session`); ``threaded_scans`` counts stage scans
    routed through the slab-parallel in-memory kernel
    (:mod:`repro.kernels.threaded`) when ``threads=`` is requested,
    ``batched_feeds`` counts feed calls serviced by a coalesced
    multi-stream dispatch (:func:`repro.serve.feed_batch`) instead of a
    per-session kernel call, and ``fused_order_scans`` counts feed
    calls that took the single-pass fused order-q tile path
    (:func:`repro.kernels.fused_lane_scan`) instead of pass-per-order
    stage scans.  A resumed job *restores* the
    counters persisted in the checkpoint, so totals are cumulative
    across interruptions; ``resumes`` says how often that happened.

    The sharded driver (:mod:`repro.stream.sharded`) adds its own
    events: ``shards`` (shard scan passes run), ``primed_shards``
    (shards whose splice carry was already final at scan start, so the
    carry was baked into the scan and the fold pass skipped),
    ``folded_shards`` (shards that did need a separate fold pass),
    ``chunk_resizes`` (adaptive chunk-sizing adjustments), and the
    ``seconds_splice`` / ``seconds_fold`` phases.  Per-shard counters
    are combined with :meth:`aggregate`.

    Compressed streaming adds ``compressed_bytes_in`` /
    ``compressed_bytes_out`` (container bytes actually moved when the
    input and/or output is a blocked ``.samb`` container),
    ``decoded_bytes_in`` (the logical bytes those container bytes
    decoded into — distinct from ``bytes_in``, which also counts the
    sharded driver's raw ping-pong re-reads on later passes, see
    :meth:`compression_ratio_in`), and the ``seconds_decode`` /
    ``seconds_encode`` phases of the fused decode-scan-encode loop.
    ``overlapped_decodes`` counts chunks whose container decode ran
    concurrently with the previous chunk's scan (the sharded driver's
    pass-1 prefetch; its decode seconds overlap the scan wall-clock
    instead of adding to it).

    The ``planner_*`` fields make :mod:`repro.plan` decisions auditable
    wherever counters already flow (benchmarks, the serve STATS verb):
    ``planner_strategy`` is the chosen candidate's label (e.g.
    ``"sharded:4"``; empty when the caller pinned the configuration by
    hand), ``planner_cache_hits`` / ``planner_cache_misses`` say
    whether the decision was priced from measured calibration or the
    analytic model alone, and ``planner_feedback_updates`` counts
    observed runtimes folded back into the calibration store.
    """

    chunks: int = 0
    elements: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    compressed_bytes_in: int = 0
    compressed_bytes_out: int = 0
    decoded_bytes_in: int = 0
    overlapped_decodes: int = 0
    checkpoint_writes: int = 0
    resumes: int = 0
    delegated_stage_scans: int = 0
    threaded_scans: int = 0
    batched_feeds: int = 0
    fused_order_scans: int = 0
    shards: int = 0
    primed_shards: int = 0
    folded_shards: int = 0
    chunk_resizes: int = 0
    planner_cache_hits: int = 0
    planner_cache_misses: int = 0
    planner_feedback_updates: int = 0
    engine_used: str = "host"
    planner_strategy: str = ""
    seconds_read: float = 0.0
    seconds_decode: float = 0.0
    seconds_scan: float = 0.0
    seconds_encode: float = 0.0
    seconds_write: float = 0.0
    seconds_checkpoint: float = 0.0
    seconds_splice: float = 0.0
    seconds_fold: float = 0.0

    # -- aggregates ------------------------------------------------------

    @property
    def seconds_total(self) -> float:
        return (
            self.seconds_read
            + self.seconds_decode
            + self.seconds_scan
            + self.seconds_encode
            + self.seconds_write
            + self.seconds_checkpoint
            + self.seconds_splice
            + self.seconds_fold
        )

    def compression_ratio_in(self) -> float:
        """Logical decoded bytes per compressed input byte (0 when the
        input was not compressed).  Uses ``decoded_bytes_in`` so the
        sharded driver's later raw passes don't inflate the ratio;
        falls back to ``bytes_in`` for counters restored from an older
        checkpoint that predates the field."""
        if not self.compressed_bytes_in:
            return 0.0
        return (
            self.decoded_bytes_in or self.bytes_in
        ) / self.compressed_bytes_in

    def compression_ratio_out(self) -> float:
        """Logical output bytes per compressed output byte (0 when the
        output was not compressed)."""
        if not self.compressed_bytes_out:
            return 0.0
        return self.bytes_out / self.compressed_bytes_out

    def to_dict(self) -> dict:
        """The stable JSON form: exactly the dataclass fields, nothing
        derived, so ``from_dict(to_dict(c)) == c`` round-trips byte for
        byte.  The serve STATS endpoint and the registry checkpoint
        both persist counters in this form."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def as_dict(self) -> dict:
        """:meth:`to_dict` plus the derived ``seconds_total`` aggregate
        (the benchmark/report form; not round-trippable field-for-field,
        use :meth:`to_dict` for persistence)."""
        data = self.to_dict()
        data["seconds_total"] = self.seconds_total
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StreamCounters":
        """Rebuild counters from :meth:`to_dict` (or :meth:`as_dict`)
        output; unknown keys — e.g. a newer build's fields, or the
        derived ``seconds_total`` — are ignored."""
        known = {spec.name for spec in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})

    @classmethod
    def aggregate(cls, parts, engine_used: str = None) -> "StreamCounters":
        """Sum per-shard (or per-phase) counters into one total.

        Numeric fields add; ``engine_used`` is taken from the argument,
        or from the parts when they all agree (``"mixed"`` otherwise).
        Phase seconds are summed *work*, not wall-clock: shards running
        in parallel will legitimately report more phase-seconds than
        the job's elapsed time.
        """
        total = cls()
        labels = set()
        strategies = set()
        for part in parts:
            for spec in fields(cls):
                value = getattr(part, spec.name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    setattr(total, spec.name, getattr(total, spec.name) + value)
            labels.add(part.engine_used)
            if part.planner_strategy:
                strategies.add(part.planner_strategy)
        if engine_used is not None:
            total.engine_used = engine_used
        elif len(labels) == 1:
            total.engine_used = labels.pop()
        elif labels:
            total.engine_used = "mixed"
        if len(strategies) == 1:
            total.planner_strategy = strategies.pop()
        elif strategies:
            total.planner_strategy = "mixed"
        return total

    def __str__(self) -> str:
        sharded = (
            f"shards={self.shards} (primed {self.primed_shards}, "
            f"folded {self.folded_shards}), "
            if self.shards
            else ""
        )
        compressed = ""
        if self.compressed_bytes_in or self.compressed_bytes_out:
            compressed = (
                f"compressed={self.compressed_bytes_in}"
                f"->{self.compressed_bytes_out}, "
            )
        return (
            f"StreamCounters(engine={self.engine_used}, "
            f"chunks={self.chunks}, elements={self.elements}, "
            f"bytes={self.bytes_in}->{self.bytes_out}, {compressed}{sharded}"
            f"checkpoints={self.checkpoint_writes}, resumes={self.resumes}, "
            f"wall={self.seconds_total:.4f}s "
            f"[read {self.seconds_read:.4f} decode {self.seconds_decode:.4f} "
            f"scan {self.seconds_scan:.4f} encode {self.seconds_encode:.4f} "
            f"write {self.seconds_write:.4f} ckpt {self.seconds_checkpoint:.4f} "
            f"splice {self.seconds_splice:.4f} fold {self.seconds_fold:.4f}])"
        )
